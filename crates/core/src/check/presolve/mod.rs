//! Abstract-interpretation presolve over compiled models.
//!
//! The analyzer of this module runs a fixpoint *interval analysis* over
//! a linear model: every variable carries an interval (its known
//! bounds), and constraint rows repeatedly tighten those intervals via
//! activity-based bound propagation until nothing improves. The
//! reduction log the fixpoint leaves behind powers two consumers:
//!
//! - **diagnostics** ([`diag`]): SD008–SD012 findings rendered through
//!   `EXPLAIN CHECK` — propagation-proven infeasibility, implied-fixed
//!   variables, redundant/forcing constraints, degenerate rows and
//!   pathological coefficient ranges;
//! - **model reduction** ([`reduce`]): variable fixing, bound
//!   tightening, singleton-row elimination and redundant-row removal
//!   applied to the [`lp::Problem`] before `solverlp` runs (behind the
//!   `presolve := on|off` solver parameter), with an un-crush step
//!   mapping the reduced solution back onto the original variables.
//!
//! The domain is the classic box/interval abstraction: propagation only
//! ever *shrinks* intervals using bounds implied by the constraints, so
//! every point feasible in the original model stays inside every
//! propagated interval (soundness — property-tested in
//! `crates/core/tests/presolve.rs`).

pub mod diag;
pub mod reduce;

/// Numeric slack used when classifying rows (redundant / infeasible /
/// forcing). Scaled by the magnitude of the right-hand side.
const FEAS: f64 = 1e-7;
/// Minimum improvement for a tightened bound to be recorded — avoids
/// logging (and looping on) floating-point dust.
const MIN_IMPROVE: f64 = 1e-7;
/// Slack used when rounding integer bounds inward.
const INT_EPS: f64 = 1e-6;
/// Fixpoint pass bound. Interval propagation on acyclic structures
/// converges in a few passes; cyclic chains that keep producing real
/// improvements get cut off here (soundness is unaffected — stopping
/// early only leaves intervals wider).
const MAX_PASSES: usize = 16;

/// A closed interval `[lo, hi]`; infinities mean unbounded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
}

impl Interval {
    pub const FREE: Interval = Interval { lo: f64::NEG_INFINITY, hi: f64::INFINITY };

    pub fn new(lo: f64, hi: f64) -> Interval {
        Interval { lo, hi }
    }

    pub fn point(v: f64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// Intersect with another interval.
    pub fn meet(self, other: Interval) -> Interval {
        Interval { lo: self.lo.max(other.lo), hi: self.hi.min(other.hi) }
    }

    pub fn is_empty(self) -> bool {
        self.lo > self.hi + FEAS * (1.0 + self.hi.abs())
    }

    /// A single (finite) value — the variable is determined.
    pub fn is_point(self) -> bool {
        self.lo.is_finite() && self.hi.is_finite() && (self.hi - self.lo).abs() <= FEAS
    }

    pub fn mid(self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    pub fn contains(self, x: f64, tol: f64) -> bool {
        x >= self.lo - tol && x <= self.hi + tol
    }
}

/// Row sense after normalization (`>=` rows are negated into `<=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowRel {
    Le,
    Eq,
}

/// One linear row `sum(coeffs) ⋈ rhs` with merged, nonzero
/// coefficients.
#[derive(Debug, Clone)]
pub struct Row {
    pub coeffs: Vec<(usize, f64)>,
    pub rel: RowRel,
    pub rhs: f64,
}

/// The abstract model the fixpoint runs over.
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub intervals: Vec<Interval>,
    pub integer: Vec<bool>,
    pub rows: Vec<Row>,
}

/// Why a variable got fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixCause {
    /// Bound propagation narrowed the interval to a point.
    Propagation,
    /// A forcing row pinned the variable at its activity bound.
    Forcing,
    /// A singleton equality row (`c·x = b`) determined it directly.
    SingletonRow,
}

/// Why a row was removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// Satisfied by every point in the current box.
    Redundant,
    /// Forcing: satisfiable only with every variable at its bound.
    Forcing,
    /// A single-variable row converted into a bound / fixing.
    Singleton,
    /// No variables left and trivially satisfied.
    Empty,
}

/// One entry of the reduction log, in the order reductions happened.
#[derive(Debug, Clone, PartialEq)]
pub enum Reduction {
    /// A bound improved: `upper` tells which side; `old` may be infinite.
    Tightened { var: usize, upper: bool, old: f64, new: f64 },
    /// A variable's interval collapsed to a point.
    Fixed { var: usize, value: f64, cause: FixCause },
    /// A row was eliminated.
    RowDropped { row: usize, cause: DropCause },
}

/// A proof that no feasible point exists.
#[derive(Debug, Clone, PartialEq)]
pub enum Infeasibility {
    /// The row's activity range cannot reach its right-hand side.
    RowActivity { row: usize, minact: f64, maxact: f64 },
    /// Propagation crossed a variable's bounds.
    EmptyBounds { var: usize },
}

/// Aggregate reduction counters (surface in `obs::SolverStats` and
/// `sdb_solver_stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Variables removed from the problem (fixed to a single value).
    pub cols_removed: u64,
    /// Constraint rows eliminated.
    pub rows_removed: u64,
    /// Bound tightenings applied.
    pub bounds_tightened: u64,
}

/// Result of running the fixpoint: final intervals, per-variable fixed
/// values, surviving rows, the reduction log, and an infeasibility
/// proof when propagation found one.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    pub intervals: Vec<Interval>,
    /// `Some(v)` when the variable's interval is a point (including
    /// variables that entered already fixed).
    pub fixed: Vec<Option<f64>>,
    /// Rows still alive after elimination.
    pub live: Vec<bool>,
    pub log: Vec<Reduction>,
    pub infeasible: Option<Infeasibility>,
}

impl Outcome {
    pub fn counts(&self) -> Counts {
        let mut c = Counts {
            cols_removed: self.fixed.iter().filter(|f| f.is_some()).count() as u64,
            ..Counts::default()
        };
        for r in &self.log {
            match r {
                Reduction::Tightened { .. } => c.bounds_tightened += 1,
                Reduction::RowDropped { .. } => c.rows_removed += 1,
                Reduction::Fixed { .. } => {}
            }
        }
        c
    }
}

/// Contribution of `c·x` with `x` in `iv`, as `(min, max)`.
fn contrib(c: f64, iv: Interval) -> (f64, f64) {
    if c >= 0.0 {
        (c * iv.lo, c * iv.hi)
    } else {
        (c * iv.hi, c * iv.lo)
    }
}

/// Activity range of a row, tracking how many terms contribute an
/// infinity on each side (needed for one-infinity residual tightening).
struct Activity {
    min_fin: f64,
    max_fin: f64,
    min_inf: usize,
    max_inf: usize,
}

impl Activity {
    fn of(row: &Row, iv: &[Interval]) -> Activity {
        let mut a = Activity { min_fin: 0.0, max_fin: 0.0, min_inf: 0, max_inf: 0 };
        for &(j, c) in &row.coeffs {
            let (lo, hi) = contrib(c, iv[j]);
            if lo == f64::NEG_INFINITY {
                a.min_inf += 1;
            } else {
                a.min_fin += lo;
            }
            if hi == f64::INFINITY {
                a.max_inf += 1;
            } else {
                a.max_fin += hi;
            }
        }
        a
    }

    fn min(&self) -> f64 {
        if self.min_inf > 0 {
            f64::NEG_INFINITY
        } else {
            self.min_fin
        }
    }

    fn max(&self) -> f64 {
        if self.max_inf > 0 {
            f64::INFINITY
        } else {
            self.max_fin
        }
    }

    /// Minimum activity of every term except `j`'s (whose own minimum
    /// contribution is `own_min`), or `None` when another term already
    /// contributes `-∞` so no finite residual exists.
    fn residual_min(&self, own_min: f64) -> Option<f64> {
        match (self.min_inf, own_min == f64::NEG_INFINITY) {
            (0, _) => Some(self.min_fin - own_min),
            (1, true) => Some(self.min_fin),
            _ => None,
        }
    }

    /// Mirror of [`Activity::residual_min`] for the maximum side.
    fn residual_max(&self, own_max: f64) -> Option<f64> {
        match (self.max_inf, own_max == f64::INFINITY) {
            (0, _) => Some(self.max_fin - own_max),
            (1, true) => Some(self.max_fin),
            _ => None,
        }
    }
}

/// The propagation state while the fixpoint runs.
struct Engine {
    iv: Vec<Interval>,
    integer: Vec<bool>,
    live: Vec<bool>,
    /// Variables whose fixing has already been logged (or that entered
    /// the analysis already fixed, which is not a reduction).
    fix_noted: Vec<bool>,
    log: Vec<Reduction>,
    infeasible: Option<Infeasibility>,
    changed: bool,
}

impl Engine {
    fn feas_tol(rhs: f64) -> f64 {
        FEAS * (1.0 + rhs.abs())
    }

    /// Round an upper bound inward for integer variables.
    fn snap_upper(&self, j: usize, b: f64) -> f64 {
        if self.integer[j] && b.is_finite() {
            (b + INT_EPS).floor()
        } else {
            b
        }
    }

    fn snap_lower(&self, j: usize, b: f64) -> f64 {
        if self.integer[j] && b.is_finite() {
            (b - INT_EPS).ceil()
        } else {
            b
        }
    }

    fn note_fix(&mut self, j: usize, cause: FixCause) {
        if self.iv[j].is_point() && !self.fix_noted[j] {
            self.fix_noted[j] = true;
            self.log.push(Reduction::Fixed { var: j, value: self.iv[j].mid(), cause });
        }
    }

    fn after_bound_change(&mut self, j: usize, cause: FixCause) {
        self.changed = true;
        if self.iv[j].is_empty() {
            self.infeasible.get_or_insert(Infeasibility::EmptyBounds { var: j });
        } else {
            self.note_fix(j, cause);
        }
    }

    fn tighten_upper(&mut self, j: usize, bound: f64, cause: FixCause) {
        let b = self.snap_upper(j, bound);
        let old = self.iv[j].hi;
        let improve = MIN_IMPROVE * (1.0 + b.abs());
        if b < old - improve {
            self.log.push(Reduction::Tightened { var: j, upper: true, old, new: b });
            self.iv[j].hi = b;
            self.after_bound_change(j, cause);
        }
    }

    fn tighten_lower(&mut self, j: usize, bound: f64, cause: FixCause) {
        let b = self.snap_lower(j, bound);
        let old = self.iv[j].lo;
        let improve = MIN_IMPROVE * (1.0 + b.abs());
        if b > old + improve {
            self.log.push(Reduction::Tightened { var: j, upper: false, old, new: b });
            self.iv[j].lo = b;
            self.after_bound_change(j, cause);
        }
    }

    fn drop_row(&mut self, ri: usize, cause: DropCause) {
        self.live[ri] = false;
        self.log.push(Reduction::RowDropped { row: ri, cause });
        self.changed = true;
    }

    /// One propagation visit of a live row.
    fn visit(&mut self, ri: usize, row: &Row) {
        // Structural degenerate shapes first.
        match row.coeffs.len() {
            0 => {
                let sat = match row.rel {
                    RowRel::Le => 0.0 <= row.rhs + Self::feas_tol(row.rhs),
                    RowRel::Eq => row.rhs.abs() <= Self::feas_tol(row.rhs),
                };
                if sat {
                    self.drop_row(ri, DropCause::Empty);
                } else {
                    self.infeasible.get_or_insert(Infeasibility::RowActivity {
                        row: ri,
                        minact: 0.0,
                        maxact: 0.0,
                    });
                }
                return;
            }
            1 => {
                let (j, c) = row.coeffs[0];
                let b = row.rhs / c;
                match row.rel {
                    RowRel::Le if c > 0.0 => self.tighten_upper(j, b, FixCause::Propagation),
                    RowRel::Le => self.tighten_lower(j, b, FixCause::Propagation),
                    RowRel::Eq => {
                        if !self.iv[j].contains(b, Self::feas_tol(b)) {
                            self.infeasible.get_or_insert(Infeasibility::EmptyBounds { var: j });
                            return;
                        }
                        self.iv[j] = Interval::point(b);
                        self.changed = true;
                        self.note_fix(j, FixCause::SingletonRow);
                    }
                }
                if self.infeasible.is_none() {
                    self.drop_row(ri, DropCause::Singleton);
                }
                return;
            }
            _ => {}
        }

        let act = Activity::of(row, &self.iv);
        let (minact, maxact) = (act.min(), act.max());
        let ftol = Self::feas_tol(row.rhs);

        // Classify the whole row.
        match row.rel {
            RowRel::Le => {
                if minact > row.rhs + ftol {
                    self.infeasible.get_or_insert(Infeasibility::RowActivity {
                        row: ri,
                        minact,
                        maxact,
                    });
                    return;
                }
                if maxact <= row.rhs + ftol {
                    self.drop_row(ri, DropCause::Redundant);
                    return;
                }
                if minact.is_finite() && minact >= row.rhs - ftol {
                    // Forcing: the row holds only with every term at its
                    // activity-minimizing bound.
                    for &(j, c) in &row.coeffs {
                        let v = if c > 0.0 { self.iv[j].lo } else { self.iv[j].hi };
                        self.iv[j] = Interval::point(v);
                        self.note_fix(j, FixCause::Forcing);
                    }
                    self.drop_row(ri, DropCause::Forcing);
                    return;
                }
            }
            RowRel::Eq => {
                if minact > row.rhs + ftol || maxact < row.rhs - ftol {
                    self.infeasible.get_or_insert(Infeasibility::RowActivity {
                        row: ri,
                        minact,
                        maxact,
                    });
                    return;
                }
                if minact.is_finite()
                    && maxact.is_finite()
                    && minact >= row.rhs - ftol
                    && maxact <= row.rhs + ftol
                {
                    // Activity pinned at rhs: every term is a point.
                    self.drop_row(ri, DropCause::Redundant);
                    return;
                }
            }
        }

        // Residual-activity bound tightening: for each term,
        // c·x_j ⋈ rhs − activity(others).
        for &(j, c) in &row.coeffs {
            let (own_min, own_max) = contrib(c, self.iv[j]);
            if let Some(res_min) = act.residual_min(own_min) {
                let b = (row.rhs - res_min) / c;
                if c > 0.0 {
                    self.tighten_upper(j, b, FixCause::Propagation);
                } else {
                    self.tighten_lower(j, b, FixCause::Propagation);
                }
            }
            if row.rel == RowRel::Eq {
                if let Some(res_max) = act.residual_max(own_max) {
                    let b = (row.rhs - res_max) / c;
                    if c > 0.0 {
                        self.tighten_lower(j, b, FixCause::Propagation);
                    } else {
                        self.tighten_upper(j, b, FixCause::Propagation);
                    }
                }
            }
            if self.infeasible.is_some() {
                return;
            }
        }
    }
}

/// Run the interval fixpoint over a model, producing final intervals,
/// fixings, surviving rows and the reduction log.
pub fn propagate(model: &Model) -> Outcome {
    let n = model.intervals.len();
    let mut eng = Engine {
        iv: model.intervals.clone(),
        integer: model.integer.clone(),
        live: vec![true; model.rows.len()],
        fix_noted: vec![false; n],
        log: Vec::new(),
        infeasible: None,
        changed: false,
    };
    // Variables that enter as points were fixed by the caller, not by
    // this analysis; don't log them as reductions.
    for j in 0..n {
        if eng.iv[j].is_point() {
            eng.fix_noted[j] = true;
        }
        if eng.iv[j].is_empty() {
            eng.infeasible.get_or_insert(Infeasibility::EmptyBounds { var: j });
        }
    }
    // Integer bounds snap inward before any propagation (`x <= 3.5`
    // becomes `x <= 3`) — this alone can make an LP relaxation integral.
    if eng.infeasible.is_none() {
        for j in 0..n {
            if eng.integer[j] {
                let Interval { lo, hi } = eng.iv[j];
                eng.tighten_upper(j, hi, FixCause::Propagation);
                eng.tighten_lower(j, lo, FixCause::Propagation);
            }
            if eng.infeasible.is_some() {
                break;
            }
        }
    }

    let mut passes = 0;
    while eng.infeasible.is_none() && passes < MAX_PASSES {
        eng.changed = false;
        for (ri, row) in model.rows.iter().enumerate() {
            if !eng.live[ri] {
                continue;
            }
            eng.visit(ri, row);
            if eng.infeasible.is_some() {
                break;
            }
        }
        if !eng.changed {
            break;
        }
        passes += 1;
    }

    let fixed = eng.iv.iter().map(|iv| iv.is_point().then(|| iv.mid())).collect();
    Outcome { intervals: eng.iv, fixed, live: eng.live, log: eng.log, infeasible: eng.infeasible }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(intervals: Vec<Interval>, rows: Vec<Row>) -> Model {
        let n = intervals.len();
        Model { intervals, integer: vec![false; n], rows }
    }

    fn le(coeffs: Vec<(usize, f64)>, rhs: f64) -> Row {
        Row { coeffs, rel: RowRel::Le, rhs }
    }

    fn eq(coeffs: Vec<(usize, f64)>, rhs: f64) -> Row {
        Row { coeffs, rel: RowRel::Eq, rhs }
    }

    #[test]
    fn tightens_from_residual_activity() {
        // x + y <= 10, x >= 4 (via lo), y free below 0..inf → y <= 6.
        let m = model(
            vec![Interval::new(4.0, f64::INFINITY), Interval::new(0.0, f64::INFINITY)],
            vec![le(vec![(0, 1.0), (1, 1.0)], 10.0)],
        );
        let out = propagate(&m);
        assert!(out.infeasible.is_none());
        assert!((out.intervals[1].hi - 6.0).abs() < 1e-9, "{:?}", out.intervals[1]);
        assert!((out.intervals[0].hi - 10.0).abs() < 1e-9);
    }

    #[test]
    fn proves_infeasibility_by_activity() {
        // x + y <= 3 with x >= 2, y >= 2 → minact 4 > 3.
        let m = model(
            vec![Interval::new(2.0, 5.0), Interval::new(2.0, 5.0)],
            vec![le(vec![(0, 1.0), (1, 1.0)], 3.0)],
        );
        let out = propagate(&m);
        assert!(matches!(out.infeasible, Some(Infeasibility::RowActivity { row: 0, .. })));
    }

    #[test]
    fn removes_redundant_rows() {
        // x + y <= 100 with x,y in [0,1] is never binding.
        let m = model(
            vec![Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)],
            vec![le(vec![(0, 1.0), (1, 1.0)], 100.0)],
        );
        let out = propagate(&m);
        assert_eq!(out.live, vec![false]);
        assert!(out
            .log
            .iter()
            .any(|r| matches!(r, Reduction::RowDropped { cause: DropCause::Redundant, .. })));
    }

    #[test]
    fn forcing_row_fixes_all_its_variables() {
        // x + y >= 2 (as -x - y <= -2) with x,y in [0,1]: only x=y=1 works.
        let m = model(
            vec![Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)],
            vec![le(vec![(0, -1.0), (1, -1.0)], -2.0)],
        );
        let out = propagate(&m);
        assert!(out.infeasible.is_none());
        assert_eq!(out.fixed, vec![Some(1.0), Some(1.0)]);
        assert!(out
            .log
            .iter()
            .any(|r| matches!(r, Reduction::Fixed { cause: FixCause::Forcing, .. })));
    }

    #[test]
    fn singleton_eq_fixes_and_drops() {
        let m = model(vec![Interval::new(0.0, 10.0)], vec![eq(vec![(0, 2.0)], 6.0)]);
        let out = propagate(&m);
        assert_eq!(out.fixed, vec![Some(3.0)]);
        assert!(out.log.iter().any(
            |r| matches!(r, Reduction::Fixed { cause: FixCause::SingletonRow, value, .. } if *value == 3.0)
        ));
        assert_eq!(out.live, vec![false]);
    }

    #[test]
    fn singleton_eq_outside_bounds_is_infeasible() {
        let m = model(vec![Interval::new(0.0, 1.0)], vec![eq(vec![(0, 1.0)], 5.0)]);
        let out = propagate(&m);
        assert!(out.infeasible.is_some());
    }

    #[test]
    fn integer_bounds_snap_inward() {
        let mut m = model(vec![Interval::new(0.0, 3.5)], vec![]);
        m.integer[0] = true;
        let out = propagate(&m);
        assert_eq!(out.intervals[0].hi, 3.0);
        assert!(out
            .log
            .iter()
            .any(|r| matches!(r, Reduction::Tightened { upper: true, new, .. } if *new == 3.0)));
    }

    #[test]
    fn equality_propagates_both_directions() {
        // x + y = 5 with x in [1, 2] → y in [3, 4].
        let m = model(
            vec![Interval::new(1.0, 2.0), Interval::FREE],
            vec![eq(vec![(0, 1.0), (1, 1.0)], 5.0)],
        );
        let out = propagate(&m);
        assert!((out.intervals[1].lo - 3.0).abs() < 1e-9, "{:?}", out.intervals[1]);
        assert!((out.intervals[1].hi - 4.0).abs() < 1e-9);
    }

    #[test]
    fn chained_propagation_reaches_fixpoint() {
        // x = 2 (singleton eq); x + y <= 3 with y >= 1 → y fixed at 1 by
        // forcing on the second row.
        let m = model(
            vec![Interval::FREE, Interval::new(1.0, f64::INFINITY)],
            vec![eq(vec![(0, 1.0)], 2.0), le(vec![(0, 1.0), (1, 1.0)], 3.0)],
        );
        let out = propagate(&m);
        assert_eq!(out.fixed, vec![Some(2.0), Some(1.0)]);
        assert_eq!(out.live, vec![false, false]);
    }

    #[test]
    fn prefixed_variables_are_not_logged_as_reductions() {
        let m = model(vec![Interval::point(7.0)], vec![]);
        let out = propagate(&m);
        assert_eq!(out.fixed, vec![Some(7.0)]);
        assert!(out.log.is_empty());
    }

    #[test]
    fn empty_true_row_is_dropped_false_row_is_infeasible() {
        let m = model(vec![], vec![le(vec![], 1.0)]);
        let out = propagate(&m);
        assert_eq!(out.live, vec![false]);
        let m = model(vec![], vec![le(vec![], -1.0)]);
        assert!(propagate(&m).infeasible.is_some());
    }

    #[test]
    fn counts_aggregate_the_log() {
        let m = model(
            vec![Interval::new(0.0, 10.0), Interval::new(0.0, 1.0)],
            vec![eq(vec![(0, 1.0)], 4.0), le(vec![(0, 1.0), (1, 1.0)], 100.0)],
        );
        let out = propagate(&m);
        let c = out.counts();
        assert_eq!(c.cols_removed, 1);
        assert_eq!(c.rows_removed, 2); // singleton + redundant
    }
}
