//! The structural checks: each inspects the digested [`CheckedModel`]
//! and appends findings. All checks are conservative — when the model
//! could not be fully evaluated (a rule failed, the objective did not
//! compile) the reference- and bound-sensitive checks stay silent
//! rather than guess.

use super::{Atom, CheckedModel, TOL};
use crate::explain::{render_linexpr, var_name};
use crate::symbolic::{LinExpr, Rel, VarId};
use sqlengine::diag::Diagnostic;
use std::collections::{BTreeMap, HashMap};

fn rel_op(rel: Rel) -> &'static str {
    match rel {
        Rel::Le => "<=",
        Rel::Eq => "=",
        Rel::Ge => ">=",
    }
}

/// Render an atom `diff ⋈ 0` back into readable form.
fn render_atom(m: &CheckedModel<'_>, a: &Atom) -> String {
    format!("{} {} 0", render_linexpr(m.prob, &a.diff), rel_op(a.rel))
}

// ---------------------------------------------------------------------------
// SD001 — decision variable unbounded in the objective direction
// ---------------------------------------------------------------------------

/// A variable with a nonzero objective coefficient whose improving
/// direction no constraint bounds makes the LP unbounded. The analysis
/// is exact for variables that appear only in single-variable
/// inequality atoms; any appearance in a multi-variable or equality
/// atom disables the check for that variable (the coupling may bound
/// it indirectly).
pub fn sd001_unbounded_in_objective(m: &CheckedModel<'_>, diags: &mut Vec<Diagnostic>) {
    if !m.complete {
        return;
    }
    let Some(obj) = &m.objective else { return };
    for &(v, coef) in &obj.terms {
        if coef == 0.0 {
            continue;
        }
        // Which way does the objective push v?
        let wants_down = (m.minimize && coef > 0.0) || (!m.minimize && coef < 0.0);
        let mut coupled = false;
        let (mut has_lower, mut has_upper) = (false, false);
        for a in &m.atoms {
            let Some(&(_, c)) = a.diff.terms.iter().find(|&&(tv, _)| tv == v) else {
                continue;
            };
            if a.diff.terms.len() > 1 || a.rel == Rel::Eq {
                coupled = true;
                break;
            }
            // Single-variable atom c·v + k ⋈ 0.
            if (a.rel == Rel::Le) == (c > 0.0) {
                has_upper = true;
            } else {
                has_lower = true;
            }
        }
        if coupled {
            continue;
        }
        if if wants_down { !has_lower } else { !has_upper } {
            let name = var_name(m.prob, v);
            let sense = if m.minimize { "minimized" } else { "maximized" };
            let dir = if wants_down { "below" } else { "above" };
            diags.push(
                Diagnostic::warning(
                    "SD001",
                    format!("decision variable {name} is unbounded in the objective direction"),
                )
                .with_detail(format!(
                    "the {sense} objective contains {coef}*{name}, but no constraint \
                     bounds {name} from {dir}; the problem is unbounded"
                )),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// SD003 — decision columns never referenced by any rule
// ---------------------------------------------------------------------------

/// A decision column none of whose variables appears in the objective
/// or any constraint is dead weight: §4.3's pruning removes the
/// variables before solving and their cells pass through unchanged,
/// which is rarely what the model author meant.
pub fn sd003_unreferenced_columns(m: &CheckedModel<'_>, diags: &mut Vec<Diagnostic>) {
    if !m.complete {
        return;
    }
    let mut used = vec![false; m.prob.num_vars()];
    if let Some(obj) = &m.objective {
        for v in obj.vars() {
            used[v as usize] = true;
        }
    }
    for a in &m.atoms {
        for v in a.diff.vars() {
            used[v as usize] = true;
        }
    }
    // A column counts as referenced if any of its row-variables is.
    let mut referenced: BTreeMap<(usize, usize), bool> = BTreeMap::new();
    for (i, info) in m.prob.vars.iter().enumerate() {
        *referenced.entry((info.rel, info.col)).or_insert(false) |= used[i];
    }
    // Aggregate unreferenced columns per relation.
    let mut per_rel: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (&(rel, col), &hit) in &referenced {
        if !hit {
            let name = m.prob.relations[rel].table.schema.columns[col].name.clone();
            per_rel.entry(rel).or_default().push(name);
        }
    }
    for (rel, cols) in per_rel {
        let alias = m.prob.relations[rel].alias.as_deref().unwrap_or("<input>");
        let plural = if cols.len() == 1 { "column" } else { "columns" };
        diags.push(
            Diagnostic::warning(
                "SD003",
                format!(
                    "decision {plural} {} of relation '{alias}' {} never referenced by any rule",
                    cols.join(", "),
                    if cols.len() == 1 { "is" } else { "are" }
                ),
            )
            .with_detail(
                "unreferenced variables are pruned before solving (§4.3) and their \
                 cells pass through unchanged; drop them from the decision list or \
                 reference them in a rule",
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// SD004 — trivially infeasible constant constraints
// ---------------------------------------------------------------------------

/// An atom whose variables cancelled away entirely (`x - x <= -1`)
/// leaves a constant comparison; if it is violated, no assignment can
/// ever satisfy the model. (Constant comparisons that never touch a
/// decision variable, like `1 <= 0`, are caught earlier during rule
/// evaluation and reported from the driver.)
pub fn sd004_infeasible_constants(m: &CheckedModel<'_>, diags: &mut Vec<Diagnostic>) {
    for a in &m.atoms {
        if !a.diff.is_constant() {
            continue;
        }
        let c = a.diff.constant;
        let violated = match a.rel {
            Rel::Le => c > TOL,
            Rel::Ge => c < -TOL,
            Rel::Eq => c.abs() > TOL,
        };
        if violated {
            diags.push(
                Diagnostic::error(
                    "SD004",
                    format!(
                        "constraint in rule {} is trivially infeasible: {}",
                        a.rule,
                        render_atom(m, a)
                    ),
                )
                .with_detail(
                    "the decision variables cancel out, leaving a constant comparison \
                     that is always false",
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// SD005 — duplicate / shadowed constraints
// ---------------------------------------------------------------------------

/// Normalize an atom for identity comparison: `Ge` becomes `Le` by
/// negation, `Eq` is sign-canonicalized on its first term.
fn normalize(a: &Atom) -> (LinExpr, Rel) {
    match a.rel {
        Rel::Ge => (a.diff.neg(), Rel::Le),
        Rel::Eq => {
            if a.diff.terms.first().is_some_and(|&(_, c)| c < 0.0) {
                (a.diff.neg(), Rel::Eq)
            } else {
                (a.diff.clone(), Rel::Eq)
            }
        }
        Rel::Le => (a.diff.clone(), Rel::Le),
    }
}

type AtomKey = (u8, Vec<(VarId, u64)>, u64);

fn atom_key(diff: &LinExpr, rel: Rel) -> AtomKey {
    (
        match rel {
            Rel::Le => 0,
            Rel::Eq => 1,
            Rel::Ge => 2,
        },
        diff.terms.iter().map(|&(v, c)| (v, c.to_bits())).collect(),
        diff.constant.to_bits(),
    )
}

/// Exact duplicate atoms add no information (warning); a single-variable
/// bound strictly dominated by a tighter bound on the same side is
/// shadowed (note).
pub fn sd005_duplicate_or_shadowed(m: &CheckedModel<'_>, diags: &mut Vec<Diagnostic>) {
    // -- exact duplicates ---------------------------------------------------
    let mut seen: Vec<(AtomKey, &Atom, usize)> = Vec::new();
    for a in &m.atoms {
        if a.diff.is_constant() {
            continue; // SD004 territory
        }
        let (diff, rel) = normalize(a);
        let key = atom_key(&diff, rel);
        match seen.iter_mut().find(|(k, _, _)| *k == key) {
            Some((_, _, n)) => *n += 1,
            None => seen.push((key, a, 1)),
        }
    }
    for (_, a, n) in &seen {
        if *n > 1 {
            diags.push(
                Diagnostic::warning(
                    "SD005",
                    format!("constraint '{}' appears {n} times", render_atom(m, a)),
                )
                .with_detail(format!(
                    "first occurrence in rule {}; duplicates add no information and \
                     enlarge the solver input",
                    a.rule
                )),
            );
        }
    }

    // -- shadowed single-variable bounds ------------------------------------
    // c·v + k ⋈ 0  ⇒  v ⋈' -k/c, an upper bound when (⋈ is <=) == (c > 0).
    let mut bounds: HashMap<(VarId, bool), Vec<f64>> = HashMap::new();
    for a in &m.atoms {
        if a.rel == Rel::Eq || a.diff.terms.len() != 1 {
            continue;
        }
        let (v, c) = a.diff.terms[0];
        let bound = -a.diff.constant / c;
        let upper = (a.rel == Rel::Le) == (c > 0.0);
        bounds.entry((v, upper)).or_default().push(bound);
    }
    let mut shadowed: Vec<(VarId, bool, f64, f64)> = Vec::new();
    for (&(v, upper), bs) in &bounds {
        let binding = if upper {
            bs.iter().cloned().fold(f64::INFINITY, f64::min)
        } else {
            bs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        };
        for &b in bs {
            let slack = if upper { b - binding } else { binding - b };
            if slack > TOL {
                shadowed.push((v, upper, b, binding));
            }
        }
    }
    shadowed.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    shadowed.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1 && a.2 == b.2);
    for (v, upper, loose, tight) in shadowed {
        let name = var_name(m.prob, v);
        let op = if upper { "<=" } else { ">=" };
        diags.push(
            Diagnostic::note(
                "SD005",
                format!(
                    "bound '{name} {op} {loose}' is shadowed by the tighter '{name} {op} {tight}'"
                ),
            )
            .with_detail("the looser bound can never be binding and can be dropped"),
        );
    }
}
