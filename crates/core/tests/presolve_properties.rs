//! Property-based checks of the presolve engine's soundness: interval
//! propagation may only *shrink* the feasible box (never cut off a
//! feasible point), and solving the reduced problem must reach the same
//! objective as solving the original — with and without integrality.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use solvedbplus_core::check::presolve::propagate;
use solvedbplus_core::check::presolve::reduce::{model_of, reduce};

/// Build a random LP/MIP that is feasible *by construction*: sample a
/// point first, then draw bounds and constraint rows that the point
/// satisfies. Integer dimensions sample integer coordinates.
fn feasible_instance(seed: u64, n: usize, m: usize, integers: bool) -> (lp::Problem, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = lp::Problem::maximize(n);
    let point: Vec<f64> = (0..n)
        .map(|j| {
            if integers && j % 2 == 0 {
                p.integer[j] = true;
                rng.gen_range(0i64..6) as f64
            } else {
                rng.gen_range(0.0..5.0)
            }
        })
        .collect();
    for (j, &v) in point.iter().enumerate() {
        let lo = v - rng.gen_range(0.0..3.0);
        let hi = v + rng.gen_range(0.0..3.0);
        p.set_bounds(
            j,
            if p.integer[j] { lo.floor() } else { lo },
            if p.integer[j] { hi.ceil() } else { hi },
        );
    }
    p.set_objective((0..n).map(|j| (j, rng.gen_range(-4.0..4.0))).collect());
    for _ in 0..m {
        let coeffs: Vec<(usize, f64)> =
            (0..n).map(|j| (j, rng.gen_range(-3i32..=3) as f64)).collect();
        let at_point: f64 = coeffs.iter().map(|&(j, c)| c * point[j]).sum();
        match rng.gen_range(0..3) {
            0 => p.add_constraint(coeffs, lp::Rel::Le, at_point + rng.gen_range(0.0..4.0)),
            1 => p.add_constraint(coeffs, lp::Rel::Ge, at_point - rng.gen_range(0.0..4.0)),
            _ => p.add_constraint(coeffs, lp::Rel::Eq, at_point),
        }
    }
    (p, point)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Soundness of the abstract domain: a known-feasible point always
    /// stays inside the propagated intervals, and propagation never
    /// claims infeasibility.
    #[test]
    fn feasible_points_stay_within_propagated_intervals(
        seed in 0u64..10_000,
        n in 1usize..6,
        m in 0usize..5,
        integers in any::<bool>(),
    ) {
        let (p, point) = feasible_instance(seed, n, m, integers);
        let out = propagate(&model_of(&p));
        prop_assert!(out.infeasible.is_none(), "feasible model declared infeasible");
        for (j, &v) in point.iter().enumerate() {
            prop_assert!(
                out.intervals[j].contains(v, 1e-6),
                "propagation cut off feasible coordinate {j}={v}: [{}, {}]",
                out.intervals[j].lo,
                out.intervals[j].hi
            );
        }
    }

    /// End-to-end reduction correctness: presolve + solve + un-crush
    /// reaches the same objective as solving the original problem, and
    /// the un-crushed point is feasible for the original.
    #[test]
    fn presolve_on_and_off_reach_the_same_objective(
        seed in 0u64..10_000,
        n in 1usize..5,
        m in 0usize..4,
        integers in any::<bool>(),
    ) {
        let (p, _) = feasible_instance(seed, n, m, integers);
        let direct = if p.has_integers() {
            lp::mip::branch_and_bound_stats(&p, Default::default()).0
        } else {
            lp::solve(&p)
        };
        // Construction guarantees feasibility; a bounded box rules out
        // unboundedness.
        prop_assert_eq!(direct.status, lp::Status::Optimal);

        let pre = reduce(&p);
        prop_assert!(!pre.infeasible(), "presolve declared a feasible model infeasible");
        let reduced_sol = if pre.reduced.num_vars == 0 {
            lp::Solution {
                status: lp::Status::Optimal,
                x: vec![],
                objective: pre.reduced.objective_constant,
                iterations: 0,
                nodes: 0,
            }
        } else if pre.reduced.has_integers() {
            lp::mip::branch_and_bound_stats(&pre.reduced, Default::default()).0
        } else {
            lp::solve(&pre.reduced)
        };
        prop_assert_eq!(reduced_sol.status, lp::Status::Optimal);
        let full = pre.uncrush_solution(reduced_sol);
        let tol = 1e-5 * (1.0 + direct.objective.abs());
        prop_assert!(
            (full.objective - direct.objective).abs() <= tol,
            "objective drift: presolve {} vs direct {}",
            full.objective,
            direct.objective
        );
        prop_assert!(p.is_feasible(&full.x, 1e-5), "un-crushed point infeasible");
    }
}
