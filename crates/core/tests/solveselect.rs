//! End-to-end `SOLVESELECT` tests through a full [`Session`] — including
//! the paper's listings (§3.1, §3.2, §4.1, §4.4) adapted to this
//! engine's schema conventions.

use solvedbplus_core::Session;
use sqlengine::{Table, Value};

fn floats(t: &Table, col: &str) -> Vec<f64> {
    t.column_values(col).unwrap().iter().map(|v| v.as_f64().unwrap()).collect()
}

// ---------------------------------------------------------------------------
// LP / MIP through SQL
// ---------------------------------------------------------------------------

#[test]
fn lp_minimize_simple() {
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE vars (x float8, y float8); INSERT INTO vars VALUES (NULL, NULL)",
    )
    .unwrap();
    let t = s
        .query(
            "SOLVESELECT v(x, y) AS (SELECT * FROM vars) \
             MINIMIZE (SELECT 2*x + 3*y FROM v) \
             SUBJECTTO (SELECT x + y >= 10, x >= 0, y >= 0 FROM v) \
             USING solverlp()",
        )
        .unwrap();
    assert_eq!(t.value_by_name(0, "x").unwrap(), &Value::Float(10.0));
    assert_eq!(t.value_by_name(0, "y").unwrap(), &Value::Float(0.0));
}

#[test]
fn mip_knapsack_via_solveselect() {
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE items (id int, value float8, weight float8, pick int);
         INSERT INTO items VALUES
           (1, 60, 10, NULL), (2, 100, 20, NULL), (3, 120, 30, NULL)",
    )
    .unwrap();
    let t = s
        .query(
            "SOLVESELECT it(pick) AS (SELECT * FROM items) \
             MAXIMIZE (SELECT sum(value * pick) FROM it) \
             SUBJECTTO (SELECT sum(weight * pick) <= 50 FROM it), \
                       (SELECT 0 <= pick <= 1 FROM it) \
             USING solverlp.cbc()",
        )
        .unwrap();
    let picks: Vec<i64> =
        t.column_values("pick").unwrap().iter().map(|v| v.as_i64().unwrap()).collect();
    assert_eq!(picks, vec![0, 1, 1]);
}

#[test]
fn maximize_with_equality_binding() {
    let mut s = Session::new();
    s.execute_script("CREATE TABLE v (a float8, b float8); INSERT INTO v VALUES (NULL, NULL)")
        .unwrap();
    let t = s
        .query(
            "SOLVESELECT q(a, b) AS (SELECT * FROM v) \
             MAXIMIZE (SELECT a FROM q) \
             SUBJECTTO (SELECT a = 2 * b, 0 <= b <= 3 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    assert_eq!(t.value_by_name(0, "a").unwrap(), &Value::Float(6.0));
}

#[test]
fn infeasible_problem_reports_error() {
    let mut s = Session::new();
    s.execute_script("CREATE TABLE v (x float8); INSERT INTO v VALUES (NULL)").unwrap();
    let err = s
        .query(
            "SOLVESELECT q(x) AS (SELECT * FROM v) \
             SUBJECTTO (SELECT x >= 5, x <= 3 FROM q) USING solverlp()",
        )
        .unwrap_err();
    assert!(err.to_string().contains("infeasible"));
}

#[test]
fn unknown_solver_lists_available() {
    let mut s = Session::new();
    s.execute_script("CREATE TABLE v (x float8); INSERT INTO v VALUES (NULL)").unwrap();
    let err = s.query("SOLVESELECT q(x) AS (SELECT * FROM v) USING made_up()").unwrap_err();
    assert!(err.to_string().contains("solverlp"));
}

// ---------------------------------------------------------------------------
// Paper §4.1: LR parameter estimation as an L1 regression (CDTE usage)
// ---------------------------------------------------------------------------

#[test]
fn paper_lr_fitting_with_cdte() {
    let mut s = Session::new();
    // pvsupply = 3*outtemp + 2*month + 5, exactly.
    s.execute_script(
        "CREATE TABLE input (time timestamp, outtemp float8, pvsupply float8);
         CREATE TABLE pars (potemp float8, pmonth float8, peps float8);
         INSERT INTO pars VALUES (NULL, NULL, NULL);",
    )
    .unwrap();
    for (i, (mo, da)) in
        [(1, 5), (2, 9), (3, 13), (5, 2), (7, 8), (9, 11), (11, 3), (12, 21)].iter().enumerate()
    {
        let out = 5.0 + 3.0 * i as f64;
        let pv = 3.0 * out + 2.0 * *mo as f64 + 5.0;
        s.execute(&format!("INSERT INTO input VALUES ('2017-{mo:02}-{da:02} 12:00', {out}, {pv})"))
            .unwrap();
    }
    let t = s
        .query(
            "SOLVESELECT p(potemp, pmonth, peps) AS (SELECT * FROM pars) \
             WITH e(error) AS (SELECT *, NULL::float8 AS error FROM input) \
             MINIMIZE (SELECT sum(error) FROM e) \
             SUBJECTTO (SELECT -1*error <= \
                 (potemp*outtemp + pmonth*month(time) + peps - pvsupply) <= error \
                 FROM e, p) \
             USING solverlp.cbc()",
        )
        .unwrap();
    // The output relation is `p` filled with fitted coefficients.
    assert!((t.value_by_name(0, "potemp").unwrap().as_f64().unwrap() - 3.0).abs() < 1e-5);
    assert!((t.value_by_name(0, "pmonth").unwrap().as_f64().unwrap() - 2.0).abs() < 1e-5);
    assert!((t.value_by_name(0, "peps").unwrap().as_f64().unwrap() - 5.0).abs() < 1e-4);
}

#[test]
fn asterisk_notation_matches_explicit_list() {
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE pars (a float8, b float8); INSERT INTO pars VALUES (NULL, NULL)",
    )
    .unwrap();
    for sql in [
        "SOLVESELECT p(*) AS (SELECT * FROM pars) \
         MINIMIZE (SELECT a + b FROM p) SUBJECTTO (SELECT a >= 1, b >= 2 FROM p) \
         USING solverlp()",
        "SOLVESELECT p(a, b) AS (SELECT * FROM pars) \
         MINIMIZE (SELECT a + b FROM p) SUBJECTTO (SELECT a >= 1, b >= 2 FROM p) \
         USING solverlp()",
    ] {
        let t = s.query(sql).unwrap();
        assert_eq!(t.value_by_name(0, "a").unwrap(), &Value::Float(1.0));
        assert_eq!(t.value_by_name(0, "b").unwrap(), &Value::Float(2.0));
    }
}

// ---------------------------------------------------------------------------
// Black-box solving (swarmops) — §3.2 ARIMA order search
// ---------------------------------------------------------------------------

#[test]
fn swarmops_quadratic_bowl() {
    let mut s = Session::new();
    s.execute_script("CREATE TABLE v (x float8); INSERT INTO v VALUES (NULL)").unwrap();
    let t = s
        .query(
            "SOLVESELECT q(x) AS (SELECT * FROM v) \
             MINIMIZE (SELECT (x - 4.0)^2 FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 10 FROM q) \
             USING swarmops.pso(particles := 20, iterations := 60)",
        )
        .unwrap();
    let x = t.value_by_name(0, "x").unwrap().as_f64().unwrap();
    assert!((x - 4.0).abs() < 0.05, "x = {x}");
}

#[test]
fn paper_arima_order_search_query() {
    // §3.2: the parameter-estimation SOLVESELECT generated by the
    // predictive framework, run verbatim through swarmops.pso.
    let mut s = Session::new();
    // AR(1)-ish series for the fitness UDF.
    let y: Vec<f64> = {
        let mut v = vec![10.0];
        for i in 1..200 {
            let prev = v[i - 1];
            v.push(2.0 + 0.8 * prev + ((i * 37 % 11) as f64 - 5.0) * 0.05);
        }
        v
    };
    s.set_arima_training(y);
    let t = s
        .query(
            "SOLVESELECT p(ar, i, ma) AS \
               (SELECT NULL::int AS ar, NULL::int AS i, NULL::int AS ma) \
             MINIMIZE (SELECT arima_rmse( \
                 ar := SELECT ar FROM p, \
                 i := SELECT i FROM p, \
                 ma := SELECT ma FROM p)) \
             SUBJECTTO (SELECT 0 <= ar <= 5, 0 <= i <= 5, 0 <= ma <= 5 FROM p) \
             USING swarmops.pso()",
        )
        .unwrap();
    let ar = t.value_by_name(0, "ar").unwrap().as_i64().unwrap();
    let i = t.value_by_name(0, "i").unwrap().as_i64().unwrap();
    let ma = t.value_by_name(0, "ma").unwrap().as_i64().unwrap();
    // Orders stay in the searched box and are integral.
    for v in [ar, i, ma] {
        assert!((0..=5).contains(&v));
    }
}

#[test]
fn swarmops_sa_and_de_methods() {
    let mut s = Session::new();
    s.execute_script("CREATE TABLE v (x float8); INSERT INTO v VALUES (0.5)").unwrap();
    for method in ["sa", "de"] {
        let t = s
            .query(&format!(
                "SOLVESELECT q(x) AS (SELECT * FROM v) \
                 MINIMIZE (SELECT abs(x - 1.5) FROM q) \
                 SUBJECTTO (SELECT 0 <= x <= 3 FROM q) \
                 USING swarmops.{method}(iterations := 3000)"
            ))
            .unwrap();
        let x = t.value_by_name(0, "x").unwrap().as_f64().unwrap();
        assert!((x - 1.5).abs() < 0.1, "{method}: x = {x}");
    }
}

// ---------------------------------------------------------------------------
// Predictive framework — §3.1
// ---------------------------------------------------------------------------

fn install_table1(s: &mut Session) {
    s.execute_script(
        "CREATE TABLE input (time timestamp, outtemp float8, intemp float8, \
                             hload float8, pvsupply float8);
         INSERT INTO input VALUES
           ('2017-07-02 07:00', 5, 21, 100, 0),
           ('2017-07-02 08:00', 6, 20.5, 250, 0),
           ('2017-07-02 09:00', 6, 21, 150, 200),
           ('2017-07-02 10:00', 7, 23, 120, 254),
           ('2017-07-02 11:00', 8, 23, 80, 320),
           ('2017-07-02 12:00', 9, NULL, NULL, NULL),
           ('2017-07-02 13:00', 11, NULL, NULL, NULL),
           ('2017-07-02 14:00', 12, NULL, NULL, NULL),
           ('2017-07-02 15:00', 11, NULL, NULL, NULL),
           ('2017-07-02 16:00', 11, NULL, NULL, NULL);",
    )
    .unwrap();
}

#[test]
fn paper_table1_predictive_solver() {
    // §3.1: SOLVESELECT t(pvSupply) AS (SELECT * FROM input)
    //        USING predictive_solver()
    let mut s = Session::new();
    install_table1(&mut s);
    let t = s
        .query("SOLVESELECT t(pvsupply) AS (SELECT * FROM input) USING predictive_solver()")
        .unwrap();
    assert_eq!(t.num_rows(), 10);
    // All pvSupply cells are now filled (Table 4 shape)...
    assert!(t.column_values("pvsupply").unwrap().iter().all(|v| !v.is_null()));
    // ...while the other unknown columns stay unknown.
    assert!(t.value_by_name(5, "intemp").unwrap().is_null());
    assert!(t.value_by_name(5, "hload").unwrap().is_null());
    // Historical rows are untouched.
    assert_eq!(t.value_by_name(4, "pvsupply").unwrap(), &Value::Float(320.0));
    // The base table is NOT modified (SOLVESELECT is a view).
    let base = s.query("SELECT pvsupply FROM input ORDER BY time").unwrap();
    assert!(base.rows[9][0].is_null());
}

#[test]
fn arima_solver_with_params_from_paper() {
    let mut s = Session::new();
    install_table1(&mut s);
    let t = s
        .query(
            "SOLVESELECT t(pvsupply) AS (SELECT * FROM input) \
             USING arima_solver(predictions := 5, time_window := 5, features := outtemp)",
        )
        .unwrap();
    let pv = floats(&t, "pvsupply");
    assert_eq!(pv.len(), 10);
    assert!(pv.iter().all(|v| v.is_finite()));
}

#[test]
fn lr_solver_learns_feature_relation() {
    let mut s = Session::new();
    s.execute("CREATE TABLE series (time timestamp, feat float8, y float8)").unwrap();
    for i in 0..40 {
        let feat = (i % 9) as f64;
        let y: String = if i < 30 { format!("{}", 2.0 * feat + 1.0) } else { "NULL".into() };
        s.execute(&format!(
            "INSERT INTO series VALUES ('2020-01-01 00:00'::timestamp + interval '{i} hours', {feat}, {y})"
        ))
        .unwrap();
    }
    let t = s
        .query("SOLVESELECT t(y) AS (SELECT * FROM series) USING lr_solver(features := feat)")
        .unwrap();
    let feats = floats(&t, "feat");
    let ys = floats(&t, "y");
    for i in 30..40 {
        assert!((ys[i] - (2.0 * feats[i] + 1.0)).abs() < 1e-6, "row {i}");
    }
}

#[test]
fn predictive_advisor_caches_selection() {
    let mut s = Session::new();
    install_table1(&mut s);
    let q = "SOLVESELECT t(pvsupply) AS (SELECT * FROM input) USING predictive_solver()";
    s.query(q).unwrap();
    assert_eq!(s.advisor().cache_hits(), 0);
    s.query(q).unwrap();
    assert_eq!(s.advisor().cache_hits(), 1);
}

// ---------------------------------------------------------------------------
// Shared models: SOLVEMODEL, <<, MODELEVAL, INLINE — §4.4
// ---------------------------------------------------------------------------

const LTI_MODEL: &str = "SOLVEMODEL \
    pars AS (SELECT 0.0::float8 AS a1, 0.0::float8 AS b1, 0.0::float8 AS b2) \
    WITH data0 AS (SELECT 21.0::float8 AS intemp), \
         data AS (SELECT time, outtemp, intemp, hload FROM input), \
         simul AS ( \
           WITH RECURSIVE sim(time, x) AS ( \
             SELECT (SELECT min(time) FROM data), (SELECT intemp FROM data0) \
             UNION ALL \
             SELECT sim.time + interval '1 hour', \
                    (SELECT a1 FROM pars) * sim.x \
                    + (SELECT b1 FROM pars) * n.outtemp \
                    + (SELECT b2 FROM pars) * n.hload \
             FROM sim JOIN data n ON n.time = sim.time) \
           SELECT time, x FROM sim)";

#[test]
fn solvemodel_stored_and_evaluated() {
    let mut s = Session::new();
    install_table1(&mut s);
    s.execute("CREATE TABLE model (m model)").unwrap();
    s.execute(&format!("INSERT INTO model SELECT ({LTI_MODEL})")).unwrap();
    assert_eq!(s.query("SELECT count(*) FROM model").unwrap().scalar().unwrap(), Value::Int(1));

    // §4.4 model instantiation with <<.
    let t = s
        .query(
            "SELECT m << (SOLVEMODEL pars(b2) AS \
             (SELECT 0.995 AS a1, 0.001 AS b1, 0.2::float8 AS b2)) FROM model",
        )
        .unwrap();
    let text = t.value(0, 0).to_string();
    assert!(text.contains("0.995"));

    // §4.4 MODELEVAL: inspect model data.
    let t = s.query("MODELEVAL (SELECT a1, b1, b2 FROM pars) IN (SELECT m FROM model)").unwrap();
    assert_eq!(t.value(0, 0), &Value::Float(0.0));

    // MODELEVAL over the simulated relation (recursive CTE inside model).
    let t = s
        .query(
            "MODELEVAL (SELECT count(*) FROM simul) IN (SELECT m << (SOLVEMODEL \
               pars AS (SELECT 0.9::float8 AS a1, 0.08::float8 AS b1, 0.00045::float8 AS b2)) \
             FROM model)",
        )
        .unwrap();
    // 5 historical rows have hload: anchor + 5 steps... data covers rows
    // with NULL hload too; the join stops where hload is NULL because the
    // arithmetic yields NULL which still produces rows. Count is ≥ 6.
    assert!(t.value(0, 0).as_i64().unwrap() >= 6);
}

#[test]
fn paper_p3_model_fitting_with_inline() {
    // §4.4: least-squares fit of LTI parameters via INLINE + swarmops.sa.
    let mut s = Session::new();

    // Build training data from the ground-truth model so the fit target
    // is exact: x' = 0.9x + 0.08*out + 0.00045*h.
    s.execute("CREATE TABLE input (time timestamp, outtemp float8, intemp float8, hload float8)")
        .unwrap();
    let (mut x, a1, b1, b2) = (21.0, 0.9, 0.08, 0.00045);
    for i in 0..30 {
        let out = 8.0 + (i % 7) as f64;
        let h = 500.0 + 130.0 * (i % 5) as f64;
        s.execute(&format!(
            "INSERT INTO input VALUES ('2017-07-01 00:00'::timestamp + interval '{i} hours', \
             {out}, {x}, {h})"
        ))
        .unwrap();
        x = a1 * x + b1 * out + b2 * h;
    }
    s.execute("CREATE TABLE model (m model)").unwrap();
    s.execute(&format!("INSERT INTO model SELECT ({LTI_MODEL})")).unwrap();

    let t = s
        .query(
            "SOLVESELECT t(a1, b1, b2) AS \
               (SELECT 0.5::float8 AS a1, 0.05::float8 AS b1, 0.0005::float8 AS b2) \
             INLINE m AS (SELECT m << \
               (SOLVEMODEL pars AS (SELECT a1, b1, b2 FROM t) \
                WITH data0 AS (SELECT 21.0::float8 AS intemp)) FROM model) \
             MINIMIZE (SELECT sum((m_simul.x - i.intemp)^2) \
                       FROM m_simul, input i WHERE m_simul.time = i.time) \
             SUBJECTTO (SELECT 0 <= a1 <= 1, 0 <= b1 <= 1, 0 <= b2 <= 0.001 FROM t) \
             USING swarmops.sa(iterations := 8000, seed := 11)",
        )
        .unwrap();
    let got_a1 = t.value_by_name(0, "a1").unwrap().as_f64().unwrap();
    // Simulated annealing should land near the generating parameters.
    assert!((got_a1 - 0.9).abs() < 0.12, "a1 = {got_a1}");
}

#[test]
fn paper_p4_cost_optimization_with_inline() {
    // §4.4: HVAC cost minimization — LP over the inlined LTI model.
    let mut s = Session::new();
    s.execute(
        "CREATE TABLE input (time timestamp, outtemp float8, intemp float8, \
                             hload float8, pvsupply float8)",
    )
    .unwrap();
    // 5 future hours: outtemp known, pvsupply forecasted, hload/intemp free.
    for (i, (out, pv)) in
        [(9.0, 200.0), (11.0, 220.0), (12.0, 260.0), (11.0, 140.0), (11.0, 0.0)].iter().enumerate()
    {
        s.execute(&format!(
            "INSERT INTO input VALUES ('2017-07-02 12:00'::timestamp + interval '{i} hours', \
             {out}, NULL, NULL, {pv})"
        ))
        .unwrap();
    }
    s.execute("CREATE TABLE model (m model)").unwrap();
    s.execute(&format!("INSERT INTO model SELECT ({LTI_MODEL})")).unwrap();

    let t = s
        .query(
            "SOLVESELECT t(hload, intemp) AS \
               (SELECT time, outtemp, intemp, hload, pvsupply FROM input WHERE hload IS NULL) \
             INLINE m AS (SELECT m << (SOLVEMODEL \
                 pars AS (SELECT 0.9::float8 AS a1, 0.08::float8 AS b1, 0.00045::float8 AS b2) \
                 WITH data0(intemp) AS (SELECT NULL::float8 AS intemp), \
                      data AS (SELECT time, outtemp, 0.0 AS intemp, hload FROM t)) \
               FROM model) \
             MINIMIZE (SELECT sum((hload - pvsupply) * 0.12) FROM t) \
             SUBJECTTO \
               (SELECT t.intemp = m_simul.x FROM m_simul, t WHERE t.time = m_simul.time), \
               (SELECT intemp = 20 FROM m_data0), \
               (SELECT 20 <= intemp <= 25, 0 <= t.hload <= 17000 FROM t) \
             USING solverlp.cbc()",
        )
        .unwrap();

    let hloads = floats(&t, "hload");
    let intemps = floats(&t, "intemp");
    let outs = floats(&t, "outtemp");
    assert_eq!(hloads.len(), 5);
    // Comfort band respected.
    for &x in &intemps {
        assert!((20.0 - 1e-6..=25.0 + 1e-6).contains(&x), "intemp {x}");
    }
    for &h in &hloads {
        assert!((0.0 - 1e-6..=17000.0 + 1e-6).contains(&h), "hload {h}");
    }
    // Cost-minimal heating keeps the temperature pinned at the lower
    // comfort bound: h_t = (20 - 0.9*20 - 0.08*out_t) / 0.00045 for every
    // step whose *successor* state is still constrained. The final hour's
    // load only affects the state beyond the horizon, so the optimizer
    // sets it to zero (the classic MPC horizon-end effect).
    for (i, &h) in hloads.iter().enumerate() {
        if i + 1 < hloads.len() {
            let expect = ((20.0 - 0.9 * 20.0 - 0.08 * outs[i]) / 0.00045).max(0.0);
            assert!((h - expect).abs() < 1.0, "step {i}: {h} vs {expect}");
        } else {
            assert!(h.abs() < 1e-6, "final step should be unheated, got {h}");
        }
        assert!((intemps[i] - 20.0).abs() < 1e-5);
    }
}

// ---------------------------------------------------------------------------
// Custom solver installation (RC3 extensibility)
// ---------------------------------------------------------------------------

#[test]
fn user_installed_solver_is_callable() {
    use solvedbplus_core::{ProblemInstance, SolveContext, Solver};
    use sqlengine::error::Result as SqlResult;
    use std::sync::Arc;

    struct FillWithAnswer;
    impl Solver for FillWithAnswer {
        fn name(&self) -> &str {
            "answer42"
        }
        fn solve(&self, _ctx: &SolveContext<'_>, prob: &ProblemInstance) -> SqlResult<Table> {
            Ok(solvedbplus_core::problem::apply_solution(prob, &|_| Some(42.0)))
        }
    }

    let mut s = Session::new();
    s.install_solver(Arc::new(FillWithAnswer));
    s.execute_script("CREATE TABLE t (x float8); INSERT INTO t VALUES (NULL), (NULL)").unwrap();
    let t = s.query("SOLVESELECT q(x) AS (SELECT * FROM t) USING answer42()").unwrap();
    assert_eq!(floats(&t, "x"), vec![42.0, 42.0]);
}

#[test]
fn solveselect_composes_with_outer_sql() {
    // The output relation is a relation: usable in FROM via a subquery.
    let mut s = Session::new();
    s.execute_script("CREATE TABLE v (x float8); INSERT INTO v VALUES (NULL)").unwrap();
    // Note: SOLVESELECT as a derived table is exercised through
    // INSERT ... SELECT over its result via a temp table instead, since
    // the grammar nests SOLVESELECT only at statement level and in
    // expressions.
    let t = s
        .query(
            "SOLVESELECT q(x) AS (SELECT * FROM v) \
             MINIMIZE (SELECT x FROM q) SUBJECTTO (SELECT x >= 7 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    s.execute("CREATE TABLE result (x float8)").unwrap();
    let x = t.value(0, 0).as_f64().unwrap();
    s.execute(&format!("INSERT INTO result VALUES ({x})")).unwrap();
    assert_eq!(s.query_scalar("SELECT x FROM result").unwrap(), Value::Float(7.0));
}

#[test]
fn solveselect_composes_as_query_body() {
    // CREATE TABLE AS SOLVESELECT, INSERT ... SOLVESELECT, and
    // SOLVESELECT in a FROM subquery.
    let mut s = Session::new();
    s.execute_script("CREATE TABLE v (x float8); INSERT INTO v VALUES (NULL)").unwrap();
    s.execute(
        "CREATE TABLE solved AS SOLVESELECT q(x) AS (SELECT * FROM v) \
         MINIMIZE (SELECT x FROM q) SUBJECTTO (SELECT x >= 3 FROM q) USING solverlp()",
    )
    .unwrap();
    assert_eq!(s.query_scalar("SELECT x FROM solved").unwrap(), Value::Float(3.0));

    s.execute(
        "INSERT INTO solved SOLVESELECT q(x) AS (SELECT * FROM v) \
         MAXIMIZE (SELECT x FROM q) SUBJECTTO (SELECT x <= 9 FROM q) USING solverlp()",
    )
    .unwrap();
    assert_eq!(s.query_scalar("SELECT sum(x) FROM solved").unwrap(), Value::Float(12.0));

    let t = s
        .query(
            "SELECT d.x * 10 AS big FROM (SOLVESELECT q(x) AS (SELECT * FROM v) \
             MINIMIZE (SELECT x FROM q) SUBJECTTO (SELECT x >= 1 FROM q) \
             USING solverlp()) AS d",
        )
        .unwrap();
    assert_eq!(t.value(0, 0), &Value::Float(10.0));
}
