//! Integration tests for `solvecheck`, the pre-solve static analyzer:
//! one positive and one negative case per SD code, agreement with the
//! runtime error wording (SD002), warning delivery on `Session::execute`
//! results, the `EXPLAIN CHECK` surface, and no-false-positive checks
//! over the repository's example workloads.

use solvedbplus_core::Session;
use sqlengine::diag::{Diagnostic, Severity};
use sqlengine::Outcome;

/// A session with one NULL-filled decision table `v (x, y)`.
fn lp_session() -> Session {
    let mut s = Session::new();
    s.execute_script("CREATE TABLE v (x float8, y float8); INSERT INTO v VALUES (NULL, NULL)")
        .unwrap();
    s
}

fn codes(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.code.as_str()).collect()
}

fn find<'a>(diags: &'a [Diagnostic], code: &str) -> Option<&'a Diagnostic> {
    diags.iter().find(|d| d.code == code)
}

// ---------------------------------------------------------------------------
// SD001 — decision variable unbounded in the objective direction
// ---------------------------------------------------------------------------

#[test]
fn sd001_fires_when_the_objective_direction_is_unbounded() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x) AS (SELECT x FROM v) \
             MAXIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT x >= 0 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let d = find(&diags, "SD001").expect("SD001 expected");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("unbounded"), "message: {}", d.message);
}

#[test]
fn sd001_stays_silent_when_the_needed_bound_exists() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x) AS (SELECT x FROM v) \
             MAXIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT x >= 0, x <= 10 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    assert!(find(&diags, "SD001").is_none(), "got {:?}", codes(&diags));
}

#[test]
fn sd001_stays_silent_for_coupled_variables() {
    // x appears in a multi-variable constraint: the coupling may bound
    // it indirectly, so the check must not guess.
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x, y) AS (SELECT * FROM v) \
             MAXIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT x + y <= 10 FROM q), (SELECT y >= 0 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    assert!(find(&diags, "SD001").is_none(), "got {:?}", codes(&diags));
}

// ---------------------------------------------------------------------------
// SD002 — nonlinear rule but the linear solver is named
// ---------------------------------------------------------------------------

#[test]
fn sd002_fires_for_nonlinear_objective_under_solverlp() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x) AS (SELECT x FROM v) \
             MINIMIZE (SELECT x * x FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 10 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let d = find(&diags, "SD002").expect("SD002 expected");
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.detail.as_deref().unwrap_or("").contains("swarmops"),
        "fix-it should point at swarmops: {:?}",
        d.detail
    );
}

#[test]
fn sd002_message_matches_the_runtime_error() {
    // Satellite guarantee: the analyzer's wording and the solver's
    // run-time failure agree on clause, rule and reason.
    let sql = "SOLVESELECT q(x) AS (SELECT x FROM v) \
               MINIMIZE (SELECT x * x FROM q) \
               SUBJECTTO (SELECT 0 <= x <= 10 FROM q) \
               USING solverlp()";
    let mut s = lp_session();
    let d = s.check(sql).unwrap();
    let sd002 = find(&d, "SD002").expect("SD002 expected");
    let runtime = s.execute(sql).expect_err("solverlp must reject x*x").to_string();
    assert!(
        runtime.contains(&sd002.message),
        "runtime error {runtime:?} should contain the diagnostic message {:?}",
        sd002.message
    );
}

#[test]
fn sd002_stays_silent_for_blackbox_solvers() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x) AS (SELECT x FROM v) \
             MINIMIZE (SELECT x * x FROM q) \
             SUBJECTTO (SELECT -10 <= x <= 10 FROM q) \
             USING swarmops.pso()",
        )
        .unwrap();
    assert!(find(&diags, "SD002").is_none(), "got {:?}", codes(&diags));
}

// ---------------------------------------------------------------------------
// SD003 — decision columns never referenced by any rule
// ---------------------------------------------------------------------------

#[test]
fn sd003_fires_for_an_unreferenced_decision_column() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x, y) AS (SELECT * FROM v) \
             MAXIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 5 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let d = find(&diags, "SD003").expect("SD003 expected");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains('y'), "message should name the column: {}", d.message);
    assert!(
        d.detail.as_deref().unwrap_or("").contains("pruned"),
        "detail should mention pruning: {:?}",
        d.detail
    );
}

#[test]
fn sd003_stays_silent_when_every_column_is_referenced() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x, y) AS (SELECT * FROM v) \
             MAXIMIZE (SELECT x + y FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 5, 0 <= y <= 5 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    assert!(find(&diags, "SD003").is_none(), "got {:?}", codes(&diags));
}

// ---------------------------------------------------------------------------
// SD004 — trivially infeasible constant constraints
// ---------------------------------------------------------------------------

#[test]
fn sd004_fires_for_a_constant_false_constraint() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x) AS (SELECT x FROM v) \
             MAXIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 5 FROM q), (SELECT 1 <= 0 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let d = find(&diags, "SD004").expect("SD004 expected");
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn sd004_fires_when_decision_variables_cancel() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x) AS (SELECT x FROM v) \
             MAXIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 5 FROM q), (SELECT x - x <= -1 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    assert!(find(&diags, "SD004").is_some(), "got {:?}", codes(&diags));
}

#[test]
fn sd004_stays_silent_for_satisfiable_constraints() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x) AS (SELECT x FROM v) \
             MAXIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 5 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    assert!(find(&diags, "SD004").is_none(), "got {:?}", codes(&diags));
}

// ---------------------------------------------------------------------------
// SD005 — duplicate / shadowed constraints
// ---------------------------------------------------------------------------

#[test]
fn sd005_fires_for_exact_duplicates() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x) AS (SELECT x FROM v) \
             MAXIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT x <= 5 FROM q), (SELECT x <= 5 FROM q), \
                       (SELECT x >= 0 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let d = find(&diags, "SD005").expect("SD005 expected");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("2 times"), "message: {}", d.message);
}

#[test]
fn sd005_notes_a_shadowed_bound() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x) AS (SELECT x FROM v) \
             MAXIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT x <= 10, x <= 20, x >= 0 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let d = find(&diags, "SD005").expect("SD005 expected");
    assert_eq!(d.severity, Severity::Note);
    assert!(d.message.contains("shadowed"), "message: {}", d.message);
}

#[test]
fn sd005_stays_silent_for_distinct_constraints() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x, y) AS (SELECT * FROM v) \
             MAXIMIZE (SELECT x + y FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 5, 0 <= y <= 7 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    assert!(find(&diags, "SD005").is_none(), "got {:?}", codes(&diags));
}

// ---------------------------------------------------------------------------
// SD006 — objective contains no decision variables
// ---------------------------------------------------------------------------

#[test]
fn sd006_fires_for_a_constant_objective() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x) AS (SELECT x FROM v) \
             MAXIMIZE (SELECT 42 FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 5 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let d = find(&diags, "SD006").expect("SD006 expected");
    assert_eq!(d.severity, Severity::Warning);
    assert!(
        d.detail.as_deref().unwrap_or("").contains("42"),
        "detail should show the constant: {:?}",
        d.detail
    );
}

#[test]
fn sd006_stays_silent_when_the_objective_uses_variables() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x) AS (SELECT x FROM v) \
             MAXIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 5 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    assert!(find(&diags, "SD006").is_none(), "got {:?}", codes(&diags));
}

// ---------------------------------------------------------------------------
// SD007 — multiple objectives for a single-objective solver
// ---------------------------------------------------------------------------

#[test]
fn sd007_fires_for_two_objectives_under_solverlp() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x, y) AS (SELECT * FROM v) \
             MINIMIZE (SELECT x FROM q) \
             MAXIMIZE (SELECT y FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 5, 0 <= y <= 5 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let d = find(&diags, "SD007").expect("SD007 expected");
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.detail.as_deref().unwrap_or("").contains("weighted sum"),
        "detail should suggest a weighted sum: {:?}",
        d.detail
    );
}

#[test]
fn sd007_stays_silent_with_a_single_objective() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x) AS (SELECT x FROM v) \
             MINIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 5 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    assert!(find(&diags, "SD007").is_none(), "got {:?}", codes(&diags));
}

// ---------------------------------------------------------------------------
// Delivery: warnings on execute results, EXPLAIN CHECK, severity order
// ---------------------------------------------------------------------------

#[test]
fn warnings_are_attached_to_successful_execute_results() {
    let mut s = lp_session();
    let r = s
        .execute(
            "SOLVESELECT q(x) AS (SELECT x FROM v) \
             MAXIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT x <= 10, x <= 20, x >= 0 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    assert!(matches!(r.outcome, Outcome::Table(_)));
    let d = find(&r.warnings, "SD005").expect("shadowed-bound note expected");
    assert_eq!(d.severity, Severity::Note);
    // The warnings channel is advisory only.
    assert!(r.warnings.iter().all(|d| d.severity <= Severity::Warning));
}

#[test]
fn plain_sql_results_carry_no_warnings() {
    let mut s = lp_session();
    let r = s.execute("SELECT 1").unwrap();
    assert!(r.warnings.is_empty());
}

#[test]
fn nested_solve_warnings_reach_the_outer_result() {
    // A SOLVESELECT in FROM position has no warnings channel of its
    // own; its advisory findings must surface on the enclosing
    // statement's result instead of being dropped.
    let mut s = lp_session();
    let r = s
        .execute(
            "SELECT count(*) FROM ( \
               SOLVESELECT q(x) AS (SELECT x FROM v) \
               MAXIMIZE (SELECT x FROM q) \
               SUBJECTTO (SELECT x <= 10, x <= 20, x >= 0 FROM q) \
               USING solverlp()) sub",
        )
        .unwrap();
    assert!(matches!(r.outcome, Outcome::Table(_)));
    let d = find(&r.warnings, "SD005").expect("nested solve's SD005 should propagate");
    assert!(d.severity <= Severity::Warning);
    // The drain is per statement: the next statement starts clean.
    let r = s.execute("SELECT 1").unwrap();
    assert!(r.warnings.is_empty());
}

#[test]
fn explain_check_returns_the_diagnostics_table() {
    let mut s = lp_session();
    let t = s
        .query(
            "EXPLAIN CHECK SOLVESELECT q(x) AS (SELECT x FROM v) \
             MAXIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT x >= 0 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let names: Vec<&str> = t.schema.columns.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, ["code", "severity", "message", "detail"]);
    assert!(
        t.rows.iter().any(|r| r[0] == sqlengine::Value::text("SD001")),
        "EXPLAIN CHECK should list SD001, got {t}"
    );
}

#[test]
fn explain_without_check_renders_the_plan() {
    let mut s = lp_session();
    let t = s
        .query(
            "EXPLAIN SOLVESELECT q(x) AS (SELECT x FROM v) \
             MAXIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 5 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let names: Vec<&str> = t.schema.columns.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, ["plan"]);
    assert!(!t.rows.is_empty());
}

#[test]
fn diagnostics_are_ordered_most_severe_first() {
    let s = lp_session();
    let diags = s
        .check(
            // SD004 (error) + SD005 (note) in one model.
            "SOLVESELECT q(x) AS (SELECT x FROM v) \
             MAXIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT x <= 10, x <= 20, x >= 0 FROM q), (SELECT 1 <= 0 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    assert!(diags.len() >= 2);
    for w in diags.windows(2) {
        assert!(w[0].severity >= w[1].severity, "not sorted: {:?}", codes(&diags));
    }
}

// ---------------------------------------------------------------------------
// No false positives on the repository's example workloads
// ---------------------------------------------------------------------------

#[test]
fn quickstart_lp_and_knapsack_are_clean() {
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE products (name text, profit float8, hours float8, qty float8);
         INSERT INTO products VALUES
           ('chair', 45, 2.0, NULL), ('table', 80, 4.0, NULL), ('shelf', 25, 1.0, NULL);
         CREATE TABLE cargo (item text, value float8, weight float8, take int);
         INSERT INTO cargo VALUES
           ('laptop', 60, 10, NULL), ('camera', 100, 20, NULL),
           ('drone', 120, 30, NULL), ('books', 40, 25, NULL);",
    )
    .unwrap();
    let lp = s
        .check(
            "SOLVESELECT p(qty) AS (SELECT * FROM products) \
             MAXIMIZE (SELECT sum(profit * qty) FROM p) \
             SUBJECTTO (SELECT sum(hours * qty) <= 120 FROM p), \
                       (SELECT 0 <= qty <= 40 FROM p) \
             USING solverlp()",
        )
        .unwrap();
    assert!(lp.is_empty(), "quickstart LP should be clean, got {:?}", codes(&lp));
    let mip = s
        .check(
            "SOLVESELECT c(take) AS (SELECT * FROM cargo) \
             MAXIMIZE (SELECT sum(value * take) FROM c) \
             SUBJECTTO (SELECT sum(weight * take) <= 50 FROM c), \
                       (SELECT 0 <= take <= 1 FROM c) \
             USING solverlp.cbc()",
        )
        .unwrap();
    // The only findings allowed on the knapsack are the informational
    // matrix-classification notes (SD020+) — no SD001–SD019 smells.
    assert!(
        mip.iter().all(|d| d.severity == Severity::Note && d.code.as_str() >= "SD020"),
        "knapsack should have no smells, got {:?}",
        codes(&mip)
    );
    assert!(mip.iter().any(|d| d.code == "SD020"), "knapsack row should be classified");
}

#[test]
fn production_planning_example_is_clean() {
    let mut s = Session::new();
    s.execute(
        "CREATE TABLE months (m int, demand float8, capacity float8,
                              unit_profit float8, hold_cost float8,
                              produce float8, stock float8)",
    )
    .unwrap();
    for (m, (d, cap)) in
        [(120.0, 150.0), (160.0, 180.0), (220.0, 200.0), (140.0, 150.0)].iter().enumerate()
    {
        s.execute(&format!(
            "INSERT INTO months VALUES ({}, {d}, {cap}, 9.0, 1.5, NULL, NULL)",
            m + 1
        ))
        .unwrap();
    }
    let diags = s
        .check(
            "SOLVESELECT t(produce, stock) AS (SELECT * FROM months) \
             MAXIMIZE (SELECT sum(demand * unit_profit - hold_cost * stock) FROM t) \
             SUBJECTTO \
               (SELECT cur.stock = prv.stock + cur.produce - cur.demand \
                FROM t cur JOIN t prv ON cur.m = prv.m + 1), \
               (SELECT stock = produce - demand FROM t WHERE m = 1), \
               (SELECT 0 <= produce <= capacity, stock >= 0 FROM t) \
             USING solverlp()",
        )
        .unwrap();
    assert!(diags.is_empty(), "production planning should be clean, got {:?}", codes(&diags));
}

#[test]
fn sudoku_example_is_clean() {
    // The most constraint-heavy solverlp example: one-hot encoding with
    // grouped aggregate constraints. No duplicate/shadow/unbounded
    // findings may fire here.
    let mut s = Session::new();
    s.execute("CREATE TABLE cells (r int, c int, v int, box int, pick int)").unwrap();
    for r in 1..=4 {
        for c in 1..=4 {
            let b = ((r - 1) / 2) * 2 + (c - 1) / 2 + 1;
            for v in 1..=4 {
                s.execute(&format!("INSERT INTO cells VALUES ({r}, {c}, {v}, {b}, NULL)")).unwrap();
            }
        }
    }
    s.execute_script(
        "CREATE TABLE clues (r int, c int, v int);
         INSERT INTO clues VALUES (1,1,1), (1,2,2), (2,1,3), (2,3,1), (3,2,1), (4,4,1)",
    )
    .unwrap();
    let diags = s
        .check(
            "SOLVESELECT g(pick) AS (SELECT * FROM cells) \
             MAXIMIZE (SELECT sum(pick) FROM g) \
             SUBJECTTO \
               (SELECT sum(pick) = 1 FROM g GROUP BY r, c), \
               (SELECT sum(pick) = 1 FROM g GROUP BY r, v), \
               (SELECT sum(pick) = 1 FROM g GROUP BY c, v), \
               (SELECT sum(pick) = 1 FROM g GROUP BY box, v), \
               (SELECT pick = 1 FROM g JOIN clues ON g.r = clues.r \
                  AND g.c = clues.c AND g.v = clues.v), \
               (SELECT 0 <= pick <= 1 FROM g) \
             USING solverlp.cbc()",
        )
        .unwrap();
    // Matrix classification legitimately reports the one-hot structure
    // (SD020 census, SD023 implied integrality); anything else — any
    // warning, any SD001–SD019 finding — is a false positive.
    assert!(
        diags.iter().all(|d| d.severity == Severity::Note && d.code.as_str() >= "SD020"),
        "sudoku should have no smells, got {:?}",
        codes(&diags)
    );
    assert!(diags.iter().any(|d| d.code == "SD020"), "sudoku rows should be classified");
}

#[test]
fn predictive_statements_are_clean() {
    // No rules at all: the analyzer must stay completely silent rather
    // than flag every decision column as unreferenced.
    let mut s = Session::new();
    s.execute("CREATE TABLE sales (day timestamp, units float8)").unwrap();
    for i in 0..30 {
        let v = if i < 25 { format!("{}", 100.0 + 3.0 * i as f64) } else { "NULL".to_string() };
        s.execute(&format!(
            "INSERT INTO sales VALUES ('2026-06-01'::timestamp + interval '{i} days', {v})"
        ))
        .unwrap();
    }
    let diags =
        s.check("SOLVESELECT f(units) AS (SELECT * FROM sales) USING predictive_solver()").unwrap();
    assert!(diags.is_empty(), "predictive statement should be clean, got {:?}", codes(&diags));
    let r = s
        .execute("SOLVESELECT f(units) AS (SELECT * FROM sales) USING predictive_solver()")
        .unwrap();
    assert!(r.warnings.is_empty(), "got {:?}", codes(&r.warnings));
}
