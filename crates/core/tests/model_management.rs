//! Model management and failure-path tests: storage round-trips,
//! instantiation chains, MODELEVAL edge cases, and solver errors.

use solvedbplus_core::Session;
use sqlengine::Value;

#[test]
fn models_survive_text_storage_roundtrip() {
    let mut s = Session::new();
    s.execute("CREATE TABLE m1 (m model)").unwrap();
    s.execute(
        "INSERT INTO m1 SELECT (SOLVEMODEL pars AS (SELECT 1.5 AS k) \
         WITH out AS (SELECT (SELECT k FROM pars) * 2.0 AS v))",
    )
    .unwrap();
    // Cast to text and back into a text-typed table.
    s.execute("CREATE TABLE m2 AS SELECT m::text AS mt FROM m1").unwrap();
    let text = s.query_scalar("SELECT mt FROM m2").unwrap();
    assert!(text.as_str().unwrap().starts_with("SOLVEMODEL"));
    // A text-stored model still works in MODELEVAL (expect_model reparses).
    let v = s.query_scalar("MODELEVAL (SELECT v FROM out) IN (SELECT mt FROM m2)").unwrap();
    assert_eq!(v.as_f64().unwrap(), 3.0);
}

#[test]
fn chained_instantiation_applies_left_to_right() {
    let mut s = Session::new();
    s.execute("CREATE TABLE model (m model)").unwrap();
    s.execute("INSERT INTO model SELECT (SOLVEMODEL pars AS (SELECT 1.0 AS k))").unwrap();
    // ((m << Δ1) << Δ2): the last instantiation wins.
    let v = s
        .query_scalar(
            "MODELEVAL (SELECT k FROM pars) IN \
             (SELECT m << (SOLVEMODEL pars AS (SELECT 2.0 AS k)) \
                     << (SOLVEMODEL pars AS (SELECT 3.0 AS k)) FROM model)",
        )
        .unwrap();
    assert_eq!(v.as_f64().unwrap(), 3.0);
}

#[test]
fn modeleval_sees_relations_in_scope_order() {
    let mut s = Session::new();
    s.execute("CREATE TABLE model (m model)").unwrap();
    s.execute(
        "INSERT INTO model SELECT (SOLVEMODEL a AS (SELECT 10.0 AS x) \
         WITH b AS (SELECT x + 1.0 AS y FROM a), \
              c AS (SELECT y * 2.0 AS z FROM b))",
    )
    .unwrap();
    let v = s.query_scalar("MODELEVAL (SELECT z FROM c) IN (SELECT m FROM model)").unwrap();
    assert_eq!(v.as_f64().unwrap(), 22.0);
}

#[test]
fn modeleval_rejects_non_models() {
    let mut s = Session::new();
    s.execute_script("CREATE TABLE t (x int); INSERT INTO t VALUES (1)").unwrap();
    let err = s.query("MODELEVAL (SELECT 1) IN (SELECT x FROM t)").unwrap_err();
    assert!(err.to_string().contains("model"));
}

#[test]
fn instantiate_requires_model_operands() {
    let mut s = Session::new();
    s.execute("CREATE TABLE model (m model)").unwrap();
    s.execute("INSERT INTO model SELECT (SOLVEMODEL p AS (SELECT 1 AS x))").unwrap();
    let err = s.query("SELECT m << 5 FROM model").unwrap_err();
    assert!(err.to_string().contains("model"));
}

#[test]
fn method_validation_through_sql() {
    let mut s = Session::new();
    s.execute_script("CREATE TABLE v (x float8); INSERT INTO v VALUES (NULL)").unwrap();
    let err =
        s.query("SOLVESELECT q(x) AS (SELECT * FROM v) USING solverlp.warp_drive()").unwrap_err();
    assert!(err.to_string().contains("warp_drive"));
    assert!(err.to_string().contains("cbc"));
}

#[test]
fn missing_using_clause_is_reported() {
    let mut s = Session::new();
    s.execute_script("CREATE TABLE v (x float8); INSERT INTO v VALUES (NULL)").unwrap();
    let err = s.query("SOLVESELECT q(x) AS (SELECT * FROM v)").unwrap_err();
    assert!(err.to_string().contains("USING"));
}

#[test]
fn unbounded_problem_is_reported() {
    let mut s = Session::new();
    s.execute_script("CREATE TABLE v (x float8); INSERT INTO v VALUES (NULL)").unwrap();
    let err = s
        .query(
            "SOLVESELECT q(x) AS (SELECT * FROM v) \
             MINIMIZE (SELECT x FROM q) USING solverlp()",
        )
        .unwrap_err();
    assert!(err.to_string().contains("unbounded"));
}

#[test]
fn nonlinear_rules_reject_lp_but_accept_blackbox() {
    let mut s = Session::new();
    s.execute_script("CREATE TABLE v (x float8); INSERT INTO v VALUES (NULL)").unwrap();
    let err = s
        .query(
            "SOLVESELECT q(x) AS (SELECT * FROM v) \
             MINIMIZE (SELECT x * x FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 4 FROM q) USING solverlp()",
        )
        .unwrap_err();
    assert!(err.to_string().contains("linear"), "{err}");
    let t = s
        .query(
            "SOLVESELECT q(x) AS (SELECT * FROM v) \
             MINIMIZE (SELECT x * x FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 4 FROM q) \
             USING swarmops.pso(particles := 15, iterations := 40)",
        )
        .unwrap();
    assert!(t.value(0, 0).as_f64().unwrap().abs() < 0.05);
}

#[test]
fn explain_through_public_api() {
    let mut s = Session::new();
    s.execute_script("CREATE TABLE v (x float8, y float8); INSERT INTO v VALUES (NULL, NULL)")
        .unwrap();
    let e = solvedbplus_core::explain_sql(
        s.db(),
        "SOLVESELECT q(x, y) AS (SELECT * FROM v) \
         MINIMIZE (SELECT x + 2*y FROM q) \
         SUBJECTTO (SELECT x + y = 10, x >= 0, y >= 0 FROM q) \
         USING solverlp()",
    )
    .unwrap();
    assert!(e.linear);
    assert_eq!(e.variables, 2);
    assert_eq!(e.constraint_count, 3);
}

#[test]
fn decision_columns_of_int_type_produce_int_output() {
    let mut s = Session::new();
    s.execute_script("CREATE TABLE v (n int); INSERT INTO v VALUES (NULL)").unwrap();
    let t = s
        .query(
            "SOLVESELECT q(n) AS (SELECT * FROM v) \
             MAXIMIZE (SELECT n FROM q) SUBJECTTO (SELECT 0 <= n <= 7.5 FROM q) \
             USING solverlp.cbc()",
        )
        .unwrap();
    assert_eq!(t.value(0, 0), &Value::Int(7));
}

#[test]
fn output_is_a_view_over_the_input() {
    let mut s = Session::new();
    s.execute_script("CREATE TABLE v (x float8); INSERT INTO v VALUES (NULL)").unwrap();
    s.query(
        "SOLVESELECT q(x) AS (SELECT * FROM v) \
         MINIMIZE (SELECT x FROM q) SUBJECTTO (SELECT x >= 1 FROM q) USING solverlp()",
    )
    .unwrap();
    // The base table keeps its NULL.
    assert!(s.query_scalar("SELECT x FROM v").unwrap().is_null());
}
