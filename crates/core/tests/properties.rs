//! Property-based checks of the SolveDB+ layer: symbolic evaluation
//! agrees with numeric evaluation, model instantiation is lawful, and
//! the CDTE rewrite preserves solutions.

use proptest::prelude::*;
use solvedbplus_core::model::ModelValue;
use solvedbplus_core::symbolic::{as_linexpr, sym_value, LinExpr};
use solvedbplus_core::Session;
use sqlengine::types::{BinOp, Value};

// ---------------------------------------------------------------------------
// Symbolic algebra vs numeric oracle
// ---------------------------------------------------------------------------

/// A random linear computation applied both numerically and symbolically.
#[derive(Debug, Clone)]
enum LinOp {
    AddVar(u32),
    AddConst(f64),
    Scale(f64),
    SubVar(u32),
}

fn arb_ops() -> impl Strategy<Value = Vec<LinOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..4).prop_map(LinOp::AddVar),
            (-50i32..50).prop_map(|c| LinOp::AddConst(c as f64)),
            (-3i32..4).prop_map(|k| LinOp::Scale(k as f64)),
            (0u32..4).prop_map(LinOp::SubVar),
        ],
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Building an expression symbolically and evaluating under an
    /// assignment equals running the same computation numerically.
    #[test]
    fn symbolic_matches_numeric(ops in arb_ops(), assign in prop::collection::vec(-10i32..10, 4)) {
        let a = |v: u32| assign[v as usize] as f64;
        // Numeric.
        let mut num = 0.0f64;
        for op in &ops {
            match op {
                LinOp::AddVar(v) => num += a(*v),
                LinOp::AddConst(c) => num += c,
                LinOp::Scale(k) => num *= k,
                LinOp::SubVar(v) => num -= a(*v),
            }
        }
        // Symbolic through the Value operator hooks.
        let mut sym = Value::Float(0.0);
        for op in &ops {
            sym = match op {
                LinOp::AddVar(v) =>
                    Value::binop(BinOp::Add, &sym, &sym_value(LinExpr::var(*v))).unwrap(),
                LinOp::AddConst(c) =>
                    Value::binop(BinOp::Add, &sym, &Value::Float(*c)).unwrap(),
                LinOp::Scale(k) =>
                    Value::binop(BinOp::Mul, &sym, &Value::Float(*k)).unwrap(),
                LinOp::SubVar(v) =>
                    Value::binop(BinOp::Sub, &sym, &sym_value(LinExpr::var(*v))).unwrap(),
            };
        }
        let lin = as_linexpr(&sym).unwrap();
        let got = lin.eval(&|v| a(v));
        prop_assert!((got - num).abs() < 1e-6, "sym {} vs num {}", got, num);
    }

    /// LinExpr add/sub/scale satisfy basic vector-space laws.
    #[test]
    fn linexpr_laws(c1 in -10i32..10, c2 in -10i32..10, k in -5i32..5) {
        let a = LinExpr { constant: c1 as f64, terms: vec![(0, 1.0), (2, -2.0)] };
        let b = LinExpr { constant: c2 as f64, terms: vec![(1, 3.0), (2, 1.0)] };
        // Commutativity of add.
        prop_assert_eq!(a.add(&b), b.add(&a));
        // a - a = 0.
        let zero = a.sub(&a);
        prop_assert!(zero.is_constant() && zero.constant == 0.0);
        // Distributivity of scale over add.
        let lhs = a.add(&b).scale(k as f64);
        let rhs = a.scale(k as f64).add(&b.scale(k as f64));
        for v in 0..4u32 {
            let x = |i: u32| (i as f64) + 0.5;
            prop_assert!((lhs.eval(&x) - rhs.eval(&x)).abs() < 1e-9);
            let _ = v;
        }
    }

    /// Instantiation: `m << m` is idempotent on relation aliases, and
    /// instantiating with an unrelated model only appends.
    #[test]
    fn instantiation_laws(k in 0.0f64..10.0) {
        let m = ModelValue::parse(
            "SOLVEMODEL pars AS (SELECT 1.0 AS a) WITH data AS (SELECT 2.0 AS b)",
        ).unwrap();
        let self_inst = m.instantiate(&m);
        prop_assert_eq!(self_inst.aliases(), m.aliases());

        let delta = ModelValue::parse(
            &format!("SOLVEMODEL extra AS (SELECT {k} AS z)"),
        ).unwrap();
        let appended = m.instantiate(&delta);
        prop_assert_eq!(appended.aliases().len(), m.aliases().len() + 1);
        // The original members are untouched.
        prop_assert_eq!(appended.stmt.input.query.clone(), m.stmt.input.query.clone());
    }

    /// The LP solved through SQL equals the closed form for the
    /// one-dimensional bounded problem min c·x, lo ≤ x ≤ hi.
    #[test]
    fn one_dim_lp_closed_form(c in -5i32..5, lo in -10i32..0, span in 1i32..20) {
        prop_assume!(c != 0);
        let hi = lo + span;
        let mut s = Session::new();
        s.execute_script("CREATE TABLE v (x float8); INSERT INTO v VALUES (NULL)").unwrap();
        let t = s.query(&format!(
            "SOLVESELECT q(x) AS (SELECT * FROM v) \
             MINIMIZE (SELECT {c} * x FROM q) \
             SUBJECTTO (SELECT {lo} <= x <= {hi} FROM q) USING solverlp()"
        )).unwrap();
        let got = t.value(0, 0).as_f64().unwrap();
        let expect = if c > 0 { lo as f64 } else { hi as f64 };
        prop_assert!((got - expect).abs() < 1e-6, "got {} expect {}", got, expect);
    }
}

/// The CDTE rewrite produces the same optimum as the native path over
/// randomized L1-regression instances.
#[test]
fn cdte_rewrite_equivalence_randomized() {
    use solvedbplus_core::rewrite::solve_via_rewrite;
    use sqlengine::ast::Statement;

    for seed in 0..8u64 {
        let slope = 1.0 + seed as f64 * 0.5;
        let mut s = Session::new();
        s.execute_script(
            "CREATE TABLE pars (a float8); INSERT INTO pars VALUES (NULL);
             CREATE TABLE obs (x float8, y float8);",
        )
        .unwrap();
        for i in 1..=6 {
            let x = i as f64;
            let y = slope * x + if i % 2 == 0 { 0.1 } else { -0.1 };
            s.execute(&format!("INSERT INTO obs VALUES ({x}, {y})")).unwrap();
        }
        let sql = "SOLVESELECT p(a) AS (SELECT * FROM pars) \
             WITH e(err) AS (SELECT x, y, NULL::float8 AS err FROM obs) \
             MINIMIZE (SELECT sum(err) FROM e) \
             SUBJECTTO (SELECT -1*err <= a * x - y <= err FROM e, p) \
             USING solverlp()";
        let native = s.query(sql).unwrap();
        let stmt = match sqlengine::parser::parse_statement(sql).unwrap() {
            Statement::Solve(sv) => sv,
            _ => unreachable!(),
        };
        let rewritten = solve_via_rewrite(s.db(), &sqlengine::Ctes::new(), &stmt).unwrap();
        let a1 = native.value_by_name(0, "a").unwrap().as_f64().unwrap();
        let a2 = rewritten.value_by_name(0, "a").unwrap().as_f64().unwrap();
        assert!((a1 - a2).abs() < 1e-6, "seed {seed}: {a1} vs {a2}");
        assert!((a1 - slope).abs() < 0.2, "seed {seed}: slope {a1} vs {slope}");
    }
}
