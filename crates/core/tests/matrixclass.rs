//! End-to-end tests for the matrix classification pass acting inside
//! the solver: TU-certified models skip branch-and-bound via the
//! LP-only shortcut, implied-integral declarations are relaxed, and
//! both paths produce the same objective as the full search — the
//! proofs are shortcuts, never approximations.

use obs::SolverStats;
use solvedbplus_core::Session;

/// Solve and return the first solver record of the execution trace.
fn traced(s: &mut Session, sql: &str) -> SolverStats {
    let res = s.execute(sql).expect("solve");
    res.trace.and_then(|t| t.solvers.first().cloned()).expect("solver stats in trace")
}

fn off(sql: &str) -> String {
    sql.replace("solverlp.cbc()", "solverlp.cbc(matrixclass := off)")
}

/// A 3×3 assignment MIP: network matrix, integral data. With the
/// classification on, the solver proves total unimodularity, solves the
/// LP relaxation once and reports zero branch-and-bound nodes; the
/// objective matches the full search exactly.
#[test]
fn network_tu_model_skips_branch_and_bound() {
    let mut s = Session::new();
    s.execute_script("CREATE TABLE assign (w int, t int, cost float8, x int)").unwrap();
    for w in 0..3 {
        for t in 0..3 {
            let cost = 1.0 + ((w * 7 + t * 13) % 5) as f64;
            s.execute_script(&format!("INSERT INTO assign VALUES ({w}, {t}, {cost}, NULL)"))
                .unwrap();
        }
    }
    let sql = "SOLVESELECT a(x) AS (SELECT * FROM assign) \
               MINIMIZE (SELECT sum(cost * x) FROM a) \
               SUBJECTTO (SELECT sum(x) = 1 FROM a GROUP BY w), \
                         (SELECT sum(x) = 1 FROM a GROUP BY t), \
                         (SELECT 0 <= x <= 1 FROM a) \
               USING solverlp.cbc()";
    let on = traced(&mut s, sql);
    let full = traced(&mut s, &off(sql));

    assert_eq!(on.integrality_proof, "network-tu");
    assert_eq!(on.nodes_explored, 0, "certified model must not branch");
    assert!(on.matrix_class.contains("setpart:"), "census missing: {:?}", on.matrix_class);
    assert!(on.blocks >= 1);

    assert_eq!(full.integrality_proof, "", "matrixclass := off must not analyze");
    assert_eq!(full.matrix_class, "");
    let (a, b) = (on.objective.unwrap(), full.objective.unwrap());
    assert!((a - b).abs() < 1e-9, "objectives diverged: {a} vs {b}");
}

/// Interval-TU staffing model: consecutive-ones coverage windows over
/// integer staffing levels. The proof survives presolve's Ge→Le row
/// negation and the shortcut fires.
#[test]
fn interval_tu_model_skips_branch_and_bound() {
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE shifts (sid int, staff int);
         INSERT INTO shifts VALUES (1, NULL), (2, NULL), (3, NULL), (4, NULL)",
    )
    .unwrap();
    let sql = "SOLVESELECT s(staff) AS (SELECT * FROM shifts) \
               MINIMIZE (SELECT sum(staff) FROM s) \
               SUBJECTTO (SELECT sum(staff) >= 3 FROM s WHERE sid BETWEEN 1 AND 2), \
                         (SELECT sum(staff) >= 5 FROM s WHERE sid BETWEEN 2 AND 3), \
                         (SELECT sum(staff) >= 2 FROM s WHERE sid BETWEEN 3 AND 4), \
                         (SELECT 0 <= staff <= 10 FROM s) \
               USING solverlp.cbc()";
    let on = traced(&mut s, sql);
    let full = traced(&mut s, &off(sql));

    assert_eq!(on.integrality_proof, "interval-tu");
    assert_eq!(on.nodes_explored, 0);
    let (a, b) = (on.objective.unwrap(), full.objective.unwrap());
    assert!((a - b).abs() < 1e-9, "objectives diverged: {a} vs {b}");
}

/// An integer aggregate tied to binary picks by an equality is implied
/// integral: the solver relaxes it, and the solution (same objective,
/// integral aggregate) is accepted after verification.
#[test]
fn implied_integral_aggregate_is_relaxed_soundly() {
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE goods (gid int, kind int, val float8, wt float8, coef float8, x int)",
    )
    .unwrap();
    // Aggregate row first, then the items.
    s.execute_script("INSERT INTO goods VALUES (0, 1, 0, 0, -1, NULL)").unwrap();
    for i in 1..=8i64 {
        let wt = 2 + (i * 3) % 5;
        let val = 1 + (i * 7) % 9;
        s.execute_script(&format!("INSERT INTO goods VALUES ({i}, 0, {val}, {wt}, {wt}, NULL)"))
            .unwrap();
    }
    let sql = "SOLVESELECT g(x) AS (SELECT * FROM goods) \
               MAXIMIZE (SELECT sum(val * x) FROM g) \
               SUBJECTTO (SELECT sum(coef * x) = 0 FROM g), \
                         (SELECT sum(wt * x) <= 11 FROM g WHERE kind = 0), \
                         (SELECT 0 <= x <= 1 FROM g WHERE kind = 0), \
                         (SELECT 0 <= x <= 1000 FROM g WHERE kind = 1) \
               USING solverlp.cbc()";
    let on = traced(&mut s, sql);
    let full = traced(&mut s, &off(sql));

    assert_eq!(on.integrality_proof, "implied");
    assert!(on.matrix_class.contains("knapsack:1"), "census: {:?}", on.matrix_class);
    let (a, b) = (on.objective.unwrap(), full.objective.unwrap());
    assert!((a - b).abs() < 1e-9, "objectives diverged: {a} vs {b}");

    // The aggregate itself must come back integral even though its
    // declaration was relaxed.
    let t = s
        .query(
            "SOLVESELECT g(x) AS (SELECT * FROM goods) \
                MAXIMIZE (SELECT sum(val * x) FROM g) \
                SUBJECTTO (SELECT sum(coef * x) = 0 FROM g), \
                          (SELECT sum(wt * x) <= 11 FROM g WHERE kind = 0), \
                          (SELECT 0 <= x <= 1 FROM g WHERE kind = 0), \
                          (SELECT 0 <= x <= 1000 FROM g WHERE kind = 1) \
                USING solverlp.cbc()",
        )
        .unwrap();
    for row in &t.rows {
        let x = row[5].as_f64().unwrap();
        assert!((x - x.round()).abs() < 1e-6, "non-integral decision {x}");
    }
}

/// The `matrixclass := off` escape hatch leaves the row-class census,
/// proof and blocks fields empty on the stats record, and `EXPLAIN`
/// still renders a matrix summary line for the on case.
#[test]
fn explain_includes_matrix_summary() {
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE cargo (item text, value float8, weight float8, take int);
         INSERT INTO cargo VALUES ('a', 60, 10, NULL), ('b', 100, 20, NULL), ('c', 120, 30, NULL)",
    )
    .unwrap();
    let res = s
        .execute(
            "EXPLAIN SOLVESELECT c(take) AS (SELECT * FROM cargo) \
             MAXIMIZE (SELECT sum(value * take) FROM c) \
             SUBJECTTO (SELECT sum(weight * take) <= 50 FROM c), \
                       (SELECT 0 <= take <= 1 FROM c) \
             USING solverlp.cbc()",
        )
        .unwrap();
    let rendered = format!("{:?}", res.outcome);
    assert!(rendered.contains("matrix:"), "EXPLAIN output missing matrix summary: {rendered}");
    assert!(rendered.contains("knapsack"), "summary should name the knapsack row: {rendered}");
}
