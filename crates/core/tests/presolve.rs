//! End-to-end tests for the abstract-interpretation presolve: the
//! `EXPLAIN PRESOLVE` surface, the SD008–SD012 diagnostics, the solver
//! integration (`presolve := off`), and the telemetry plumbing down to
//! `sdb_solver_stats`.

use solvedbplus_core::Session;
use sqlengine::diag::{Diagnostic, Severity};

fn lp_session() -> Session {
    let mut s = Session::new();
    s.execute_script("CREATE TABLE v (x float8, y float8); INSERT INTO v VALUES (NULL, NULL)")
        .unwrap();
    s
}

fn codes(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.code.as_str()).collect()
}

// ---------------------------------------------------------------------------
// EXPLAIN PRESOLVE
// ---------------------------------------------------------------------------

#[test]
fn explain_presolve_renders_a_reduction_log() {
    let mut s = lp_session();
    let t = s
        .query(
            "EXPLAIN PRESOLVE SOLVESELECT q(x, y) AS (SELECT x, y FROM v) \
             MAXIMIZE (SELECT sum(x + y) FROM q) \
             SUBJECTTO (SELECT x = 3, 0 <= y <= 10, x + y <= 5 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let text: Vec<String> = t.rows.iter().map(|r| r[0].to_string()).collect();
    let text = text.join("\n");
    // Header with before/after shape, the singleton fix, the residual
    // tightening of y, and the counts footer.
    assert!(text.contains("presolve: 2 vars"), "got:\n{text}");
    assert!(text.contains("fixed q[0].x = 3"), "got:\n{text}");
    assert!(text.contains("tightened q[0].y"), "got:\n{text}");
    assert!(text.contains("variables fixed: 1"), "got:\n{text}");
}

#[test]
fn explain_presolve_reports_proven_infeasibility() {
    let mut s = lp_session();
    let t = s
        .query(
            "EXPLAIN PRESOLVE SOLVESELECT q(x) AS (SELECT x FROM v) \
             SUBJECTTO (SELECT 0 <= x <= 1, x >= 2 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let text: Vec<String> = t.rows.iter().map(|r| r[0].to_string()).collect();
    let text = text.join("\n");
    assert!(text.contains("proves the model infeasible"), "got:\n{text}");
}

#[test]
fn explain_presolve_on_a_nonlinear_model_explains_itself() {
    let mut s = lp_session();
    let t = s
        .query(
            "EXPLAIN PRESOLVE SOLVESELECT q(x) AS (SELECT x FROM v) \
             MINIMIZE (SELECT x * x FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 1 FROM q) \
             USING swarmops.pso()",
        )
        .unwrap();
    let text = t.rows[0][0].to_string();
    assert!(text.contains("do not compile to a linear program"), "got: {text}");
}

#[test]
fn explain_presolve_without_reductions_shows_identity_shape() {
    let mut s = lp_session();
    let t = s
        .query(
            "EXPLAIN PRESOLVE SOLVESELECT q(x, y) AS (SELECT x, y FROM v) \
             MINIMIZE (SELECT sum(x + 2 * y) FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 10, 0 <= y <= 10, x + y >= 4 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let text: Vec<String> = t.rows.iter().map(|r| r[0].to_string()).collect();
    let text = text.join("\n");
    assert!(text.contains("presolve: 2 vars, 1 rows -> 2 vars, 1 rows"), "got:\n{text}");
}

// ---------------------------------------------------------------------------
// SD008 — propagation proves infeasibility
// ---------------------------------------------------------------------------

#[test]
fn sd008_fires_on_propagation_proven_infeasibility() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x, y) AS (SELECT x, y FROM v) \
             SUBJECTTO (SELECT 0 <= x <= 1, 0 <= y <= 1, x + y >= 3 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let sd008 = diags.iter().find(|d| d.code == "SD008").expect("SD008 should fire");
    assert_eq!(sd008.severity, Severity::Error);
    assert!(sd008.detail.as_deref().unwrap_or("").contains("activity"), "{sd008:?}");
}

#[test]
fn sd008_fires_on_contradictory_chained_bounds() {
    let s = lp_session();
    // No single constraint is contradictory; only propagation through
    // the equality chain exposes the conflict.
    let diags = s
        .check(
            "SOLVESELECT q(x, y) AS (SELECT x, y FROM v) \
             SUBJECTTO (SELECT x = y, x >= 2, y <= 1 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    assert!(codes(&diags).contains(&"SD008"), "got {:?}", codes(&diags));
}

#[test]
fn sd008_stays_silent_on_feasible_models() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x, y) AS (SELECT x, y FROM v) \
             MINIMIZE (SELECT sum(x + y) FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 1, 0 <= y <= 1, x + y >= 1 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    assert!(!codes(&diags).contains(&"SD008"), "got {:?}", codes(&diags));
}

// ---------------------------------------------------------------------------
// SD009 — constraints fix every decision variable
// ---------------------------------------------------------------------------

#[test]
fn sd009_fires_when_nothing_is_left_to_optimize() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x, y) AS (SELECT x, y FROM v) \
             MAXIMIZE (SELECT sum(x + y) FROM q) \
             SUBJECTTO (SELECT x = 2, x + y = 5 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let sd009 = diags.iter().find(|d| d.code == "SD009").expect("SD009 should fire");
    assert_eq!(sd009.severity, Severity::Warning);
    assert!(sd009.detail.as_deref().unwrap_or("").contains("q[0].y = 3"), "{sd009:?}");
}

#[test]
fn sd009_stays_silent_when_free_variables_remain() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x, y) AS (SELECT x, y FROM v) \
             MAXIMIZE (SELECT sum(y) FROM q) \
             SUBJECTTO (SELECT x = 2, 0 <= y <= 5 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    assert!(!codes(&diags).contains(&"SD009"), "got {:?}", codes(&diags));
}

// ---------------------------------------------------------------------------
// SD010 — redundant / forcing constraints
// ---------------------------------------------------------------------------

#[test]
fn sd010_flags_constraints_implied_by_declared_bounds() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x, y) AS (SELECT x, y FROM v) \
             MINIMIZE (SELECT sum(x + y) FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 2, 0 <= y <= 2, x + y <= 100 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let sd010 = diags.iter().find(|d| d.code == "SD010").expect("SD010 should fire");
    assert_eq!(sd010.severity, Severity::Note);
    assert!(sd010.message.contains("redundant"), "{sd010:?}");
}

#[test]
fn sd010_flags_forcing_constraints_as_warnings() {
    let s = lp_session();
    // With x, y >= 0, requiring x + y <= 0 pins both at zero.
    let diags = s
        .check(
            "SOLVESELECT q(x, y) AS (SELECT x, y FROM v) \
             MAXIMIZE (SELECT sum(x + y) FROM q) \
             SUBJECTTO (SELECT x >= 0, y >= 0, x + y <= 0 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let forcing = diags
        .iter()
        .find(|d| d.code == "SD010" && d.severity == Severity::Warning)
        .expect("forcing SD010 should fire");
    assert!(forcing.message.contains("forcing"), "{forcing:?}");
}

#[test]
fn sd010_stays_silent_on_binding_constraints() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x, y) AS (SELECT x, y FROM v) \
             MINIMIZE (SELECT sum(x + y) FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 2, 0 <= y <= 2, x + y >= 1 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    assert!(!codes(&diags).contains(&"SD010"), "got {:?}", codes(&diags));
}

// ---------------------------------------------------------------------------
// SD011 — trivially satisfied / no-op constraints
// ---------------------------------------------------------------------------

#[test]
fn sd011_flags_noop_singleton_equalities() {
    let s = lp_session();
    // The range already pins x at 3; the equality adds nothing.
    let diags = s
        .check(
            "SOLVESELECT q(x) AS (SELECT x FROM v) \
             MINIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT 3 <= x <= 3, x = 3 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let sd011 = diags.iter().find(|d| d.code == "SD011").expect("SD011 should fire");
    assert_eq!(sd011.severity, Severity::Note);
    assert!(sd011.message.contains("no-op"), "{sd011:?}");
}

#[test]
fn sd011_stays_silent_for_informative_singletons() {
    let s = lp_session();
    // A clue-style pin that genuinely tightens the declared range.
    let diags = s
        .check(
            "SOLVESELECT q(x, y) AS (SELECT x, y FROM v) \
             MAXIMIZE (SELECT sum(y) FROM q) \
             SUBJECTTO (SELECT 0 <= x <= 9, x = 3, 0 <= y <= 1 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    assert!(!codes(&diags).contains(&"SD011"), "got {:?}", codes(&diags));
}

// ---------------------------------------------------------------------------
// SD012 — pathological coefficient range
// ---------------------------------------------------------------------------

#[test]
fn sd012_fires_on_wide_coefficient_ranges() {
    let s = lp_session();
    let diags = s
        .check(
            "SOLVESELECT q(x, y) AS (SELECT x, y FROM v) \
             MINIMIZE (SELECT sum(x + y) FROM q) \
             SUBJECTTO (SELECT 1000000000.0 * x + 0.001 * y <= 5, \
                        0 <= x <= 1, 0 <= y <= 1 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let sd012 = diags.iter().find(|d| d.code == "SD012").expect("SD012 should fire");
    assert_eq!(sd012.severity, Severity::Warning);
    assert!(sd012.message.contains("orders of magnitude"), "{sd012:?}");
}

#[test]
fn sd012_is_gated_on_linear_solvers() {
    let s = lp_session();
    // Same coefficients, but a derivative-free solver: no factorization,
    // no warning.
    let diags = s
        .check(
            "SOLVESELECT q(x, y) AS (SELECT x, y FROM v) \
             MINIMIZE (SELECT sum(x + y) FROM q) \
             SUBJECTTO (SELECT 1000000000.0 * x + 0.001 * y <= 5, \
                        0 <= x <= 1, 0 <= y <= 1 FROM q) \
             USING swarmops.pso()",
        )
        .unwrap();
    assert!(!codes(&diags).contains(&"SD012"), "got {:?}", codes(&diags));
}

// ---------------------------------------------------------------------------
// Solver integration: presolve on/off
// ---------------------------------------------------------------------------

/// A small knapsack whose LP relaxation is fractional, so branch and
/// bound has real work that presolve's integer bound snapping shrinks.
fn knapsack_session() -> Session {
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE items (id int, weight float8, value float8, pick int);
         INSERT INTO items VALUES
           (1, 4, 10, NULL), (2, 5, 11, NULL), (3, 7, 13, NULL),
           (4, 3, 7, NULL), (5, 6, 12, NULL)",
    )
    .unwrap();
    s
}

const KNAPSACK: &str = "SOLVESELECT k(pick) AS (SELECT * FROM items) \
     MAXIMIZE (SELECT sum(value * pick) FROM k) \
     SUBJECTTO (SELECT sum(weight * pick) <= 13 FROM k), \
               (SELECT 0 <= pick <= 1 FROM k) \
     USING solverlp.cbc()";

#[test]
fn presolve_on_and_off_agree_on_the_objective() {
    let mut on = knapsack_session();
    let t_on = on.query(KNAPSACK).unwrap();
    let mut off = knapsack_session();
    let t_off = off.query(&KNAPSACK.replace("cbc()", "cbc(presolve := off)")).unwrap();
    let total = |t: &sqlengine::table::Table| -> f64 {
        t.rows.iter().map(|r| r[2].as_f64().unwrap() * r[3].as_f64().unwrap()).sum()
    };
    assert!((total(&t_on) - total(&t_off)).abs() < 1e-6);
}

#[test]
fn presolve_reduces_branch_and_bound_nodes_on_a_tightened_mip() {
    // max x (integer), 2x <= 7: snapping the propagated bound to x <= 3
    // makes the root relaxation integral, so no branching at all.
    let run = |using: &str| {
        let mut s = Session::new();
        s.execute_script("CREATE TABLE t (x int); INSERT INTO t VALUES (NULL)").unwrap();
        let r = s
            .execute(&format!(
                "SOLVESELECT q(x) AS (SELECT x FROM t) \
                 MAXIMIZE (SELECT x FROM q) \
                 SUBJECTTO (SELECT x >= 0, 2 * x <= 7 FROM q) \
                 USING {using}"
            ))
            .unwrap();
        let trace = r.trace.expect("solve should be traced");
        let st = trace.solvers.first().expect("solver stats").clone();
        let x = match &r.outcome {
            sqlengine::Outcome::Table(t) => t.rows[0][0].as_f64().unwrap(),
            other => panic!("expected rows, got {other:?}"),
        };
        (x, st)
    };
    let (x_on, st_on) = run("solverlp.cbc()");
    let (x_off, st_off) = run("solverlp.cbc(presolve := off)");
    assert_eq!(x_on, 3.0);
    assert_eq!(x_off, 3.0);
    assert!(
        st_on.nodes_explored < st_off.nodes_explored,
        "presolve should shrink the search: {} vs {}",
        st_on.nodes_explored,
        st_off.nodes_explored
    );
    assert!(st_on.presolve_bounds > 0, "tightened bound should be counted: {st_on:?}");
    assert_eq!(st_off.presolve_cols + st_off.presolve_rows + st_off.presolve_bounds, 0);
}

#[test]
fn presolve_handles_fully_fixed_models() {
    let mut s = lp_session();
    let t = s
        .query(
            "SOLVESELECT q(x, y) AS (SELECT x, y FROM v) \
             MAXIMIZE (SELECT sum(x + y) FROM q) \
             SUBJECTTO (SELECT x = 2, x + y = 5 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    assert_eq!(t.rows[0][0].as_f64().unwrap(), 2.0);
    assert_eq!(t.rows[0][1].as_f64().unwrap(), 3.0);
}

#[test]
fn presolve_infeasibility_reports_like_the_solver() {
    let mut s = lp_session();
    let err = s
        .query(
            "SOLVESELECT q(x) AS (SELECT x FROM v) \
             SUBJECTTO (SELECT 0 <= x <= 1, x >= 2 FROM q) \
             USING solverlp()",
        )
        .unwrap_err();
    assert!(err.to_string().contains("infeasible"), "got: {err}");
}

#[test]
fn presolve_stage_and_counters_surface_in_observability() {
    let mut s = lp_session();
    let r = s
        .execute(
            "SOLVESELECT q(x, y) AS (SELECT x, y FROM v) \
             MAXIMIZE (SELECT sum(x + y) FROM q) \
             SUBJECTTO (SELECT x = 3, 0 <= y <= 10, x + y <= 5 FROM q) \
             USING solverlp()",
        )
        .unwrap();
    let trace = r.trace.expect("trace");
    let rendered = trace.render().join("\n");
    assert!(rendered.contains("presolve"), "stage missing:\n{rendered}");
    assert!(rendered.contains("presolve(cols="), "counters missing:\n{rendered}");

    let stats = s.query("SELECT presolve_cols, presolve_bounds FROM sdb_solver_stats").unwrap();
    assert_eq!(stats.num_rows(), 1);
    assert!(stats.rows[0][0].as_i64().unwrap() >= 1, "{stats:?}");
}
