//! End-to-end observability tests: `EXPLAIN ANALYZE`, execution traces
//! on results, and the queryable metrics tables.

use obs::Stage;
use solvedbplus_core::Session;
use sqlengine::{Table, Value};

const SETUP: &str = "CREATE TABLE vars (x float8, y float8); \
                     INSERT INTO vars VALUES (NULL, NULL)";

const SOLVE: &str = "SOLVESELECT v(x, y) AS (SELECT * FROM vars) \
                     MINIMIZE (SELECT 2*x + 3*y FROM v) \
                     SUBJECTTO (SELECT x + y >= 10, x >= 0, y >= 0 FROM v) \
                     USING solverlp()";

fn text_column(t: &Table, col: &str) -> Vec<String> {
    t.column_values(col)
        .unwrap()
        .iter()
        .map(|v| match v {
            Value::Text(s) => s.to_string(),
            other => other.to_string(),
        })
        .collect()
}

fn stage_names(stages: &[Stage], out: &mut Vec<String>) {
    for s in stages {
        out.push(s.name.clone());
        stage_names(&s.children, out);
    }
}

#[test]
fn solve_results_carry_a_trace() {
    let mut s = Session::new();
    s.execute_script(SETUP).unwrap();
    let res = s.execute(SOLVE).unwrap();
    let trace = res.trace.expect("SOLVESELECT should be traced");
    assert_eq!(trace.label, "SOLVESELECT");
    let mut names = Vec::new();
    stage_names(&trace.stages, &mut names);
    for expected in ["parse", "plan", "instantiate", "check", "solve", "post-process"] {
        assert!(names.iter().any(|n| n == expected), "missing stage {expected} in {names:?}");
    }
    // Every stage took measurable time and the tree fits in the total.
    let root_sum: u64 = trace.stages.iter().map(|s| s.nanos).sum();
    assert!(trace.stages.iter().all(|s| s.nanos >= 1));
    assert!(root_sum <= trace.total_nanos, "{root_sum} > {}", trace.total_nanos);
    // The LP solver reported telemetry.
    assert_eq!(trace.solvers.len(), 1);
    let st = &trace.solvers[0];
    assert_eq!(st.solver, "solverlp");
    assert_eq!(st.method, "simplex");
    assert!(st.iterations > 0);
    assert_eq!(st.objective, Some(20.0));
}

#[test]
fn explain_analyze_renders_the_stage_tree() {
    let mut s = Session::new();
    s.execute_script(SETUP).unwrap();
    let t = s.query(&format!("EXPLAIN ANALYZE {SOLVE}")).unwrap();
    let plan = text_column(&t, "plan").join("\n");
    for expected in
        ["query: SOLVESELECT", "-> parse:", "-> solve:", "solver solverlp", "rows out: 1"]
    {
        assert!(plan.contains(expected), "missing {expected:?} in:\n{plan}");
    }
    // Timings render in milliseconds with nonzero precision.
    assert!(plan.contains(" ms"), "no timings in:\n{plan}");
    // EXPLAIN ANALYZE executed the statement, so the metrics saw a solver run.
    let runs = s.query("SELECT runs FROM sdb_solver_stats").unwrap();
    assert_eq!(runs.rows.len(), 1);
    assert_eq!(runs.rows[0][0], Value::Int(1));
}

#[test]
fn mip_solves_report_branch_and_bound_telemetry() {
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE items (id int, value float8, weight float8, pick int);
         INSERT INTO items VALUES
           (1, 60, 10, NULL), (2, 100, 20, NULL), (3, 120, 30, NULL)",
    )
    .unwrap();
    let res = s
        .execute(
            "SOLVESELECT it(pick) AS (SELECT * FROM items) \
             MAXIMIZE (SELECT sum(value * pick) FROM it) \
             SUBJECTTO (SELECT sum(weight * pick) <= 50 FROM it), \
                       (SELECT 0 <= pick <= 1 FROM it) \
             USING solverlp.cbc()",
        )
        .unwrap();
    let trace = res.trace.unwrap();
    let st = &trace.solvers[0];
    assert_eq!(st.method, "bb");
    assert!(st.nodes_explored > 0);
    assert!(st.iterations >= st.nodes_explored, "{} < {}", st.iterations, st.nodes_explored);
    assert!(!st.incumbents.is_empty());
    assert_eq!(st.objective, Some(220.0));
}

#[test]
fn stat_statements_aggregates_by_shape() {
    let mut s = Session::new();
    s.execute("CREATE TABLE t (x int)").unwrap();
    s.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    // Two executions of the same statement shape, different literals.
    s.query("SELECT x FROM t WHERE x > 1").unwrap();
    s.query("SELECT x FROM t WHERE x > 2").unwrap();
    let stats = s.query("SELECT query, calls, rows FROM sdb_stat_statements").unwrap();
    let shapes = text_column(&stats, "query");
    let target: Vec<usize> = shapes
        .iter()
        .enumerate()
        .filter(|(_, q)| q.contains("where ( x > ? )"))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(target.len(), 1, "expected one aggregated row, got shapes {shapes:?}");
    let i = target[0];
    assert_eq!(stats.rows[i][1], Value::Int(2), "calls");
    // 2 rows matched the first filter, 1 the second.
    assert_eq!(stats.rows[i][2], Value::Int(3), "rows");
    // The metrics SELECTs themselves get recorded too, on the next read.
    let again = s.query("SELECT calls FROM sdb_stat_statements").unwrap();
    assert!(again.rows.len() >= stats.rows.len());
}

#[test]
fn failed_statements_count_as_errors() {
    let mut s = Session::new();
    s.execute("CREATE TABLE t (x int)").unwrap();
    assert!(s.execute("SELECT nope FROM t").is_err());
    let stats = s.query("SELECT query, errors FROM sdb_stat_statements").unwrap();
    let shapes = text_column(&stats, "query");
    let i = shapes.iter().position(|q| q.contains("nope")).expect("errored shape recorded");
    assert_eq!(stats.rows[i][1], Value::Int(1));
}

#[test]
fn solver_stats_aggregate_across_sessions_sharing_solvers() {
    use solvedbplus_core::SharedSolvers;
    let shared = SharedSolvers::new();
    let mut a = Session::with_solvers(&shared);
    let mut b = Session::with_solvers(&shared);
    for s in [&mut a, &mut b] {
        s.execute_script(SETUP).unwrap();
        s.query(SOLVE).unwrap();
    }
    // Both runs landed in the shared registry, visible from either session.
    let t = a.query("SELECT solver, method, runs, iterations FROM sdb_solver_stats").unwrap();
    assert_eq!(t.rows.len(), 1);
    assert_eq!(t.rows[0][0], Value::text("solverlp"));
    assert_eq!(t.rows[0][1], Value::text("simplex"));
    assert_eq!(t.rows[0][2], Value::Int(2));
}

#[test]
fn real_tables_shadow_virtual_ones() {
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE sdb_stat_statements (note text); \
         INSERT INTO sdb_stat_statements VALUES ('mine')",
    )
    .unwrap();
    let t = s.query("SELECT note FROM sdb_stat_statements").unwrap();
    assert_eq!(t.rows, vec![vec![Value::text("mine")]]);
}

#[test]
fn sdb_sessions_is_empty_without_a_server() {
    let mut s = Session::new();
    let t = s.query("SELECT * FROM sdb_sessions").unwrap();
    assert_eq!(t.num_rows(), 0);
    assert_eq!(t.schema.len(), 6);
}

// ---------------------------------------------------------------------------
// Watchdog: solver timeouts, CANCEL, and the histogram tables
// ---------------------------------------------------------------------------

/// A knapsack hard enough that branch-and-bound reaches its progress
/// points many times before closing the gap.
fn hard_knapsack_setup(s: &mut Session, n: usize) {
    s.execute("CREATE TABLE items (id int, value float8, weight float8, pick int)").unwrap();
    let rows: Vec<String> = (0..n)
        .map(|i| format!("({i}, {}, {}, NULL)", (i * 7) % 13 + 1, (i * 5) % 11 + 1))
        .collect();
    s.execute(&format!("INSERT INTO items VALUES {}", rows.join(", "))).unwrap();
}

const HARD_SOLVE: &str = "SOLVESELECT it(pick) AS (SELECT * FROM items) \
     MAXIMIZE (SELECT sum(value * pick) FROM it) \
     SUBJECTTO (SELECT sum(weight * pick) <= 80 FROM it), \
               (SELECT 0 <= pick <= 1 FROM it) \
     USING solverlp.cbc()";

#[test]
fn solver_timeout_returns_solve_timeout_and_session_stays_usable() {
    let mut s = Session::new();
    hard_knapsack_setup(&mut s, 44);
    s.execute("SET solver_timeout_ms = 1").unwrap();
    let err = s.execute(HARD_SOLVE).unwrap_err();
    assert!(matches!(err, sqlengine::Error::SolveTimeout(_)), "got {err}");
    assert!(err.to_string().contains("budget"), "{err}");
    // The budget can be cleared and the session keeps working.
    s.execute("SET solver_timeout_ms = 0").unwrap();
    assert_eq!(s.query_scalar("SELECT 1 + 1").unwrap(), Value::Int(2));
}

#[test]
fn pending_cancel_aborts_the_next_solve() {
    use obs::SessionRegistry;
    use std::sync::Arc;
    let registry = Arc::new(SessionRegistry::new());
    let counters = registry.open(7);
    let mut s = Session::new();
    s.attach_session_registry(registry.clone());
    s.attach_own_counters(counters.clone());
    hard_knapsack_setup(&mut s, 44);
    counters.request_kill();
    let err = s.execute(HARD_SOLVE).unwrap_err();
    assert!(matches!(err, sqlengine::Error::SolveTimeout(_)), "got {err}");
    assert!(err.to_string().contains("cancelled"), "{err}");
    // The abort consumed the kill flag: the session solves again.
    assert!(!counters.kill_requested());
    let t = s.query("SELECT session_id, kill FROM sdb_sessions").unwrap();
    assert_eq!(t.rows, vec![vec![Value::Int(7), Value::Bool(false)]]);
}

#[test]
fn cancel_statement_sets_the_kill_flag() {
    use obs::SessionRegistry;
    use std::sync::Arc;
    let registry = Arc::new(SessionRegistry::new());
    let victim = registry.open(3);
    let mut admin = Session::new();
    admin.attach_session_registry(registry.clone());
    admin.execute("CANCEL 3").unwrap();
    assert!(victim.kill_requested());
    // Unknown sessions error cleanly.
    let err = admin.execute("CANCEL 99").unwrap_err();
    assert!(err.to_string().contains("no live session"), "{err}");
}

#[test]
fn sdb_metrics_exposes_stage_histograms_after_a_solve() {
    let mut s = Session::new();
    s.execute_script(SETUP).unwrap();
    s.query(SOLVE).unwrap();
    let t = s.query("SELECT name, count FROM sdb_metrics").unwrap();
    let names = text_column(&t, "name");
    for expected in ["statement", "solve", "solve/compile"] {
        assert!(names.iter().any(|n| n == expected), "missing {expected} in {names:?}");
    }
}
