//! # ssmodel — discrete linear time-invariant state-space models
//!
//! The grey-box system models of SolveDB+'s P3 phase (paper §4.4):
//!
//! ```text
//! x[n+1] = A x[n] + B u[n]
//! y[n]   = C x[n] + D u[n]
//! ```
//!
//! The paper's running example is the scalar HVAC thermal model
//! `x[n+1] = a1·x[n] + b1·outTemp[n] + b2·hLoad[n]` with `y = x`
//! (the building's inside temperature). This crate provides general
//! (small, dense) LTI simulation plus least-squares parameter
//! estimation, replacing Matlab's `ssest` / System Identification
//! Toolbox in the evaluation.

#![forbid(unsafe_code)]

use globalopt::{sa_from, SaOptions, SearchSpace};

/// A discrete LTI model with dense matrices (row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct Lti {
    /// State dimension.
    pub nx: usize,
    /// Input dimension.
    pub nu: usize,
    /// Output dimension.
    pub ny: usize,
    /// nx×nx state matrix.
    pub a: Vec<f64>,
    /// nx×nu input matrix.
    pub b: Vec<f64>,
    /// ny×nx output matrix.
    pub c: Vec<f64>,
    /// ny×nu feed-through matrix.
    pub d: Vec<f64>,
}

impl Lti {
    pub fn new(nx: usize, nu: usize, ny: usize) -> Lti {
        Lti {
            nx,
            nu,
            ny,
            a: vec![0.0; nx * nx],
            b: vec![0.0; nx * nu],
            c: vec![0.0; ny * nx],
            d: vec![0.0; ny * nu],
        }
    }

    /// The paper's scalar HVAC model: state = inside temperature,
    /// inputs = (outside temperature, HVAC load), output = state.
    pub fn hvac(a1: f64, b1: f64, b2: f64) -> Lti {
        let mut m = Lti::new(1, 2, 1);
        m.a = vec![a1];
        m.b = vec![b1, b2];
        m.c = vec![1.0];
        m.d = vec![0.0, 0.0];
        m
    }

    /// Simulate from initial state `x0` over inputs `u` (one row per
    /// step, each of length `nu`). Returns (states, outputs); `states[k]`
    /// is x[k] (before applying input k), matching the paper's
    /// recursive-CTE listing, with one trailing post-horizon state.
    pub fn simulate(&self, x0: &[f64], u: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        assert_eq!(x0.len(), self.nx, "x0 dimension mismatch");
        let mut x = x0.to_vec();
        let mut states = Vec::with_capacity(u.len() + 1);
        let mut outputs = Vec::with_capacity(u.len() + 1);
        for uk in u {
            assert_eq!(uk.len(), self.nu, "input dimension mismatch");
            states.push(x.clone());
            outputs.push(self.output(&x, uk));
            x = self.step(&x, uk);
        }
        states.push(x.clone());
        let zero_u = vec![0.0; self.nu];
        outputs.push(self.output(&x, &zero_u));
        (states, outputs)
    }

    /// One transition: x' = A x + B u.
    pub fn step(&self, x: &[f64], u: &[f64]) -> Vec<f64> {
        let mut next = vec![0.0; self.nx];
        for i in 0..self.nx {
            let mut s = 0.0;
            for j in 0..self.nx {
                s += self.a[i * self.nx + j] * x[j];
            }
            for j in 0..self.nu {
                s += self.b[i * self.nu + j] * u[j];
            }
            next[i] = s;
        }
        next
    }

    /// y = C x + D u.
    pub fn output(&self, x: &[f64], u: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.ny];
        for i in 0..self.ny {
            let mut s = 0.0;
            for j in 0..self.nx {
                s += self.c[i * self.nx + j] * x[j];
            }
            for j in 0..self.nu {
                s += self.d[i * self.nu + j] * u[j];
            }
            y[i] = s;
        }
        y
    }

    /// Spectral-radius-style stability check via power iteration on A.
    pub fn is_stable(&self) -> bool {
        if self.nx == 0 {
            return true;
        }
        let mut v = vec![1.0; self.nx];
        let mut lambda = 0.0;
        for _ in 0..200 {
            let mut w = vec![0.0; self.nx];
            for i in 0..self.nx {
                for j in 0..self.nx {
                    w[i] += self.a[i * self.nx + j] * v[j];
                }
            }
            lambda = w.iter().map(|x| x.abs()).fold(0.0f64, f64::max);
            if lambda < 1e-12 {
                return true;
            }
            for x in &mut w {
                *x /= lambda;
            }
            v = w;
        }
        lambda < 1.0 + 1e-9
    }
}

/// Sum of squared errors between a simulated state trajectory and
/// measurements (the paper's `sum((x - inTemp)^2)` fitness).
pub fn simulation_sse(model: &Lti, x0: &[f64], u: &[Vec<f64>], measured: &[f64]) -> f64 {
    let (states, _) = model.simulate(x0, u);
    states.iter().take(measured.len()).zip(measured).map(|(x, m)| (x[0] - m) * (x[0] - m)).sum()
}

/// Result of HVAC parameter estimation.
#[derive(Debug, Clone)]
pub struct HvacFit {
    pub a1: f64,
    pub b1: f64,
    pub b2: f64,
    pub sse: f64,
    pub evaluations: usize,
}

/// Estimate the paper's HVAC model parameters from measured inside
/// temperatures by simulated annealing — the SolveDB+ counterpart of
/// Matlab's `ssest` step (P3, §5.3). `u` rows are `(outTemp, hLoad)`
/// pairs; `measured[0]` doubles as the initial state.
pub fn fit_hvac(
    u: &[Vec<f64>],
    measured: &[f64],
    bounds: ((f64, f64), (f64, f64), (f64, f64)),
    iterations: usize,
    seed: u64,
) -> HvacFit {
    let ((a_lo, a_hi), (b1_lo, b1_hi), (b2_lo, b2_hi)) = bounds;
    let space = SearchSpace::continuous(vec![a_lo, b1_lo, b2_lo], vec![a_hi, b1_hi, b2_hi]);
    let x0 = vec![measured[0]];
    let f = |p: &[f64]| {
        let m = Lti::hvac(p[0], p[1], p[2]);
        simulation_sse(&m, &x0, u, measured)
    };
    let start = vec![(a_lo + a_hi) / 2.0, (b1_lo + b1_hi) / 2.0, (b2_lo + b2_hi) / 2.0];
    let r =
        sa_from(f, &space, SaOptions { iterations, seed, step: 0.05, ..Default::default() }, start);
    HvacFit { a1: r.x[0], b1: r.x[1], b2: r.x[2], sse: r.value, evaluations: r.evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_simulation_matches_hand_computation() {
        // x' = 0.5x + 1*u with x0 = 10, u = 1,1,1 → 10, 6, 4, 3.
        let mut m = Lti::new(1, 1, 1);
        m.a = vec![0.5];
        m.b = vec![1.0];
        m.c = vec![1.0];
        let (states, outputs) = m.simulate(&[10.0], &[vec![1.0], vec![1.0], vec![1.0]]);
        let xs: Vec<f64> = states.iter().map(|s| s[0]).collect();
        assert_eq!(xs, vec![10.0, 6.0, 4.0, 3.0]);
        assert_eq!(outputs[0], vec![10.0]);
    }

    #[test]
    fn hvac_model_shape() {
        let m = Lti::hvac(0.9, 0.05, 0.0002);
        let next = m.step(&[20.0], &[10.0, 1000.0]);
        assert!((next[0] - (0.9 * 20.0 + 0.05 * 10.0 + 0.0002 * 1000.0)).abs() < 1e-12);
    }

    #[test]
    fn two_state_system() {
        // x' = [[0,1],[-0.5,0]] x, no input.
        let mut m = Lti::new(2, 1, 2);
        m.a = vec![0.0, 1.0, -0.5, 0.0];
        m.b = vec![0.0, 0.0];
        m.c = vec![1.0, 0.0, 0.0, 1.0];
        let (states, _) = m.simulate(&[1.0, 0.0], &[vec![0.0], vec![0.0]]);
        assert_eq!(states[1], vec![0.0, -0.5]);
        assert_eq!(states[2], vec![-0.5, 0.0]);
    }

    #[test]
    fn stability_check() {
        assert!(Lti::hvac(0.9, 0.1, 0.1).is_stable());
        assert!(!Lti::hvac(1.1, 0.1, 0.1).is_stable());
    }

    #[test]
    fn sse_is_zero_for_perfect_model() {
        let truth = Lti::hvac(0.95, 0.03, 0.0001);
        let u: Vec<Vec<f64>> = (0..50).map(|i| vec![10.0 + (i % 5) as f64, 500.0]).collect();
        let (states, _) = truth.simulate(&[21.0], &u);
        let measured: Vec<f64> = states.iter().map(|s| s[0]).collect();
        assert!(simulation_sse(&truth, &[21.0], &u, &measured) < 1e-18);
    }

    #[test]
    fn fit_hvac_recovers_parameters() {
        let truth = Lti::hvac(0.90, 0.05, 0.0004);
        let u: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                vec![
                    10.0 + 8.0 * ((i as f64) * 0.26).sin(),
                    800.0 + 600.0 * ((i as f64) * 0.13).cos(),
                ]
            })
            .collect();
        let (states, _) = truth.simulate(&[21.0], &u);
        let measured: Vec<f64> = states.iter().map(|s| s[0]).collect();
        let fit = fit_hvac(&u, &measured, ((0.0, 1.0), (0.0, 1.0), (0.0, 0.01)), 30_000, 42);
        assert!(fit.sse < 1.0, "sse {}", fit.sse);
        assert!((fit.a1 - 0.90).abs() < 0.05, "a1 {}", fit.a1);
    }

    #[test]
    #[should_panic(expected = "x0 dimension mismatch")]
    fn dimension_mismatch_panics() {
        Lti::hvac(0.9, 0.1, 0.1).simulate(&[1.0, 2.0], &[]);
    }
}
