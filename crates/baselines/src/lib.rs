//! # baselines — structural simulations of the paper's competitor stacks
//!
//! The evaluation (paper §5) compares SolveDB+ against Matlab (native
//! toolboxes and YALMIP/MPT), R + CPLEX, and MADlib + PL/Python. Those
//! stacks cannot run here; instead this crate reproduces the *structural
//! causes* of their measured behaviour, which the paper itself names:
//!
//! * out-of-DBMS stacks ship data through files and per-row inserts
//!   ([`csvio`]);
//! * YALMIP/MPT-style modelling builds constraint matrices from
//!   per-coefficient symbolic objects ([`modelgen`] — the "model
//!   generation time" of Fig. 5);
//! * Matlab's `fminsearch` is a derivative-free local simplex search
//!   ([`neldermead`]);
//! * MADlib-style in-DBMS pipelines materialize intermediate tables per
//!   step and re-interpret (re-parse) their fitness queries per
//!   iteration ([`uc1::madlib_python`]).
//!
//! The absolute numbers differ from the paper's (different hardware and
//! solvers); the *shape* — who wins, and why — is what the benchmark
//! harness reproduces.

#![forbid(unsafe_code)]

pub mod csvio;
pub mod interp;
pub mod modelgen;
pub mod neldermead;
pub mod uc1;
pub mod uc2;

use std::time::Duration;

/// Per-phase wall-clock times of a PA workflow run (P1–P4 of Fig. 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    /// Data management / IO.
    pub p1: Duration,
    /// Prediction.
    pub p2: Duration,
    /// System-model fitting.
    pub p3: Duration,
    /// Optimization.
    pub p4: Duration,
}

impl PhaseTimes {
    pub fn total(&self) -> Duration {
        self.p1 + self.p2 + self.p3 + self.p4
    }
}

/// Sub-phase breakdown of an optimization step (Fig. 5's stacking).
#[derive(Debug, Clone, Copy, Default)]
pub struct OptBreakdown {
    pub data_io: Duration,
    pub model_generation: Duration,
    pub solving: Duration,
}

impl OptBreakdown {
    pub fn total(&self) -> Duration {
        self.data_io + self.model_generation + self.solving
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_times_total() {
        let t = PhaseTimes {
            p1: Duration::from_millis(1),
            p2: Duration::from_millis(2),
            p3: Duration::from_millis(3),
            p4: Duration::from_millis(4),
        };
        assert_eq!(t.total(), Duration::from_millis(10));
    }
}
