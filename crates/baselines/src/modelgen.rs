//! YALMIP/MPT-style symbolic model construction.
//!
//! High-level modelling toolboxes build optimization models out of
//! per-coefficient symbolic objects: every `a*x + b*y <= c` allocates an
//! expression tree, variables are looked up by name, and constraint
//! aggregation walks those trees one node at a time. That translation —
//! *model generation time* — dominates their optimization step in the
//! paper's Fig. 5 (up to 3 orders of magnitude over SolveDB+'s direct
//! compilation). This module reproduces that construction style and
//! hands the result to the same `lp` solver, so the measured difference
//! is purely the modelling layer.

use lp::{Problem, Rel, Solution};
use std::collections::{BTreeMap, HashMap};

/// A symbolic scalar expression (boxed tree, like toolbox objects).
pub enum SymExpr {
    Const(f64),
    Var(String),
    Add(Box<SymExpr>, Box<SymExpr>),
    Sub(Box<SymExpr>, Box<SymExpr>),
    Mul(f64, Box<SymExpr>),
}

impl SymExpr {
    pub fn var(name: impl Into<String>) -> SymExpr {
        SymExpr::Var(name.into())
    }

    pub fn constant(v: f64) -> SymExpr {
        SymExpr::Const(v)
    }

    pub fn add(self, other: SymExpr) -> SymExpr {
        SymExpr::Add(Box::new(self), Box::new(other))
    }

    pub fn sub(self, other: SymExpr) -> SymExpr {
        SymExpr::Sub(Box::new(self), Box::new(other))
    }

    pub fn scale(self, k: f64) -> SymExpr {
        SymExpr::Mul(k, Box::new(self))
    }

    /// Sum of many expressions (builds a left-deep tree, as naive
    /// `for`-loop aggregation does).
    pub fn sum(items: Vec<SymExpr>) -> SymExpr {
        let mut it = items.into_iter();
        let first = it.next().unwrap_or(SymExpr::Const(0.0));
        it.fold(first, |acc, x| acc.add(x))
    }

    /// Walk the tree collecting coefficients by *variable name* — the
    /// string-keyed lookup is part of the simulated overhead.
    fn collect(&self, scale: f64, coeffs: &mut BTreeMap<String, f64>, constant: &mut f64) {
        match self {
            SymExpr::Const(c) => *constant += scale * c,
            SymExpr::Var(n) => {
                *coeffs.entry(n.clone()).or_insert(0.0) += scale;
            }
            SymExpr::Add(a, b) => {
                a.collect(scale, coeffs, constant);
                b.collect(scale, coeffs, constant);
            }
            SymExpr::Sub(a, b) => {
                a.collect(scale, coeffs, constant);
                b.collect(-scale, coeffs, constant);
            }
            SymExpr::Mul(k, e) => e.collect(scale * k, coeffs, constant),
        }
    }
}

/// A symbolic constraint.
pub struct SymConstraint {
    pub lhs: SymExpr,
    pub rel: Rel,
    pub rhs: SymExpr,
}

/// The toolbox-style model builder.
#[derive(Default)]
pub struct SymbolicModel {
    constraints: Vec<SymConstraint>,
    objective: Option<(SymExpr, bool)>, // (expr, minimize)
    bounds: HashMap<String, (f64, f64)>,
    integers: Vec<String>,
}

impl SymbolicModel {
    pub fn new() -> SymbolicModel {
        SymbolicModel::default()
    }

    pub fn minimize(&mut self, e: SymExpr) {
        self.objective = Some((e, true));
    }

    pub fn maximize(&mut self, e: SymExpr) {
        self.objective = Some((e, false));
    }

    pub fn constrain(&mut self, lhs: SymExpr, rel: Rel, rhs: SymExpr) {
        self.constraints.push(SymConstraint { lhs, rel, rhs });
    }

    pub fn bound(&mut self, var: impl Into<String>, lo: f64, hi: f64) {
        self.bounds.insert(var.into(), (lo, hi));
    }

    pub fn integer(&mut self, var: impl Into<String>) {
        self.integers.push(var.into());
    }

    /// Translate to the low-level solver representation — the step whose
    /// cost Fig. 5 reports as "model generation".
    pub fn generate(&self) -> (Problem, Vec<String>) {
        // Discover variables by walking every expression (toolboxes do a
        // pass like this to assign solver indexes).
        let mut names: BTreeMap<String, usize> = BTreeMap::new();
        let mut scratch_c = 0.0;
        let discover = |e: &SymExpr, names: &mut BTreeMap<String, usize>| {
            let mut coeffs = BTreeMap::new();
            let mut c = 0.0;
            e.collect(1.0, &mut coeffs, &mut c);
            for name in coeffs.keys() {
                let next = names.len();
                names.entry(name.clone()).or_insert(next);
            }
        };
        if let Some((obj, _)) = &self.objective {
            discover(obj, &mut names);
        }
        for sc in &self.constraints {
            discover(&sc.lhs, &mut names);
            discover(&sc.rhs, &mut names);
        }
        let order: Vec<String> = names.keys().cloned().collect();
        let index: HashMap<&str, usize> =
            order.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();

        let minimize = self.objective.as_ref().map(|(_, m)| *m).unwrap_or(true);
        let mut p =
            if minimize { Problem::minimize(order.len()) } else { Problem::maximize(order.len()) };
        if let Some((obj, _)) = &self.objective {
            let mut coeffs = BTreeMap::new();
            let mut c = 0.0;
            obj.collect(1.0, &mut coeffs, &mut c);
            p.objective_constant = c;
            p.set_objective(coeffs.iter().map(|(n, &v)| (index[n.as_str()], v)).collect());
            scratch_c += c;
        }
        let _ = scratch_c;
        for sc in &self.constraints {
            let mut lc = BTreeMap::new();
            let mut lk = 0.0;
            sc.lhs.collect(1.0, &mut lc, &mut lk);
            let mut rc = BTreeMap::new();
            let mut rk = 0.0;
            sc.rhs.collect(1.0, &mut rc, &mut rk);
            // lhs - rhs rel 0.
            for (n, v) in rc {
                *lc.entry(n).or_insert(0.0) -= v;
            }
            let rhs = rk - lk;
            p.add_constraint(
                lc.iter().map(|(n, &v)| (index[n.as_str()], v)).collect(),
                sc.rel,
                rhs,
            );
        }
        for (n, &(lo, hi)) in &self.bounds {
            if let Some(&i) = index.get(n.as_str()) {
                p.set_bounds(i, lo, hi);
            }
        }
        for n in &self.integers {
            if let Some(&i) = index.get(n.as_str()) {
                p.integer[i] = true;
            }
        }
        (p, order)
    }

    /// Generate and solve; returns the solution plus the variable order.
    pub fn solve(&self) -> (Solution, Vec<String>) {
        let (p, order) = self.generate();
        (lp::solve(&p), order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_solves_like_direct_lp() {
        // max 3x + 5y, x <= 4, 2y <= 12, 3x + 2y <= 18.
        let mut m = SymbolicModel::new();
        m.maximize(SymExpr::var("x").scale(3.0).add(SymExpr::var("y").scale(5.0)));
        m.constrain(SymExpr::var("x"), Rel::Le, SymExpr::constant(4.0));
        m.constrain(SymExpr::var("y").scale(2.0), Rel::Le, SymExpr::constant(12.0));
        m.constrain(
            SymExpr::var("x").scale(3.0).add(SymExpr::var("y").scale(2.0)),
            Rel::Le,
            SymExpr::constant(18.0),
        );
        m.bound("x", 0.0, f64::INFINITY);
        m.bound("y", 0.0, f64::INFINITY);
        let (sol, order) = m.solve();
        assert!(sol.is_optimal());
        assert!((sol.objective - 36.0).abs() < 1e-6);
        assert_eq!(order, vec!["x", "y"]);
    }

    #[test]
    fn sum_aggregation_and_subtraction() {
        // min sum(e_i) with e_i >= i  →  objective = 0+1+2 = 3... e_i >= i.
        let mut m = SymbolicModel::new();
        let es: Vec<SymExpr> = (0..3).map(|i| SymExpr::var(format!("e{i}"))).collect();
        m.minimize(SymExpr::sum(es));
        for i in 0..3 {
            m.constrain(SymExpr::var(format!("e{i}")), Rel::Ge, SymExpr::constant(i as f64));
        }
        let (sol, _) = m.solve();
        assert!((sol.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn integer_variables() {
        let mut m = SymbolicModel::new();
        m.maximize(SymExpr::var("x"));
        m.constrain(SymExpr::var("x"), Rel::Le, SymExpr::constant(2.5));
        m.bound("x", 0.0, 10.0);
        m.integer("x");
        let (sol, _) = m.solve();
        assert_eq!(sol.x[0], 2.0);
    }
}
