//! Nelder–Mead derivative-free simplex search — the stand-in for
//! Matlab's `fminsearch`, which the paper's Matlab/YALMIP baseline uses
//! for the P3 state-space fitting (§5.3, Fig. 4(b)).

/// Options for the Nelder–Mead search.
#[derive(Debug, Clone, Copy)]
pub struct NmOptions {
    pub max_iterations: usize,
    pub tolerance: f64,
    /// Initial simplex edge length relative to the start point scale.
    pub initial_step: f64,
}

impl Default for NmOptions {
    fn default() -> Self {
        NmOptions { max_iterations: 2000, tolerance: 1e-10, initial_step: 0.1 }
    }
}

/// Result of the search.
#[derive(Debug, Clone)]
pub struct NmResult {
    pub x: Vec<f64>,
    pub value: f64,
    pub evaluations: usize,
    pub iterations: usize,
}

/// Minimize `f` from `x0` (unconstrained, like `fminsearch`).
pub fn nelder_mead(mut f: impl FnMut(&[f64]) -> f64, x0: &[f64], opts: NmOptions) -> NmResult {
    let n = x0.len();
    let mut evaluations = 0usize;
    let mut eval = |x: &[f64], e: &mut usize| {
        *e += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let v0 = eval(x0, &mut evaluations);
    simplex.push((x0.to_vec(), v0));
    for i in 0..n {
        let mut x = x0.to_vec();
        let step =
            if x[i].abs() > 1e-12 { opts.initial_step * x[i].abs() } else { opts.initial_step };
        x[i] += step;
        let v = eval(&x, &mut evaluations);
        simplex.push((x, v));
    }

    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut iterations = 0usize;
    while iterations < opts.max_iterations {
        iterations += 1;
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let best = simplex[0].1;
        let worst = simplex[n].1;
        if (worst - best).abs() <= opts.tolerance * (1.0 + best.abs()) {
            break;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in simplex.iter().take(n) {
            for i in 0..n {
                centroid[i] += x[i] / n as f64;
            }
        }
        let worst_x = simplex[n].0.clone();
        let reflect: Vec<f64> =
            (0..n).map(|i| centroid[i] + alpha * (centroid[i] - worst_x[i])).collect();
        let fr = eval(&reflect, &mut evaluations);
        if fr < simplex[0].1 {
            // Expand.
            let expand: Vec<f64> =
                (0..n).map(|i| centroid[i] + gamma * (reflect[i] - centroid[i])).collect();
            let fe = eval(&expand, &mut evaluations);
            simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflect, fr);
        } else {
            // Contract.
            let contract: Vec<f64> =
                (0..n).map(|i| centroid[i] + rho * (worst_x[i] - centroid[i])).collect();
            let fc = eval(&contract, &mut evaluations);
            if fc < simplex[n].1 {
                simplex[n] = (contract, fc);
            } else {
                // Shrink toward the best.
                let best_x = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let x: Vec<f64> =
                        (0..n).map(|i| best_x[i] + sigma * (entry.0[i] - best_x[i])).collect();
                    let v = eval(&x, &mut evaluations);
                    *entry = (x, v);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    NmResult { x: simplex[0].0.clone(), value: simplex[0].1, evaluations, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let r = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            NmOptions::default(),
        );
        assert!((r.x[0] - 3.0).abs() < 1e-4, "{:?}", r.x);
        assert!((r.x[1] + 1.0).abs() < 1e-4);
        assert!(r.value < 1e-8);
    }

    #[test]
    fn minimizes_rosenbrock_locally() {
        let r = nelder_mead(
            |x| 100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2),
            &[-1.2, 1.0],
            NmOptions { max_iterations: 5000, ..Default::default() },
        );
        assert!(r.value < 1e-6, "value {}", r.value);
    }

    #[test]
    fn respects_iteration_budget() {
        let r = nelder_mead(
            |x| x.iter().map(|v| v * v).sum(),
            &[5.0, 5.0, 5.0],
            NmOptions { max_iterations: 10, ..Default::default() },
        );
        assert!(r.iterations <= 10);
    }

    #[test]
    fn handles_nan_objective() {
        let r =
            nelder_mead(|x| if x[0] < 0.0 { f64::NAN } else { x[0] }, &[1.0], NmOptions::default());
        assert!(r.value.is_finite());
    }
}
