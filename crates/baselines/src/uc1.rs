//! UC1 (energy planning) baseline pipelines — the competitor stacks of
//! paper §5.3, each solving the same task: forecast PV supply (P2), fit
//! the HVAC thermal model (P3), and schedule HVAC load to minimize
//! electricity cost (P4), with data living in a database (P1 = I/O).

use crate::csvio::{export_csv, import_csv_numeric, insert_rows_individually, TempDir};
use crate::modelgen::{SymExpr, SymbolicModel};
use crate::neldermead::{nelder_mead, NmOptions};
use crate::{OptBreakdown, PhaseTimes};
use datagen::EnergyRow;
use forecast::{Forecaster, LinearRegression};
use globalopt::{differential_evolution, DeOptions, SearchSpace};
use lp::Rel;
use sqlengine::types::timeval;
use sqlengine::{execute_script, execute_sql, Database, Value};
use ssmodel::fit_hvac;
use std::time::{Duration, Instant};

/// The UC1 task shared by all stacks.
#[derive(Debug, Clone)]
pub struct Uc1Task {
    /// Historical rows (complete measurements).
    pub history: Vec<EnergyRow>,
    /// Forecasted outdoor temperature over the planning horizon.
    pub horizon_outtemp: Vec<f64>,
    /// Electricity price per unit load.
    pub price: f64,
    /// Comfort band.
    pub comfort: (f64, f64),
    /// HVAC power limits.
    pub power: (f64, f64),
    /// P3 fitness-evaluation budget.
    pub p3_evaluations: usize,
}

impl Uc1Task {
    pub fn new(history: Vec<EnergyRow>, horizon_outtemp: Vec<f64>) -> Uc1Task {
        Uc1Task {
            history,
            horizon_outtemp,
            price: 0.12,
            comfort: (20.0, 25.0),
            power: (0.0, 17_000.0),
            p3_evaluations: 300,
        }
    }
}

/// Solution of a UC1 run, with per-phase timings.
#[derive(Debug, Clone)]
pub struct Uc1Result {
    pub pv_forecast: Vec<f64>,
    pub hvac: (f64, f64, f64),
    pub hload: Vec<f64>,
    pub times: PhaseTimes,
    pub p4: OptBreakdown,
}

/// Feature extraction shared by the P2 implementations: outdoor
/// temperature and hour-of-day.
fn p2_features(rows: &[EnergyRow]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let y: Vec<f64> = rows.iter().map(|r| r.pv_supply).collect();
    let out: Vec<f64> = rows.iter().map(|r| r.out_temp).collect();
    let hour: Vec<f64> = rows.iter().map(|r| timeval::decompose(r.time).hour as f64).collect();
    (y, vec![out, hour])
}

fn horizon_features(task: &Uc1Task) -> Vec<Vec<f64>> {
    let start_hour =
        task.history.last().map(|r| timeval::decompose(r.time).hour as f64 + 1.0).unwrap_or(0.0);
    let hours: Vec<f64> =
        (0..task.horizon_outtemp.len()).map(|k| (start_hour + k as f64) % 24.0).collect();
    vec![task.horizon_outtemp.clone(), hours]
}

/// Direct (efficient) P4 LP construction — what SolveDB+'s symbolic
/// layer compiles to. Returns (hloads, breakdown-without-io).
pub fn p4_direct(
    task: &Uc1Task,
    hvac: (f64, f64, f64),
    pv: &[f64],
    x0: f64,
) -> (Vec<f64>, OptBreakdown) {
    let t_gen = Instant::now();
    let h = task.horizon_outtemp.len();
    let (a1, b1, b2) = hvac;
    // Variables: h_0..h_{H-1}, x_1..x_H.
    let mut p = lp::Problem::minimize(2 * h);
    for t in 0..h {
        p.set_bounds(t, task.power.0, task.power.1);
        // The state after the final input is unconstrained (beyond horizon)
        // except the comfort band for in-horizon states.
        let (lo, hi) = if t + 1 < h { task.comfort } else { (f64::NEG_INFINITY, f64::INFINITY) };
        p.set_bounds(h + t, lo, hi);
    }
    p.set_objective((0..h).map(|t| (t, task.price)).collect());
    p.objective_constant = -task.price * pv.iter().sum::<f64>();
    for t in 0..h {
        // x_{t+1} - a1 x_t - b2 h_t = b1 out_t  (x_0 constant).
        let mut coeffs = vec![(h + t, 1.0), (t, -b2)];
        let mut rhs = b1 * task.horizon_outtemp[t];
        if t == 0 {
            rhs += a1 * x0;
        } else {
            coeffs.push((h + t - 1, -a1));
        }
        p.add_constraint(coeffs, Rel::Eq, rhs);
    }
    let model_generation = t_gen.elapsed();
    let t_solve = Instant::now();
    let sol = lp::solve(&p);
    let solving = t_solve.elapsed();
    let hload = if sol.is_optimal() { sol.x[..h].to_vec() } else { vec![0.0; h] };
    (hload, OptBreakdown { data_io: Duration::ZERO, model_generation, solving })
}

/// P4 through the toolbox-style symbolic builder (YALMIP analogue).
pub fn p4_symbolic(
    task: &Uc1Task,
    hvac: (f64, f64, f64),
    pv: &[f64],
    x0: f64,
) -> (Vec<f64>, OptBreakdown) {
    let t_gen = Instant::now();
    let h = task.horizon_outtemp.len();
    let (a1, b1, b2) = hvac;
    let mut m = SymbolicModel::new();
    let cost_terms: Vec<SymExpr> = (0..h)
        .map(|t| SymExpr::var(format!("h{t}")).sub(SymExpr::constant(pv[t])).scale(task.price))
        .collect();
    m.minimize(SymExpr::sum(cost_terms));
    for t in 0..h {
        let prev_x = if t == 0 { SymExpr::constant(x0) } else { SymExpr::var(format!("x{t}")) };
        m.constrain(
            SymExpr::var(format!("x{}", t + 1)),
            Rel::Eq,
            prev_x
                .scale(a1)
                .add(SymExpr::constant(b1 * task.horizon_outtemp[t]))
                .add(SymExpr::var(format!("h{t}")).scale(b2)),
        );
        m.bound(format!("h{t}"), task.power.0, task.power.1);
        if t + 1 < h {
            m.bound(format!("x{}", t + 1), task.comfort.0, task.comfort.1);
        }
    }
    let (p, order) = m.generate();
    let model_generation = t_gen.elapsed();
    let t_solve = Instant::now();
    let sol = lp::solve(&p);
    let solving = t_solve.elapsed();
    let mut hload = vec![0.0; h];
    if sol.is_optimal() {
        for (i, name) in order.iter().enumerate() {
            if let Some(t) = name.strip_prefix('h').and_then(|s| s.parse::<usize>().ok()) {
                if t < h {
                    hload[t] = sol.x[i];
                }
            }
        }
    }
    (hload, OptBreakdown { data_io: Duration::ZERO, model_generation, solving })
}

/// MPT analogue: the problem is first translated into a *second*
/// symbolic model (MPT → YALMIP), which is then generated — the paper's
/// Fig. 5 attributes MPT's cost to exactly this double translation.
pub fn p4_symbolic_mpt(
    task: &Uc1Task,
    hvac: (f64, f64, f64),
    pv: &[f64],
    x0: f64,
) -> (Vec<f64>, OptBreakdown) {
    let t_gen = Instant::now();
    let h = task.horizon_outtemp.len();
    let (a1, b1, b2) = hvac;
    // First-layer model built constraint-element-by-element, then walked
    // to build the second-layer model.
    let mut inner = SymbolicModel::new();
    for t in 0..h {
        let prev_x = if t == 0 { SymExpr::constant(x0) } else { SymExpr::var(format!("x{t}")) };
        // MPT builds A·x + B·u elementwise with one object per term.
        let rhs = SymExpr::sum(vec![
            prev_x.scale(a1),
            SymExpr::constant(b1 * task.horizon_outtemp[t]),
            SymExpr::var(format!("h{t}")).scale(b2),
        ]);
        inner.constrain(SymExpr::var(format!("x{}", t + 1)), Rel::Eq, rhs);
        inner.bound(format!("h{t}"), task.power.0, task.power.1);
        if t + 1 < h {
            inner.bound(format!("x{}", t + 1), task.comfort.0, task.comfort.1);
        }
    }
    let cost: Vec<SymExpr> = (0..h)
        .map(|t| SymExpr::var(format!("h{t}")).sub(SymExpr::constant(pv[t])).scale(task.price))
        .collect();
    inner.minimize(SymExpr::sum(cost));
    // Translate: generate the inner model, then *rebuild* it as a fresh
    // symbolic model from the generated matrix (the MPT→YALMIP handoff).
    let (p1, order1) = inner.generate();
    let mut outer = SymbolicModel::new();
    let obj: Vec<SymExpr> =
        p1.objective.iter().map(|&(j, c)| SymExpr::var(order1[j].clone()).scale(c)).collect();
    outer.minimize(SymExpr::sum(obj).add(SymExpr::constant(p1.objective_constant)));
    for c in &p1.constraints {
        let lhs = SymExpr::sum(
            c.coeffs.iter().map(|&(j, v)| SymExpr::var(order1[j].clone()).scale(v)).collect(),
        );
        outer.constrain(lhs, c.rel, SymExpr::constant(c.rhs));
    }
    for (j, name) in order1.iter().enumerate() {
        outer.bound(name.clone(), p1.lower[j], p1.upper[j]);
    }
    let (p2, order2) = outer.generate();
    let model_generation = t_gen.elapsed();
    let t_solve = Instant::now();
    let sol = lp::solve(&p2);
    let solving = t_solve.elapsed();
    let mut hload = vec![0.0; h];
    if sol.is_optimal() {
        for (i, name) in order2.iter().enumerate() {
            if let Some(t) = name.strip_prefix('h').and_then(|s| s.parse::<usize>().ok()) {
                if t < h {
                    hload[t] = sol.x[i];
                }
            }
        }
    }
    (hload, OptBreakdown { data_io: Duration::ZERO, model_generation, solving })
}

/// P2 as an L1-regression LP through the symbolic builder (the
/// Matlab/YALMIP configuration models LR fitting as an explicit LP,
/// §5.3).
pub fn p2_symbolic_lr(y: &[f64], features: &[Vec<f64>], fut: &[Vec<f64>]) -> Vec<f64> {
    let k = features.len();
    let mut m = SymbolicModel::new();
    let errs: Vec<SymExpr> = (0..y.len()).map(|i| SymExpr::var(format!("e{i}"))).collect();
    m.minimize(SymExpr::sum(errs));
    for (i, &yi) in y.iter().enumerate() {
        let mut pred = SymExpr::var("b0");
        for (j, col) in features.iter().enumerate() {
            pred = pred.add(SymExpr::var(format!("b{}", j + 1)).scale(col[i]));
        }
        // -e_i <= pred - y_i <= e_i
        m.constrain(pred.sub(SymExpr::constant(yi)), Rel::Le, SymExpr::var(format!("e{i}")));
        let mut pred2 = SymExpr::var("b0");
        for (j, col) in features.iter().enumerate() {
            pred2 = pred2.add(SymExpr::var(format!("b{}", j + 1)).scale(col[i]));
        }
        m.constrain(
            SymExpr::var(format!("e{i}")).scale(-1.0),
            Rel::Le,
            pred2.sub(SymExpr::constant(yi)),
        );
        m.bound(format!("e{i}"), 0.0, f64::INFINITY);
    }
    let (sol, order) = m.solve();
    let mut beta = vec![0.0; k + 1];
    if sol.is_optimal() {
        for (i, name) in order.iter().enumerate() {
            if let Some(j) = name.strip_prefix('b').and_then(|s| s.parse::<usize>().ok()) {
                if j <= k {
                    beta[j] = sol.x[i];
                }
            }
        }
    }
    (0..fut[0].len())
        .map(|r| beta[0] + (0..k).map(|j| beta[j + 1] * fut[j][r]).sum::<f64>())
        .collect()
}

/// "Matlab native" stack: specialized library calls, data shipped
/// through CSV files, results written back row by row.
pub fn matlab_native(task: &Uc1Task) -> Uc1Result {
    let dir = TempDir::new("matlab-native").expect("temp dir");

    // P1: export from the "database", parse in the "tool".
    let t1 = Instant::now();
    let table = datagen::energy_table(&task.history);
    let csv = dir.file("history.csv");
    export_csv(&table, &csv).expect("export");
    let (_, cols) = import_csv_numeric(&csv).expect("import");
    let p1_export = t1.elapsed();

    // P2: fitlm analogue — native least squares.
    let t2 = Instant::now();
    let (y, feats) = p2_features(&task.history);
    let _ = &cols;
    let mut lr = LinearRegression::new();
    lr.fit(&y, &feats).expect("lr fit");
    let pv_forecast = lr
        .forecast(task.horizon_outtemp.len(), &horizon_features(task))
        .expect("lr forecast")
        .into_iter()
        .map(|v| v.max(0.0))
        .collect::<Vec<f64>>();
    let p2 = t2.elapsed();

    // P3: ssest analogue — native simulated-annealing fit.
    let t3 = Instant::now();
    let u: Vec<Vec<f64>> = task.history.iter().map(|r| vec![r.out_temp, r.h_load]).collect();
    let measured: Vec<f64> = task.history.iter().map(|r| r.in_temp).collect();
    let fit =
        fit_hvac(&u, &measured, ((0.0, 1.0), (0.0, 1.0), (0.0, 0.01)), task.p3_evaluations, 7);
    let p3 = t3.elapsed();

    // P4: MPT analogue.
    let x0 = measured.last().copied().unwrap_or(21.0);
    let t4 = Instant::now();
    let (hload, mut p4b) = p4_symbolic_mpt(task, (fit.a1, fit.b1, fit.b2), &pv_forecast, x0);
    let p4 = t4.elapsed();

    // P1 (continued): write results back through per-row inserts.
    let t1b = Instant::now();
    let mut db = Database::new();
    execute_script(&mut db, "CREATE TABLE plan (h float8)").unwrap();
    insert_rows_individually(
        &mut db,
        "plan",
        &hload.iter().map(|&h| vec![Value::Float(h)]).collect::<Vec<_>>(),
    )
    .unwrap();
    let p1 = p1_export + t1b.elapsed();
    p4b.data_io = Duration::ZERO;

    Uc1Result {
        pv_forecast,
        hvac: (fit.a1, fit.b1, fit.b2),
        hload,
        times: PhaseTimes { p1, p2, p3, p4 },
        p4: p4b,
    }
}

/// "Matlab + YALMIP" stack: every sub-problem modelled explicitly
/// through the symbolic builder; P3 via Nelder–Mead (fminsearch).
pub fn matlab_yalmip(task: &Uc1Task) -> Uc1Result {
    let dir = TempDir::new("matlab-yalmip").expect("temp dir");

    let t1 = Instant::now();
    let table = datagen::energy_table(&task.history);
    let csv = dir.file("history.csv");
    export_csv(&table, &csv).expect("export");
    let (_, _cols) = import_csv_numeric(&csv).expect("import");
    let p1_export = t1.elapsed();

    // P2 as an explicit LP.
    let t2 = Instant::now();
    let (y, feats) = p2_features(&task.history);
    let pv_forecast: Vec<f64> = p2_symbolic_lr(&y, &feats, &horizon_features(task))
        .into_iter()
        .map(|v| v.max(0.0))
        .collect();
    let p2 = t2.elapsed();

    // P3 via fminsearch (Nelder–Mead) over the simulation SSE.
    let t3 = Instant::now();
    let u: Vec<Vec<f64>> = task.history.iter().map(|r| vec![r.out_temp, r.h_load]).collect();
    let measured: Vec<f64> = task.history.iter().map(|r| r.in_temp).collect();
    let evals_budget = task.p3_evaluations;
    // Matlab evaluates this fitness in its interpreter; so do we.
    let fit = nelder_mead(
        |p| {
            crate::interp::interpreted_hvac_sse(
                p[0].clamp(0.0, 1.0),
                p[1].clamp(0.0, 1.0),
                p[2].clamp(0.0, 0.01),
                &u,
                &measured,
            )
        },
        &[0.5, 0.05, 0.0005],
        NmOptions { max_iterations: evals_budget, ..Default::default() },
    );
    let hvac = (fit.x[0].clamp(0.0, 1.0), fit.x[1].clamp(0.0, 1.0), fit.x[2].clamp(0.0, 0.01));
    let p3 = t3.elapsed();

    // P4 through the symbolic builder.
    let x0 = measured.last().copied().unwrap_or(21.0);
    let t4 = Instant::now();
    let (hload, p4b) = p4_symbolic(task, hvac, &pv_forecast, x0);
    let p4 = t4.elapsed();

    let t1b = Instant::now();
    let mut db = Database::new();
    execute_script(&mut db, "CREATE TABLE plan (h float8)").unwrap();
    insert_rows_individually(
        &mut db,
        "plan",
        &hload.iter().map(|&h| vec![Value::Float(h)]).collect::<Vec<_>>(),
    )
    .unwrap();
    let p1 = p1_export + t1b.elapsed();

    Uc1Result { pv_forecast, hvac, hload, times: PhaseTimes { p1, p2, p3, p4 }, p4: p4b }
}

/// "MADlib + PL/Python" stack: everything in-DBMS, but every step
/// materializes intermediate tables, and the P3 fitness re-parses its
/// SQL from scratch each iteration (the interpreted-pipeline analogue).
pub fn madlib_python(task: &Uc1Task) -> Uc1Result {
    let mut db = Database::new();

    // P1: load data (in-DBMS stack: data is inserted once, in bulk).
    let t1 = Instant::now();
    db.put_table("input", datagen::energy_table(&task.history));
    let p1 = t1.elapsed();

    // P2: linregr_train analogue — X'X and X'y computed via SQL
    // aggregates, params materialized into a table, predictions
    // materialized into another table.
    let t2 = Instant::now();
    let sums = execute_sql(
        &mut db,
        "SELECT count(*), sum(outtemp), sum(hour(time)), \
                sum(outtemp*outtemp), sum(outtemp*hour(time)), sum(hour(time)*hour(time)), \
                sum(pvsupply), sum(outtemp*pvsupply), sum(hour(time)*pvsupply) \
         FROM input",
    )
    .unwrap()
    .into_table()
    .unwrap();
    let g = |i: usize| sums.value(0, i).as_f64().unwrap();
    let mut xtx = vec![g(0), g(1), g(2), g(1), g(3), g(4), g(2), g(4), g(5)];
    let mut xty = vec![g(6), g(7), g(8)];
    forecast::ols::solve_dense(&mut xtx, &mut xty, 3).expect("normal equations");
    let beta = xty;
    // Materialize the "model table" + prediction table (MADlib style).
    execute_script(
        &mut db,
        "DROP TABLE IF EXISTS lr_model; CREATE TABLE lr_model (b0 float8, b1 float8, b2 float8)",
    )
    .unwrap();
    execute_sql(
        &mut db,
        &format!("INSERT INTO lr_model VALUES ({}, {}, {})", beta[0], beta[1], beta[2]),
    )
    .unwrap();
    let fut = horizon_features(task);
    let pv_forecast: Vec<f64> = (0..task.horizon_outtemp.len())
        .map(|r| (beta[0] + beta[1] * fut[0][r] + beta[2] * fut[1][r]).max(0.0))
        .collect();
    execute_script(&mut db, "DROP TABLE IF EXISTS pv_pred; CREATE TABLE pv_pred (v float8)")
        .unwrap();
    insert_rows_individually(
        &mut db,
        "pv_pred",
        &pv_forecast.iter().map(|&v| vec![Value::Float(v)]).collect::<Vec<_>>(),
    )
    .unwrap();
    let p2 = t2.elapsed();

    // P3: differential evolution with a fitness that re-parses and
    // re-plans the simulation query every evaluation (one more
    // intermediate table for the numbered history, MADlib style).
    let t3 = Instant::now();
    let measured: Vec<f64> = task.history.iter().map(|r| r.in_temp).collect();
    let x0v = measured[0];
    let n_hist = task.history.len();
    execute_script(
        &mut db,
        "DROP TABLE IF EXISTS hist; CREATE TABLE hist (rn int, outtemp float8, hload float8, intemp float8)",
    )
    .unwrap();
    insert_rows_individually(
        &mut db,
        "hist",
        &task
            .history
            .iter()
            .enumerate()
            .map(|(i, r)| {
                vec![
                    Value::Int(i as i64),
                    Value::Float(r.out_temp),
                    Value::Float(r.h_load),
                    Value::Float(r.in_temp),
                ]
            })
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let space = SearchSpace::continuous(vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 0.01]);
    let evals = task.p3_evaluations.max(20);
    let pop = 10.min(evals / 2).max(4);
    let iters = (evals / pop).max(1);
    execute_script(
        &mut db,
        "DROP TABLE IF EXISTS cand; CREATE TABLE cand (a1 float8, b1 float8, b2 float8)",
    )
    .unwrap();
    let fitness = |p: &[f64]| -> f64 {
        // The PL/Python pipeline materializes the candidate parameters
        // (MADlib-style intermediate tables), then builds the SQL string
        // and runs it from scratch — parse, bind, plan, execute.
        let _ = execute_sql(&mut db, "DELETE FROM cand");
        let _ = execute_sql(
            &mut db,
            &format!("INSERT INTO cand VALUES ({}, {}, {})", p[0], p[1], p[2]),
        );
        let sql = format!(
            "WITH RECURSIVE sim(step, x) AS ( \
               SELECT 0, {x0}::float8 \
               UNION ALL \
               SELECT s.step + 1, {a}*s.x + {b}*n.outtemp + {c}*n.hload \
               FROM sim s JOIN hist n ON n.rn = s.step \
               WHERE s.step < {n}) \
             SELECT sum((sim.x - h.intemp)^2) FROM sim JOIN hist h ON h.rn = sim.step",
            x0 = x0v,
            a = p[0],
            b = p[1],
            c = p[2],
            n = n_hist
        );
        match execute_sql(&mut db, &sql) {
            Ok(r) => r
                .into_table()
                .ok()
                .and_then(|t| t.scalar().ok())
                .and_then(|v| v.as_f64().ok())
                .unwrap_or(f64::INFINITY),
            Err(_) => f64::INFINITY,
        }
    };
    let fit = differential_evolution(
        fitness,
        &space,
        DeOptions { population: pop, iterations: iters, seed: 3, ..Default::default() },
    );
    let hvac = (fit.x[0], fit.x[1], fit.x[2]);
    let p3 = t3.elapsed();

    // P4: PyMathProg analogue — symbolic model builder + GLPK-class solver.
    let x0 = measured.last().copied().unwrap_or(21.0);
    let t4 = Instant::now();
    let (hload, p4b) = p4_symbolic(task, hvac, &pv_forecast, x0);
    // Results land in another intermediate table.
    execute_script(&mut db, "DROP TABLE IF EXISTS plan; CREATE TABLE plan (h float8)").unwrap();
    insert_rows_individually(
        &mut db,
        "plan",
        &hload.iter().map(|&h| vec![Value::Float(h)]).collect::<Vec<_>>(),
    )
    .unwrap();
    let p4 = t4.elapsed();

    Uc1Result { pv_forecast, hvac, hload, times: PhaseTimes { p1, p2, p3, p4 }, p4: p4b }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_task() -> Uc1Task {
        let rows = datagen::energy_series(24 * 6, 99);
        let horizon: Vec<f64> = (0..12).map(|i| 8.0 + (i % 5) as f64).collect();
        let mut t = Uc1Task::new(rows, horizon);
        t.p3_evaluations = 60;
        t
    }

    #[test]
    fn all_stacks_produce_feasible_plans() {
        let task = small_task();
        for (name, result) in [
            ("native", matlab_native(&task)),
            ("yalmip", matlab_yalmip(&task)),
            ("madlib", madlib_python(&task)),
        ] {
            assert_eq!(result.hload.len(), 12, "{name}");
            for &h in &result.hload {
                assert!(
                    (task.power.0 - 1e-6..=task.power.1 + 1e-6).contains(&h),
                    "{name}: load {h} out of bounds"
                );
            }
            assert_eq!(result.pv_forecast.len(), 12, "{name}");
            assert!(result.pv_forecast.iter().all(|v| v.is_finite() && *v >= 0.0));
            let (a1, ..) = result.hvac;
            assert!((0.0..=1.0).contains(&a1), "{name}: a1 {a1}");
            assert!(result.times.total() > Duration::ZERO);
        }
    }

    #[test]
    fn direct_and_symbolic_p4_agree() {
        let task = small_task();
        let pv: Vec<f64> = vec![100.0; 12];
        let hvac = (datagen::TRUE_A1, datagen::TRUE_B1, datagen::TRUE_B2);
        let (direct, bd) = p4_direct(&task, hvac, &pv, 21.0);
        let (symbolic, bs) = p4_symbolic(&task, hvac, &pv, 21.0);
        let (mpt, _) = p4_symbolic_mpt(&task, hvac, &pv, 21.0);
        for i in 0..12 {
            assert!((direct[i] - symbolic[i]).abs() < 1e-4, "step {i}");
            assert!((direct[i] - mpt[i]).abs() < 1e-4, "step {i} (mpt)");
        }
        // The symbolic path spends more time generating the model.
        assert!(bs.model_generation >= bd.model_generation);
    }

    #[test]
    fn symbolic_lr_matches_ols_on_exact_data() {
        // y = 1 + 2*f.
        let f: Vec<f64> = (0..30).map(|i| (i % 7) as f64).collect();
        let y: Vec<f64> = f.iter().map(|v| 1.0 + 2.0 * v).collect();
        let fut = vec![vec![3.0, 5.0]];
        let pred = p2_symbolic_lr(&y, &[f], &fut);
        assert!((pred[0] - 7.0).abs() < 1e-5);
        assert!((pred[1] - 11.0).abs() < 1e-5);
    }
}
