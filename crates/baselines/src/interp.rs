//! A tiny expression interpreter — the stand-in for *interpreted* fitness
//! functions (Matlab `sim_sse`, PL/Python loops). The paper's general
//! stacks evaluate their P3 fitness in an interpreted language; simulating
//! them with compiled Rust would understate their cost structure, so the
//! interpreted baselines run their simulation through this walker: boxed
//! expression trees, environment lookups by name, dynamic dispatch per
//! node — the usual interpretation taxes.

use std::collections::HashMap;

/// An interpreted expression over a named environment.
pub enum IExpr {
    Const(f64),
    Var(String),
    Add(Box<IExpr>, Box<IExpr>),
    Sub(Box<IExpr>, Box<IExpr>),
    Mul(Box<IExpr>, Box<IExpr>),
}

impl IExpr {
    pub fn var(n: &str) -> IExpr {
        IExpr::Var(n.to_string())
    }

    pub fn eval(&self, env: &HashMap<String, f64>) -> f64 {
        match self {
            IExpr::Const(c) => *c,
            IExpr::Var(n) => *env.get(n).unwrap_or(&f64::NAN),
            IExpr::Add(a, b) => a.eval(env) + b.eval(env),
            IExpr::Sub(a, b) => a.eval(env) - b.eval(env),
            IExpr::Mul(a, b) => a.eval(env) * b.eval(env),
        }
    }
}

/// The HVAC simulation SSE evaluated interpretively:
/// `x' = a1*x + b1*out + b2*h`, error accumulated per step. The
/// expression tree is rebuilt per call, as a dynamically-typed runtime
/// would effectively do.
pub fn interpreted_hvac_sse(a1: f64, b1: f64, b2: f64, u: &[Vec<f64>], measured: &[f64]) -> f64 {
    // next_x = a1*x + b1*out + b2*h ; err = (x - m)^2
    let next_x = IExpr::Add(
        Box::new(IExpr::Add(
            Box::new(IExpr::Mul(Box::new(IExpr::var("a1")), Box::new(IExpr::var("x")))),
            Box::new(IExpr::Mul(Box::new(IExpr::var("b1")), Box::new(IExpr::var("out")))),
        )),
        Box::new(IExpr::Mul(Box::new(IExpr::var("b2")), Box::new(IExpr::var("h")))),
    );
    let err = IExpr::Mul(
        Box::new(IExpr::Sub(Box::new(IExpr::var("x")), Box::new(IExpr::var("m")))),
        Box::new(IExpr::Sub(Box::new(IExpr::var("x")), Box::new(IExpr::var("m")))),
    );
    let mut env: HashMap<String, f64> = HashMap::new();
    env.insert("a1".into(), a1);
    env.insert("b1".into(), b1);
    env.insert("b2".into(), b2);
    env.insert("x".into(), *measured.first().unwrap_or(&0.0));
    let mut sse = 0.0;
    for (k, step) in u.iter().enumerate() {
        if k >= measured.len() {
            break;
        }
        env.insert("out".into(), step[0]);
        env.insert("h".into(), step[1]);
        env.insert("m".into(), measured[k]);
        sse += err.eval(&env);
        let nx = next_x.eval(&env);
        env.insert("x".into(), nx);
    }
    sse
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_native_simulation() {
        let truth = ssmodel::Lti::hvac(0.9, 0.05, 0.0004);
        let u: Vec<Vec<f64>> = (0..40).map(|i| vec![5.0 + (i % 7) as f64, 300.0]).collect();
        let (states, _) = truth.simulate(&[21.0], &u);
        let measured: Vec<f64> = states.iter().take(40).map(|s| s[0]).collect();
        // Perfect parameters → zero SSE, interpreted or not.
        let sse = interpreted_hvac_sse(0.9, 0.05, 0.0004, &u, &measured);
        assert!(sse < 1e-18, "sse {sse}");
        // Wrong parameters → equal to the native SSE.
        let native = ssmodel::simulation_sse(
            &ssmodel::Lti::hvac(0.8, 0.05, 0.0004),
            &[measured[0]],
            &u,
            &measured,
        );
        let interp = interpreted_hvac_sse(0.8, 0.05, 0.0004, &u, &measured);
        assert!((native - interp).abs() < 1e-9, "{native} vs {interp}");
    }

    #[test]
    fn iexpr_evaluates() {
        let mut env = HashMap::new();
        env.insert("x".to_string(), 3.0);
        let e = IExpr::Add(
            Box::new(IExpr::Mul(Box::new(IExpr::Const(2.0)), Box::new(IExpr::var("x")))),
            Box::new(IExpr::Const(1.0)),
        );
        assert_eq!(e.eval(&env), 7.0);
        assert!(IExpr::var("missing").eval(&env).is_nan());
    }
}
