//! UC2 (supply chain management) baseline pipelines — paper §5.4.
//!
//! Task: forecast next-month demand per item (P2), model expected profit
//! (P3), and choose which items to produce ahead under a warehouse
//! volume constraint (P4, a knapsack MIP).

use crate::csvio::{export_csv, import_csv_numeric, TempDir};
use crate::PhaseTimes;
use datagen::ScItem;
use forecast::{arima::arima_rmse, Arima, Forecaster};
use lp::Rel;
use sqlengine::{execute_script, execute_sql, Database, Table, Value};
use std::time::Instant;

/// Result of a UC2 run.
#[derive(Debug, Clone)]
pub struct Uc2Result {
    pub forecasts: Vec<f64>,
    pub expected_profit: Vec<f64>,
    pub picks: Vec<f64>,
    pub times: PhaseTimes,
}

/// Warehouse capacity as a fraction of the total demanded volume.
pub const CAPACITY_FRACTION: f64 = 0.4;

/// ARIMA order grid used by the R-style baseline (the paper trains about
/// 100 models per item in R).
fn order_grid() -> Vec<(usize, usize, usize)> {
    let mut g = Vec::new();
    for p in 0..=4 {
        for d in 0..=3 {
            for q in 0..=4 {
                g.push((p, d, q));
            }
        }
    }
    g
}

/// The shared P4 knapsack (direct matrix construction — both baselines
/// call a CPLEX-class MIP solver with prebuilt matrices).
pub fn p4_knapsack(items: &[ScItem], forecasts: &[f64], profits: &[f64]) -> Vec<f64> {
    let n = items.len();
    let total_volume: f64 = items.iter().zip(forecasts).map(|(it, &f)| it.size * f.max(0.0)).sum();
    let cap = total_volume * CAPACITY_FRACTION;
    let mut p = lp::Problem::maximize(n);
    for j in 0..n {
        p.set_bounds(j, 0.0, 1.0);
        p.integer[j] = true;
    }
    p.set_objective(profits.iter().copied().enumerate().collect());
    p.add_constraint(
        items.iter().zip(forecasts).map(|(it, &f)| it.size * f.max(0.0)).enumerate().collect(),
        Rel::Le,
        cap,
    );
    let sol = lp::solve(&p);
    if sol.x.is_empty() {
        vec![0.0; n]
    } else {
        sol.x
    }
}

/// Fit the best grid order on a series and forecast one step.
fn grid_fit_forecast(y: &[f64]) -> f64 {
    let mut best: Option<((usize, usize, usize), f64)> = None;
    for (p, d, q) in order_grid() {
        let e = arima_rmse(y, p, d, q);
        if e.is_finite() && best.map_or(true, |(_, b)| e < b) {
            best = Some(((p, d, q), e));
        }
    }
    let (p, d, q) = best.map(|(o, _)| o).unwrap_or((0, 0, 0));
    let mut m = Arima::new(p, d, q);
    if m.fit(y, &[]).is_err() {
        return y.iter().sum::<f64>() / y.len().max(1) as f64;
    }
    m.forecast(1, &[]).map(|f| f[0]).unwrap_or(0.0)
}

/// "R + CPLEX" stack: per-item CSV shipping, grid-search ARIMA in the
/// external tool, knapsack through CPLEX-style direct matrices.
pub fn r_cplex(items: &[ScItem]) -> Uc2Result {
    let dir = TempDir::new("r-cplex").expect("temp dir");

    // P1: export every item's history for the external tool.
    let t1 = Instant::now();
    let mut shipped: Vec<Vec<f64>> = Vec::with_capacity(items.len());
    for it in items {
        let t = Table::from_rows(
            &["m", "q"],
            it.orders
                .iter()
                .enumerate()
                .map(|(m, &q)| vec![Value::Int(m as i64), Value::Float(q)])
                .collect(),
        );
        let path = dir.file(&format!("item{}.csv", it.item_id));
        export_csv(&t, &path).expect("export");
        let (_, cols) = import_csv_numeric(&path).expect("import");
        shipped.push(cols.into_iter().nth(1).unwrap_or_default());
    }
    let p1 = t1.elapsed();

    // P2: grid-search ARIMA per item.
    let t2 = Instant::now();
    let forecasts: Vec<f64> = shipped.iter().map(|y| grid_fit_forecast(y)).collect();
    let p2 = t2.elapsed();

    // P3: expected profit per item.
    let t3 = Instant::now();
    let expected_profit: Vec<f64> =
        items.iter().zip(&forecasts).map(|(it, &f)| (it.price - it.cost) * f.max(0.0)).collect();
    let p3 = t3.elapsed();

    // P4: knapsack MIP.
    let t4 = Instant::now();
    let picks = p4_knapsack(items, &forecasts, &expected_profit);
    let p4 = t4.elapsed();

    Uc2Result { forecasts, expected_profit, picks, times: PhaseTimes { p1, p2, p3, p4 } }
}

/// "MADlib + CPLEX" stack: in-DBMS forecasting, but each candidate
/// model's evaluation writes and reads intermediate tables — the paper
/// measures those write/read operations at ~60 % of total time (§5.4).
pub fn madlib_cplex(items: &[ScItem]) -> Uc2Result {
    let mut db = Database::new();

    // P1: load orders in-DBMS.
    let t1 = Instant::now();
    datagen::install_supply_chain(&mut db, items);
    let p1 = t1.elapsed();

    // P2: per item, evaluate the order grid; every evaluation
    // materializes a training table and a results table.
    let t2 = Instant::now();
    let mut forecasts = Vec::with_capacity(items.len());
    for it in items {
        let y = it.orders.clone();
        execute_script(
            &mut db,
            "DROP TABLE IF EXISTS train; CREATE TABLE train (rn int, q float8)",
        )
        .unwrap();
        for (m, &q) in y.iter().enumerate() {
            execute_sql(&mut db, &format!("INSERT INTO train VALUES ({m}, {q})")).unwrap();
        }
        let mut best: Option<((usize, usize, usize), f64)> = None;
        for (p, d, q) in order_grid() {
            // Read training data back (MADlib UDFs scan their input
            // table per call).
            let tt = execute_sql(&mut db, "SELECT q FROM train ORDER BY rn")
                .unwrap()
                .into_table()
                .unwrap();
            let series: Vec<f64> = tt.rows.iter().map(|r| r[0].as_f64().unwrap_or(0.0)).collect();
            let e = arima_rmse(&series, p, d, q);
            // ...and write the candidate's score to a results table.
            execute_script(
                &mut db,
                "DROP TABLE IF EXISTS cv_result; CREATE TABLE cv_result (p int, d int, q int, e float8)",
            )
            .unwrap();
            let e_stored = if e.is_finite() { e } else { 1e18 };
            execute_sql(
                &mut db,
                &format!("INSERT INTO cv_result VALUES ({p}, {d}, {q}, {e_stored})"),
            )
            .unwrap();
            let back = execute_sql(&mut db, "SELECT e FROM cv_result")
                .unwrap()
                .into_table()
                .unwrap()
                .scalar()
                .unwrap()
                .as_f64()
                .unwrap();
            if back < 1e17 && best.map_or(true, |(_, b)| back < b) {
                best = Some(((p, d, q), back));
            }
        }
        let (p, d, q) = best.map(|(o, _)| o).unwrap_or((0, 0, 0));
        let mut m = Arima::new(p, d, q);
        let f = if m.fit(&y, &[]).is_ok() {
            m.forecast(1, &[]).map(|f| f[0]).unwrap_or(0.0)
        } else {
            y.iter().sum::<f64>() / y.len().max(1) as f64
        };
        forecasts.push(f);
    }
    let p2 = t2.elapsed();

    // P3: expected profit, materialized in-DBMS.
    let t3 = Instant::now();
    execute_script(
        &mut db,
        "DROP TABLE IF EXISTS profit; CREATE TABLE profit (item_id int, v float8)",
    )
    .unwrap();
    let mut expected_profit = Vec::with_capacity(items.len());
    for (it, &f) in items.iter().zip(&forecasts) {
        let v = (it.price - it.cost) * f.max(0.0);
        execute_sql(&mut db, &format!("INSERT INTO profit VALUES ({}, {v})", it.item_id)).unwrap();
        expected_profit.push(v);
    }
    let p3 = t3.elapsed();

    // P4: CPLEX-style knapsack.
    let t4 = Instant::now();
    let picks = p4_knapsack(items, &forecasts, &expected_profit);
    let p4 = t4.elapsed();

    Uc2Result { forecasts, expected_profit, picks, times: PhaseTimes { p1, p2, p3, p4 } }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knapsack_respects_capacity() {
        let items = datagen::supply_chain(8, 24, 3);
        let forecasts: Vec<f64> = items.iter().map(|i| i.orders.last().copied().unwrap()).collect();
        let profits: Vec<f64> =
            items.iter().zip(&forecasts).map(|(it, &f)| (it.price - it.cost) * f).collect();
        let picks = p4_knapsack(&items, &forecasts, &profits);
        let used: f64 =
            items.iter().zip(&forecasts).zip(&picks).map(|((it, &f), &p)| it.size * f * p).sum();
        let cap: f64 = items.iter().zip(&forecasts).map(|(it, &f)| it.size * f).sum::<f64>()
            * CAPACITY_FRACTION;
        assert!(used <= cap + 1e-6);
        assert!(picks.iter().any(|&p| p > 0.5)); // something gets picked
        assert!(picks.iter().all(|&p| p == 0.0 || p == 1.0));
    }

    #[test]
    fn both_stacks_forecast_and_pick() {
        let items = datagen::supply_chain(4, 30, 9);
        let r = r_cplex(&items);
        let m = madlib_cplex(&items);
        assert_eq!(r.forecasts.len(), 4);
        assert_eq!(m.forecasts.len(), 4);
        assert!(r.forecasts.iter().all(|f| f.is_finite()));
        assert!(m.forecasts.iter().all(|f| f.is_finite()));
        // Same grid, same data → identical model choices and forecasts.
        for (a, b) in r.forecasts.iter().zip(&m.forecasts) {
            assert!((a - b).abs() < 1e-9);
        }
        // MADlib-style write/read overhead slows P2 down.
        assert!(m.times.p2 >= r.times.p2);
    }
}
