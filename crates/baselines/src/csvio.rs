//! File-based data exchange, as multi-tool PA stacks do it: the DBMS
//! exports CSV, the external tool parses it, results come back through
//! per-row INSERT statements. This is the "high I/O cost" the paper's
//! §1 and Fig. 5 attribute to non-integrated stacks.

use sqlengine::{execute_sql, Database, Table, Value};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Export a table to CSV (header + rows).
pub fn export_csv(table: &Table, path: &Path) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    writeln!(w, "{}", table.schema.names().join(","))?;
    for row in &table.rows {
        let line: Vec<String> =
            row.iter().map(|v| if v.is_null() { String::new() } else { v.to_string() }).collect();
        writeln!(w, "{}", line.join(","))?;
    }
    w.flush()
}

/// Parse a CSV of floats (empty cells become NaN). Returns
/// (header, column-major data) — the shape an external numeric tool
/// would build.
pub fn import_csv_numeric(path: &Path) -> std::io::Result<(Vec<String>, Vec<Vec<f64>>)> {
    let f = std::fs::File::open(path)?;
    let mut lines = BufReader::new(f).lines();
    let header: Vec<String> = match lines.next() {
        Some(h) => h?.split(',').map(|s| s.to_string()).collect(),
        None => return Ok((vec![], vec![])),
    };
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); header.len()];
    for line in lines {
        let line = line?;
        for (i, cell) in line.split(',').enumerate() {
            if i < cols.len() {
                cols[i].push(cell.trim().parse().unwrap_or(f64::NAN));
            }
        }
    }
    Ok((header, cols))
}

/// Write results back into the database the way glue scripts do: one
/// INSERT statement per row, each going through the full parse/execute
/// path.
pub fn insert_rows_individually(
    db: &mut Database,
    table: &str,
    rows: &[Vec<Value>],
) -> sqlengine::Result<()> {
    for row in rows {
        let vals: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => "NULL".to_string(),
                Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
                Value::Timestamp(_) => format!("'{v}'"),
                other => other.to_string(),
            })
            .collect();
        execute_sql(db, &format!("INSERT INTO {table} VALUES ({})", vals.join(", ")))?;
    }
    Ok(())
}

/// A scratch directory for baseline file exchange, removed on drop.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    pub fn new(label: &str) -> std::io::Result<TempDir> {
        let path = std::env::temp_dir()
            .join(format!("solvedbplus-baseline-{label}-{}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::execute_script;

    #[test]
    fn csv_roundtrip() {
        let dir = TempDir::new("csvtest").unwrap();
        let t = Table::from_rows(
            &["a", "b"],
            vec![vec![Value::Float(1.5), Value::Float(2.0)], vec![Value::Null, Value::Float(4.0)]],
        );
        let p = dir.file("t.csv");
        export_csv(&t, &p).unwrap();
        let (header, cols) = import_csv_numeric(&p).unwrap();
        assert_eq!(header, vec!["a", "b"]);
        assert_eq!(cols[0][0], 1.5);
        assert!(cols[0][1].is_nan());
        assert_eq!(cols[1], vec![2.0, 4.0]);
    }

    #[test]
    fn per_row_inserts() {
        let mut db = Database::new();
        execute_script(&mut db, "CREATE TABLE r (x float8, s text)").unwrap();
        insert_rows_individually(
            &mut db,
            "r",
            &[vec![Value::Float(1.0), Value::text("it's")], vec![Value::Null, Value::text("b")]],
        )
        .unwrap();
        let t = execute_sql(&mut db, "SELECT count(*) FROM r").unwrap().into_table().unwrap();
        assert_eq!(t.scalar().unwrap(), Value::Int(2));
        let t = execute_sql(&mut db, "SELECT s FROM r WHERE x = 1").unwrap().into_table().unwrap();
        assert_eq!(t.scalar().unwrap(), Value::text("it's"));
    }
}
