//! CRC-32 (IEEE 802.3 polynomial, reflected) — the checksum guarding
//! every WAL record and snapshot body. Implemented here because the
//! build environment has no crates.io access; the table-driven form is
//! the textbook one and matches `crc32fast`/zlib output byte for byte.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Byte-indexed lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of a byte slice (single-shot).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the ASCII digits.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let crc = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut corrupt = base.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), crc, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }
}
