//! The storage engine: group-commit WAL appends, checkpointing, crash
//! recovery, and the shadow catalog that hydrates new sessions.
//!
//! One [`StorageEngine`] owns a data directory holding `wal.log` plus
//! `snapshot-<lsn>.sdb` files. Each durable session attaches its own
//! [`SessionHook`] as the catalog's `DurabilityHook`: every committed
//! mutation is buffered *per session*, and the session flushes its
//! buffer through [`StorageEngine::commit_batch`] once per statement —
//! all of (and only) that statement's records go to the log in one
//! contiguous write (group commit), with at most one fsync as the
//! [`FsyncPolicy`] dictates.
//!
//! The engine also maintains a *shadow catalog* — the durable tables
//! and views as of the last commit — so that (a) `CHECKPOINT` can
//! snapshot the full durable state even when the calling session's
//! private catalog predates other sessions' writes, (b) new sessions
//! hydrate from memory without re-reading the log, and (c) commits can
//! be validated against the durable truth: a batch that conflicts with
//! what another connection already committed (duplicate `CREATE
//! TABLE`, an `INSERT` whose arity no longer matches the durable
//! schema) is rejected as an error rather than silently merged.
//!
//! A WAL append I/O failure *poisons* the engine: after a partial
//! write the file offset is indeterminate, so appending more frames
//! could render every later record unrecoverable (replay stops at the
//! first torn frame). A poisoned engine refuses all further commits
//! and checkpoints; restarting the process recovers, truncating the
//! torn tail.

use crate::record::Record;
use crate::snapshot::{self, SnapshotData};
use crate::wal::Wal;
use obs::{QueryTrace, Stage, Trace};
use sqlengine::catalog::{CatalogMutation, Database, DurabilityHook};
use sqlengine::error::{Error, Result};
use sqlengine::table::{Table, TableRef};
use sqlengine::types::Value;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When (if ever) WAL appends reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every group commit — survives power loss.
    Always,
    /// fsync at most once per the given window — bounded data loss,
    /// near-`Never` throughput. The deadline is enforced even when the
    /// engine goes idle: a background flusher thread syncs any
    /// unsynced tail once the window expires, and a clean shutdown
    /// (engine drop) syncs whatever remains.
    Interval(Duration),
    /// Never fsync — the OS page cache decides; survives process
    /// crashes (SIGKILL) but not power loss.
    Never,
}

impl FsyncPolicy {
    /// Parse `always` / `never` / `interval` / `interval:<ms>`.
    pub fn parse(s: &str) -> Result<FsyncPolicy> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "interval" => Ok(FsyncPolicy::Interval(Duration::from_millis(100))),
            other => {
                if let Some(ms) = other.strip_prefix("interval:") {
                    let ms: u64 = ms.parse().map_err(|_| {
                        Error::eval(format!("invalid fsync interval '{ms}' (want milliseconds)"))
                    })?;
                    return Ok(FsyncPolicy::Interval(Duration::from_millis(ms)));
                }
                Err(Error::eval(format!(
                    "unknown fsync policy '{other}' (want always | interval[:ms] | never)"
                )))
            }
        }
    }

    /// Canonical rendering (shown in `sdb_storage`).
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::Interval(d) => format!("interval:{}", d.as_millis()),
            FsyncPolicy::Never => "never".to_string(),
        }
    }
}

/// What recovery found and did, frozen at open time.
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    /// LSN of the snapshot that seeded recovery (0 = none found).
    pub snapshot_lsn: u64,
    /// Tables / views restored from the snapshot.
    pub snapshot_tables: u64,
    pub snapshot_views: u64,
    /// UDF names the snapshot recorded (informational — UDFs are code,
    /// re-registered by the session at startup).
    pub snapshot_udfs: Vec<String>,
    /// WAL records replayed (LSN > snapshot LSN).
    pub replayed_records: u64,
    /// WAL records skipped because the snapshot already covered them.
    pub skipped_records: u64,
    /// Bytes of torn WAL tail truncated at open.
    pub truncated_bytes: u64,
    /// Why the tail was torn, when it was.
    pub torn_reason: Option<String>,
    /// Snapshots that failed validation and were passed over.
    pub rejected_snapshots: Vec<(String, String)>,
    /// Wall-clock nanos spent recovering.
    pub recover_nanos: u64,
}

/// Mutable engine state behind one lock: the log, the shadow catalog,
/// and cumulative counters.
struct EngineInner {
    wal: Wal,
    next_lsn: u64,
    last_checkpoint_lsn: u64,
    /// Shadow catalog: durable tables/views as of the last commit.
    tables: HashMap<String, TableRef>,
    views: HashMap<String, String>,
    /// Cumulative counters (surfaced in `sdb_storage`).
    commits: u64,
    fsyncs: u64,
    appended_records: u64,
    appended_bytes: u64,
    wal_append_nanos: u64,
    checkpoints: u64,
    snapshots_written: u64,
    last_snapshot_bytes: u64,
    last_fsync: Instant,
    /// Appended bytes not yet covered by an fsync.
    dirty: bool,
    /// Set on a WAL append/sync I/O failure. A partial append leaves
    /// the file offset indeterminate, so every later write could be
    /// unrecoverable; the engine refuses further commits until the
    /// process restarts and recovery truncates the torn tail.
    poisoned: Option<String>,
}

impl EngineInner {
    /// Replay-side application (recovery): lenient, last-writer-wins.
    /// The WAL is the authority here — commit-time validation already
    /// kept conflicting records out of it.
    fn apply_to_shadow(&mut self, m: &CatalogMutation) {
        match m {
            CatalogMutation::CreateTable { name, table }
            | CatalogMutation::PutTable { name, table } => {
                self.tables.insert(name.clone(), table.clone());
            }
            CatalogMutation::DropTable { name } => {
                self.tables.remove(name);
            }
            CatalogMutation::AppendRows { name, rows } => {
                if let Some(t) = self.tables.get_mut(name) {
                    Arc::make_mut(t).rows.extend(rows.iter().cloned());
                }
            }
            CatalogMutation::CreateView { name, sql } => {
                self.views.insert(name.clone(), sql.clone());
            }
            CatalogMutation::DropView { name } => {
                self.views.remove(name);
            }
        }
    }

    fn check_poisoned(&self) -> Result<()> {
        match &self.poisoned {
            Some(why) => Err(Error::eval(format!(
                "storage: engine poisoned by an earlier WAL I/O failure \
                 (restart to recover): {why}"
            ))),
            None => Ok(()),
        }
    }

    /// Interval-policy deadline: sync the unsynced tail once the
    /// window has expired. Called from the background flusher and from
    /// empty commits, so the bounded-loss window holds even when the
    /// last commits before an idle period never saw a follow-up.
    fn sync_if_due(&mut self, policy: FsyncPolicy) -> Result<()> {
        let FsyncPolicy::Interval(window) = policy else { return Ok(()) };
        if !self.dirty || self.last_fsync.elapsed() < window {
            return Ok(());
        }
        match self.wal.sync() {
            Ok(()) => {
                self.dirty = false;
                self.fsyncs += 1;
                self.last_fsync = Instant::now();
                Ok(())
            }
            Err(e) => {
                self.poisoned = Some(e.to_string());
                Err(e)
            }
        }
    }
}

/// Commit-side application: validate `m` against the (scratch) durable
/// catalog before it may reach the WAL. Conflicts with state another
/// connection already committed surface as errors instead of silently
/// merging rows into a table with a different schema.
fn apply_checked(
    tables: &mut HashMap<String, TableRef>,
    views: &mut HashMap<String, String>,
    m: &CatalogMutation,
) -> Result<()> {
    match m {
        CatalogMutation::CreateTable { name, table } => {
            if tables.contains_key(name) || views.contains_key(name) {
                return Err(Error::catalog(format!(
                    "relation '{name}' already exists in the durable catalog \
                     (conflicting CREATE committed by another connection)"
                )));
            }
            tables.insert(name.clone(), table.clone());
        }
        CatalogMutation::PutTable { name, table } => {
            // Wholesale replacement: last-writer-wins by design.
            tables.insert(name.clone(), table.clone());
        }
        CatalogMutation::DropTable { name } => {
            tables.remove(name);
        }
        CatalogMutation::AppendRows { name, rows } => {
            let t = tables.get_mut(name).ok_or_else(|| {
                Error::catalog(format!(
                    "cannot commit INSERT into '{name}' durably: the table no longer \
                     exists in the durable catalog (dropped by another connection)"
                ))
            })?;
            let want = t.schema.len();
            for row in rows {
                if row.len() != want {
                    return Err(Error::catalog(format!(
                        "cannot commit INSERT into '{name}' durably: row has {} values \
                         but the durable table has {want} columns (schema diverged \
                         across connections)",
                        row.len()
                    )));
                }
            }
            Arc::make_mut(t).rows.extend(rows.iter().cloned());
        }
        CatalogMutation::CreateView { name, sql } => {
            views.insert(name.clone(), sql.clone());
        }
        CatalogMutation::DropView { name } => {
            views.remove(name);
        }
    }
    Ok(())
}

/// The durable storage engine for one data directory.
pub struct StorageEngine {
    dir: PathBuf,
    policy: FsyncPolicy,
    inner: Arc<Mutex<EngineInner>>,
    recovery: RecoveryStats,
    recovery_trace: QueryTrace,
    /// Interval-policy deadline flusher: stop flag + condvar, joined
    /// on drop. `None` for `always`/`never` (nothing to flush late).
    flusher: Option<(Arc<(Mutex<bool>, Condvar)>, JoinHandle<()>)>,
    /// Latency sink for `wal.append` / `wal.fsync` histograms, attached
    /// once by the process that opened the engine.
    metrics: std::sync::OnceLock<Arc<obs::MetricsRegistry>>,
}

fn lock(inner: &Mutex<EngineInner>) -> MutexGuard<'_, EngineInner> {
    // A poisoning panic cannot leave the byte-level state torn worse
    // than a crash would, and recovery handles crashes; keep serving.
    inner.lock().unwrap_or_else(|e| e.into_inner())
}

/// Background deadline enforcement for [`FsyncPolicy::Interval`]: wake
/// at least once per window and sync any unsynced tail whose deadline
/// has passed, so commits before an idle period still reach disk
/// within the documented bound.
fn flusher_loop(
    inner: Arc<Mutex<EngineInner>>,
    stop: Arc<(Mutex<bool>, Condvar)>,
    window: Duration,
) {
    let sleep = window.max(Duration::from_millis(1));
    let (flag, cvar) = &*stop;
    let mut stopped = flag.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let Ok((guard, _)) = cvar.wait_timeout(stopped, sleep) else { return };
        stopped = guard;
        if *stopped {
            return;
        }
        let mut inner = lock(&inner);
        if inner.poisoned.is_none() {
            // An I/O failure here poisons the engine (inside
            // sync_if_due); the next commit reports it.
            let _ = inner.sync_if_due(FsyncPolicy::Interval(window));
        }
    }
}

impl StorageEngine {
    /// Open a data directory: load the newest valid snapshot, replay
    /// the WAL tail (truncating a torn final record), and position the
    /// log for appends. Records the `recover` stage tree.
    pub fn open(dir: &Path, policy: FsyncPolicy) -> Result<StorageEngine> {
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::eval(format!("storage: create data dir: {e}")))?;
        let started = Instant::now();
        let trace = Trace::new();
        trace.set_label("RECOVER");
        let mut stats = RecoveryStats::default();
        let mut tables: HashMap<String, TableRef> = HashMap::new();
        let mut views: HashMap<String, String> = HashMap::new();

        // Phase 1: newest valid snapshot.
        let snap: Option<SnapshotData> = trace.time("recover.snapshot", || {
            let mut rejected = Vec::new();
            let s = snapshot::load_latest(dir, &mut rejected);
            stats.rejected_snapshots = rejected;
            s
        });
        if let Some(snap) = &snap {
            stats.snapshot_lsn = snap.last_lsn;
            stats.snapshot_tables = snap.tables.len() as u64;
            stats.snapshot_views = snap.views.len() as u64;
            stats.snapshot_udfs = snap.udfs.clone();
            for (name, t) in &snap.tables {
                tables.insert(name.clone(), t.clone());
            }
            for (name, sql) in &snap.views {
                views.insert(name.clone(), sql.clone());
            }
        }
        let snapshot_lsn = stats.snapshot_lsn;

        // Phase 2: WAL tail. Records the snapshot already covers are
        // skipped; a torn final record was truncated by `Wal::open`.
        let (wal, scan) = trace.time("recover.wal", || Wal::open(&dir.join("wal.log")))?;
        stats.truncated_bytes = scan.truncated_bytes;
        stats.torn_reason = scan.torn_reason.clone();
        let mut shadow = EngineInner {
            wal,
            next_lsn: 1,
            last_checkpoint_lsn: snapshot_lsn,
            tables,
            views,
            commits: 0,
            fsyncs: 0,
            appended_records: 0,
            appended_bytes: 0,
            wal_append_nanos: 0,
            checkpoints: 0,
            snapshots_written: 0,
            last_snapshot_bytes: 0,
            last_fsync: Instant::now(),
            dirty: false,
            poisoned: None,
        };
        let mut max_lsn = snapshot_lsn;
        for Record { lsn, mutation } in &scan.records {
            max_lsn = max_lsn.max(*lsn);
            if *lsn <= snapshot_lsn {
                stats.skipped_records += 1;
                continue;
            }
            shadow.apply_to_shadow(mutation);
            stats.replayed_records += 1;
        }
        shadow.next_lsn = max_lsn + 1;
        stats.recover_nanos = started.elapsed().as_nanos() as u64;
        let recovery_trace = trace.finish();
        let inner = Arc::new(Mutex::new(shadow));
        let flusher = if let FsyncPolicy::Interval(window) = policy {
            let stop = Arc::new((Mutex::new(false), Condvar::new()));
            let thread_inner = Arc::clone(&inner);
            let thread_stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("sdb-wal-flusher".into())
                .spawn(move || flusher_loop(thread_inner, thread_stop, window))
                .ok()
                .map(|handle| (stop, handle))
        } else {
            None
        };
        Ok(StorageEngine {
            dir: dir.to_path_buf(),
            policy,
            inner,
            recovery: stats,
            recovery_trace,
            flusher,
            metrics: std::sync::OnceLock::new(),
        })
    }

    /// Attach the metrics registry that receives `wal.append` /
    /// `wal.fsync` latency distributions. Later calls are ignored (the
    /// engine is shared by every session of a process).
    pub fn attach_metrics(&self, metrics: Arc<obs::MetricsRegistry>) {
        let _ = self.metrics.set(metrics);
    }

    /// The data directory this engine owns.
    pub fn data_dir(&self) -> &Path {
        &self.dir
    }

    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Recovery outcome, frozen at open.
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// The `recover` stage tree recorded while opening.
    pub fn recovery_trace(&self) -> &QueryTrace {
        &self.recovery_trace
    }

    /// True when `name` is a table or view in the durable (shadow)
    /// catalog — possibly committed by another connection after this
    /// one hydrated. The catalog consults this before `CREATE`.
    pub fn relation_exists(&self, name: &str) -> bool {
        let inner = lock(&self.inner);
        inner.tables.contains_key(name) || inner.views.contains_key(name)
    }

    /// Populate a fresh session catalog from the shadow catalog
    /// (`Arc` clones — no row copies). Call *before* attaching the
    /// engine as the durability hook so hydration is not re-logged.
    pub fn hydrate(&self, db: &mut Database) -> Result<()> {
        let inner = lock(&self.inner);
        let mut muts: Vec<CatalogMutation> = Vec::new();
        let mut tables: Vec<(&String, &TableRef)> = inner.tables.iter().collect();
        tables.sort_by(|a, b| a.0.cmp(b.0));
        for (name, t) in tables {
            muts.push(CatalogMutation::CreateTable { name: name.clone(), table: t.clone() });
        }
        let mut views: Vec<(&String, &String)> = inner.views.iter().collect();
        views.sort_by(|a, b| a.0.cmp(b.0));
        for (name, sql) in views {
            muts.push(CatalogMutation::CreateView { name: name.clone(), sql: sql.clone() });
        }
        drop(inner);
        for m in muts {
            m.apply(db)?;
        }
        Ok(())
    }

    /// Group commit: flush one statement's mutation batch as one
    /// contiguous WAL write, fsyncing per the policy. The batch is
    /// validated against the shadow catalog *before* anything reaches
    /// the log — a cross-connection conflict (duplicate `CREATE
    /// TABLE`, appends to a dropped table or against a diverged
    /// schema) fails the commit and leaves both the WAL and the shadow
    /// untouched. Returns `(records written, nanos spent)` for the
    /// `wal.append` stage.
    pub fn commit_batch(&self, batch: Vec<CatalogMutation>) -> Result<(u64, u64)> {
        let mut inner = lock(&self.inner);
        inner.check_poisoned()?;
        if batch.is_empty() {
            // Even an effect-free statement enforces the interval
            // deadline, so a trickle of reads still flushes the tail.
            inner.sync_if_due(self.policy)?;
            return Ok((0, 0));
        }
        let started = Instant::now();
        // Validate into a scratch copy (cheap `Arc` clones); the real
        // shadow is swapped in only after the WAL write succeeds, so a
        // rejected or failed batch changes nothing.
        let mut tables = inner.tables.clone();
        let mut views = inner.views.clone();
        let mut lsn_batch = Vec::with_capacity(batch.len());
        for m in batch {
            apply_checked(&mut tables, &mut views, &m)?;
            let lsn = inner.next_lsn + lsn_batch.len() as u64;
            lsn_batch.push((lsn, m));
        }
        let fsync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Never => false,
            FsyncPolicy::Interval(window) => inner.last_fsync.elapsed() >= window,
        };
        let (bytes, fsync_nanos) = match inner.wal.append(&lsn_batch, fsync) {
            Ok(out) => out,
            Err(e) => {
                // A partial append leaves the file offset torn; any
                // further append could strand every record after it.
                inner.poisoned = Some(e.to_string());
                return Err(Error::eval(format!(
                    "storage: WAL append failed; engine poisoned, restart to recover: {e}"
                )));
            }
        };
        inner.next_lsn += lsn_batch.len() as u64;
        if fsync {
            inner.fsyncs += 1;
            inner.last_fsync = Instant::now();
            inner.dirty = false;
        } else {
            inner.dirty = true;
        }
        inner.tables = tables;
        inner.views = views;
        let n = lsn_batch.len() as u64;
        let nanos = started.elapsed().as_nanos() as u64;
        inner.commits += 1;
        inner.appended_records += n;
        inner.appended_bytes += bytes;
        inner.wal_append_nanos += nanos;
        if let Some(m) = self.metrics.get() {
            m.record_stage("wal.append", nanos);
            if fsync {
                m.record_stage("wal.fsync", fsync_nanos);
            }
        }
        Ok((n, nanos))
    }

    /// `CHECKPOINT`: snapshot the shadow catalog, rotate the log,
    /// prune superseded snapshots. The calling [`SessionHook`] flushes
    /// its pending batch first so the snapshot's LSN covers it. `udfs`
    /// is the checkpointing session's registered-UDF list (recorded in
    /// the snapshot for recovery reporting).
    pub fn do_checkpoint(&self, udfs: &[String], trace: Option<&Trace>) -> Result<Table> {
        let mut inner = lock(&self.inner);
        inner.check_poisoned()?;
        let started = Instant::now();
        let last_lsn = inner.next_lsn - 1;
        let mut tables: Vec<(String, TableRef)> =
            inner.tables.iter().map(|(n, t)| (n.clone(), t.clone())).collect();
        tables.sort_by(|a, b| a.0.cmp(&b.0));
        let mut views: Vec<(String, String)> =
            inner.views.iter().map(|(n, s)| (n.clone(), s.clone())).collect();
        views.sort_by(|a, b| a.0.cmp(&b.0));

        let (path, bytes) = if let Some(tr) = trace {
            tr.time("checkpoint.snapshot", || {
                snapshot::write_snapshot_parts(&self.dir, last_lsn, &tables, &views, udfs)
            })?
        } else {
            snapshot::write_snapshot_parts(&self.dir, last_lsn, &tables, &views, udfs)?
        };
        // The snapshot is durably in place; the log can restart empty
        // (replay skips LSN ≤ snapshot anyway, so a crash between the
        // rename above and this truncation is safe).
        if let Some(tr) = trace {
            tr.time("checkpoint.rotate", || inner.wal.rotate())?;
        } else {
            inner.wal.rotate()?;
        }
        inner.dirty = false;
        snapshot::prune_snapshots(&self.dir, last_lsn);
        inner.last_checkpoint_lsn = last_lsn;
        inner.checkpoints += 1;
        inner.snapshots_written += 1;
        inner.last_snapshot_bytes = bytes;
        let nanos = started.elapsed().as_nanos() as u64;
        Ok(Table::from_rows(
            &["checkpoint_lsn", "snapshot_file", "snapshot_bytes", "tables", "views", "ms"],
            vec![vec![
                Value::Int(last_lsn as i64),
                Value::text(path.to_string_lossy()),
                Value::Int(bytes as i64),
                Value::Int(tables.len() as i64),
                Value::Int(views.len() as i64),
                Value::Float(nanos as f64 / 1_000_000.0),
            ]],
        ))
    }

    #[cfg(test)]
    fn poison_for_test(&self, why: &str) {
        lock(&self.inner).poisoned = Some(why.to_string());
    }

    /// Column names of the `sdb_storage` relation.
    pub const STATUS_COLUMNS: [&'static str; 18] = [
        "data_dir",
        "fsync_policy",
        "wal_bytes",
        "wal_records",
        "last_lsn",
        "last_checkpoint_lsn",
        "commits",
        "fsyncs",
        "wal_append_ms",
        "checkpoints",
        "snapshot_bytes",
        "recovered_snapshot_lsn",
        "recovered_replayed",
        "recovered_skipped",
        "recovered_truncated_bytes",
        "recovered_torn_reason",
        "recover_ms",
        "poisoned",
    ];

    /// The `sdb_storage` relation with no rows — the shape served when
    /// no storage engine is attached (ephemeral sessions).
    pub fn status_schema_table() -> Table {
        Table::from_rows(&Self::STATUS_COLUMNS, Vec::new())
    }

    /// One-row relation backing the `sdb_storage` virtual table.
    pub fn status_table(&self) -> Table {
        let inner = lock(&self.inner);
        let r = &self.recovery;
        Table::from_rows(
            &Self::STATUS_COLUMNS,
            vec![vec![
                Value::text(self.dir.to_string_lossy()),
                Value::text(self.policy.label()),
                Value::Int(inner.wal.bytes() as i64),
                Value::Int(inner.wal.records() as i64),
                Value::Int((inner.next_lsn - 1) as i64),
                Value::Int(inner.last_checkpoint_lsn as i64),
                Value::Int(inner.commits as i64),
                Value::Int(inner.fsyncs as i64),
                Value::Float(inner.wal_append_nanos as f64 / 1_000_000.0),
                Value::Int(inner.checkpoints as i64),
                Value::Int(inner.last_snapshot_bytes as i64),
                Value::Int(r.snapshot_lsn as i64),
                Value::Int(r.replayed_records as i64),
                Value::Int(r.skipped_records as i64),
                Value::Int(r.truncated_bytes as i64),
                match &r.torn_reason {
                    Some(reason) => Value::text(reason),
                    None => Value::Null,
                },
                Value::Float(r.recover_nanos as f64 / 1_000_000.0),
                match &inner.poisoned {
                    Some(why) => Value::text(why),
                    None => Value::Null,
                },
            ]],
        )
    }

    /// A `wal.append` stage for the most useful unit: one commit call.
    pub fn append_stage(records: u64, nanos: u64) -> Stage {
        let mut s = Stage::leaf("wal.append", nanos);
        s.rows = Some(records);
        s
    }
}

impl Drop for StorageEngine {
    fn drop(&mut self) {
        if let Some((stop, handle)) = self.flusher.take() {
            let (flag, cvar) = &*stop;
            *flag.lock().unwrap_or_else(|e| e.into_inner()) = true;
            cvar.notify_all();
            let _ = handle.join();
        }
        // Clean shutdown under the interval policy: sync the unsynced
        // tail so a stopped server never depends on OS writeback.
        // (`never` means never — shutdown honors it too.)
        if matches!(self.policy, FsyncPolicy::Interval(_)) {
            let mut inner = lock(&self.inner);
            if inner.poisoned.is_none() && inner.dirty && inner.wal.sync().is_ok() {
                inner.dirty = false;
                inner.fsyncs += 1;
            }
        }
    }
}

/// One session's durability hook: a private buffer of the mutations
/// the current statement committed, flushed through the shared
/// [`StorageEngine`] once per statement. Buffering per session (not in
/// the engine) keeps concurrent connections from flushing each other's
/// mid-statement mutations — a group commit covers exactly one
/// statement's records, so a crash right after can never persist a
/// partial statement from a concurrent session.
pub struct SessionHook {
    engine: Arc<StorageEngine>,
    pending: Mutex<Vec<CatalogMutation>>,
}

impl SessionHook {
    pub fn new(engine: Arc<StorageEngine>) -> SessionHook {
        SessionHook { engine, pending: Mutex::new(Vec::new()) }
    }

    /// The shared engine this hook commits through.
    pub fn engine(&self) -> &Arc<StorageEngine> {
        &self.engine
    }

    /// Flush this session's pending batch as one group commit.
    pub fn commit(&self) -> Result<(u64, u64)> {
        let batch = std::mem::take(&mut *self.pending.lock().unwrap_or_else(|e| e.into_inner()));
        self.engine.commit_batch(batch)
    }
}

impl DurabilityHook for SessionHook {
    fn record(&self, mutation: CatalogMutation) {
        self.pending.lock().unwrap_or_else(|e| e.into_inner()).push(mutation);
    }

    fn checkpoint(&self, db: &Database, trace: Option<&Trace>) -> Result<Table> {
        // Flush this session's buffer so the snapshot's LSN covers it.
        self.commit()?;
        self.engine.do_checkpoint(&db.udf_names(), trace)
    }

    fn durable_relation_exists(&self, name: &str) -> bool {
        self.engine.relation_exists(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::execute_sql;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sdb-engine-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn attached_db(engine: &Arc<StorageEngine>) -> (Database, Arc<SessionHook>) {
        let mut db = Database::new();
        engine.hydrate(&mut db).unwrap();
        let hook = Arc::new(SessionHook::new(engine.clone()));
        db.set_durability_hook(hook.clone());
        (db, hook)
    }

    #[test]
    fn statements_survive_reopen() {
        let dir = tmpdir("reopen");
        {
            let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Always).unwrap());
            let (mut db, hook) = attached_db(&engine);
            execute_sql(&mut db, "CREATE TABLE t (a INT, b TEXT)").unwrap();
            execute_sql(&mut db, "INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
            execute_sql(&mut db, "CREATE VIEW v AS SELECT a FROM t WHERE b = 'y'").unwrap();
            hook.commit().unwrap();
        }
        let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Always).unwrap());
        assert_eq!(engine.recovery_stats().replayed_records, 3);
        let (mut db, _hook) = attached_db(&engine);
        let t = execute_sql(&mut db, "SELECT * FROM v").unwrap().into_table().unwrap();
        assert_eq!(t.num_rows(), 1);
        let t = execute_sql(&mut db, "SELECT count(*) FROM t").unwrap().into_table().unwrap();
        assert_eq!(t.rows[0][0], Value::Int(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rotates_and_recovery_prefers_snapshot() {
        let dir = tmpdir("ckpt");
        {
            let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Always).unwrap());
            let (mut db, hook) = attached_db(&engine);
            execute_sql(&mut db, "CREATE TABLE t (a INT)").unwrap();
            execute_sql(&mut db, "INSERT INTO t VALUES (1), (2), (3)").unwrap();
            hook.commit().unwrap();
            let status = execute_sql(&mut db, "CHECKPOINT").unwrap().into_table().unwrap();
            assert_eq!(status.num_rows(), 1);
            // Post-checkpoint writes land in the fresh log.
            execute_sql(&mut db, "INSERT INTO t VALUES (4)").unwrap();
            hook.commit().unwrap();
        }
        let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Always).unwrap());
        let r = engine.recovery_stats();
        assert!(r.snapshot_lsn > 0, "snapshot should seed recovery");
        assert_eq!(r.replayed_records, 1, "only the post-checkpoint insert replays");
        let (mut db, _hook) = attached_db(&engine);
        let t = execute_sql(&mut db, "SELECT count(*) FROM t").unwrap().into_table().unwrap();
        assert_eq!(t.rows[0][0], Value::Int(4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn update_delete_and_drop_replay() {
        let dir = tmpdir("dml");
        {
            let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Never).unwrap());
            let (mut db, hook) = attached_db(&engine);
            for sql in [
                "CREATE TABLE t (a INT, b TEXT)",
                "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')",
                "UPDATE t SET b = 'yy' WHERE a = 2",
                "DELETE FROM t WHERE a = 1",
                "CREATE TABLE gone (g INT)",
                "DROP TABLE gone",
            ] {
                execute_sql(&mut db, sql).unwrap();
                hook.commit().unwrap();
            }
        }
        let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Never).unwrap());
        let (mut db, _hook) = attached_db(&engine);
        let t =
            execute_sql(&mut db, "SELECT a, b FROM t ORDER BY a").unwrap().into_table().unwrap();
        assert_eq!(
            t.rows,
            vec![vec![Value::Int(2), Value::text("yy")], vec![Value::Int(3), Value::text("z")],]
        );
        assert!(execute_sql(&mut db, "SELECT * FROM gone").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policy_parse() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("interval:250").unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(250))
        );
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::parse("interval:250").unwrap().label(), "interval:250");
    }

    #[test]
    fn status_table_reports_counters() {
        let dir = tmpdir("status");
        let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Always).unwrap());
        let (mut db, hook) = attached_db(&engine);
        execute_sql(&mut db, "CREATE TABLE t (a INT)").unwrap();
        hook.commit().unwrap();
        let s = engine.status_table();
        assert_eq!(s.num_rows(), 1);
        let col = |name: &str| {
            let i = s.schema.index_of(name).unwrap();
            s.rows[0][i].clone()
        };
        assert_eq!(col("commits"), Value::Int(1));
        assert_eq!(col("fsyncs"), Value::Int(1));
        assert_eq!(col("wal_records"), Value::Int(1));
        assert_eq!(col("fsync_policy"), Value::text("always"));
        assert_eq!(col("poisoned"), Value::Null);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Two connections with private catalogs share one durable truth:
    /// a second CREATE TABLE of the same name is rejected at statement
    /// level (stale hydration) and at commit level (race), so the
    /// shadow catalog can never mix two sessions' schemas.
    #[test]
    fn cross_session_create_table_conflict_is_rejected() {
        let dir = tmpdir("conflict");
        let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Never).unwrap());
        // Both sessions hydrate an empty catalog.
        let (mut db1, hook1) = attached_db(&engine);
        let (mut db2, hook2) = attached_db(&engine);

        execute_sql(&mut db1, "CREATE TABLE t (a INT)").unwrap();
        hook1.commit().unwrap();

        // Statement-level: session 2's private catalog has no `t`, but
        // the durable pre-check sees session 1's committed one.
        let err = execute_sql(&mut db2, "CREATE TABLE t (b TEXT, c INT)").unwrap_err();
        assert!(err.to_string().contains("durable catalog"), "unexpected error: {err}");
        // IF NOT EXISTS downgrades the durable conflict to a no-op too.
        execute_sql(&mut db2, "CREATE TABLE IF NOT EXISTS t (b TEXT, c INT)").unwrap();
        assert_eq!(hook2.commit().unwrap().0, 0, "nothing to commit after rejected CREATE");

        // Commit-level (the race window): a CreateTable that slipped
        // past the pre-check still cannot reach the WAL.
        hook2.record(CatalogMutation::CreateTable {
            name: "t".into(),
            table: Arc::new(Table::from_rows(&["b", "c"], Vec::new())),
        });
        let err = hook2.commit().unwrap_err();
        assert!(err.to_string().contains("another connection"), "unexpected error: {err}");

        // The durable schema is still session 1's, for new sessions
        // and across a restart.
        drop((db1, db2, hook1, hook2));
        drop(engine);
        let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Never).unwrap());
        let (mut db3, _hook3) = attached_db(&engine);
        let t = execute_sql(&mut db3, "SELECT * FROM t").unwrap().into_table().unwrap();
        assert_eq!(t.schema.len(), 1, "durable schema must be the first CREATE's");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An INSERT whose target was dropped (or reshaped) by another
    /// connection errors at commit instead of corrupting the shadow.
    #[test]
    fn append_after_cross_session_drop_is_rejected() {
        let dir = tmpdir("appendconflict");
        let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Never).unwrap());
        let (mut db1, hook1) = attached_db(&engine);
        execute_sql(&mut db1, "CREATE TABLE t (a INT)").unwrap();
        hook1.commit().unwrap();

        // Session 2 hydrates with `t` present...
        let (mut db2, hook2) = attached_db(&engine);
        // ...then session 1 drops it durably.
        execute_sql(&mut db1, "DROP TABLE t").unwrap();
        hook1.commit().unwrap();

        // Session 2's private catalog still has `t`; the insert
        // succeeds in memory but must not commit durably.
        execute_sql(&mut db2, "INSERT INTO t VALUES (7)").unwrap();
        let err = hook2.commit().unwrap_err();
        assert!(err.to_string().contains("dropped by another connection"), "got: {err}");

        // Arity divergence is likewise rejected: a raw AppendRows with
        // the wrong width against a live durable table.
        execute_sql(&mut db1, "CREATE TABLE u (a INT, b INT)").unwrap();
        hook1.commit().unwrap();
        hook2.record(CatalogMutation::AppendRows {
            name: "u".into(),
            rows: vec![vec![Value::Int(1)]],
        });
        let err = hook2.commit().unwrap_err();
        assert!(err.to_string().contains("columns"), "got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The interval policy's bounded-loss window is enforced even when
    /// no further commits arrive: the background flusher syncs the
    /// tail once the window expires.
    #[test]
    fn interval_deadline_fsyncs_idle_tail() {
        let dir = tmpdir("interval");
        let engine = Arc::new(
            StorageEngine::open(&dir, FsyncPolicy::Interval(Duration::from_millis(25))).unwrap(),
        );
        let (mut db, hook) = attached_db(&engine);
        execute_sql(&mut db, "CREATE TABLE t (a INT)").unwrap();
        hook.commit().unwrap();
        // No more commits: the flusher must sync within the window
        // (generous deadline to absorb scheduler noise).
        let fsyncs = |engine: &StorageEngine| {
            let s = engine.status_table();
            let i = s.schema.index_of("fsyncs").unwrap();
            match s.rows[0][i] {
                Value::Int(n) => n,
                _ => panic!("fsyncs not an int"),
            }
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        while fsyncs(&engine) == 0 {
            assert!(Instant::now() < deadline, "flusher never synced the idle tail");
            std::thread::sleep(Duration::from_millis(10));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// After a WAL I/O failure the engine refuses further commits and
    /// checkpoints instead of durably persisting a log with a hole.
    #[test]
    fn poisoned_engine_refuses_commits_and_checkpoints() {
        let dir = tmpdir("poison");
        let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Always).unwrap());
        let (mut db, hook) = attached_db(&engine);
        execute_sql(&mut db, "CREATE TABLE t (a INT)").unwrap();
        hook.commit().unwrap();
        engine.poison_for_test("simulated append failure");

        execute_sql(&mut db, "INSERT INTO t VALUES (1)").unwrap();
        let err = hook.commit().unwrap_err();
        assert!(err.to_string().contains("poisoned"), "got: {err}");
        let err = engine.do_checkpoint(&[], None).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "got: {err}");
        let s = engine.status_table();
        let i = s.schema.index_of("poisoned").unwrap();
        assert_eq!(s.rows[0][i], Value::text("simulated append failure"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
