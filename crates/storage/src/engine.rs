//! The storage engine: group-commit WAL appends, checkpointing, crash
//! recovery, and the shadow catalog that hydrates new sessions.
//!
//! One [`StorageEngine`] owns a data directory holding `wal.log` plus
//! `snapshot-<lsn>.sdb` files. Sessions attach it as the catalog's
//! [`DurabilityHook`]: every committed mutation is buffered, and the
//! session calls [`StorageEngine::commit`] once per statement — all of
//! a statement's records go to the log in one contiguous write (group
//! commit), with at most one fsync as the [`FsyncPolicy`] dictates.
//!
//! The engine also maintains a *shadow catalog* — the durable tables
//! and views as of the last commit — so that (a) `CHECKPOINT` can
//! snapshot the full durable state even when the calling session's
//! private catalog predates other sessions' writes, and (b) new
//! sessions hydrate from memory without re-reading the log.

use crate::record::Record;
use crate::snapshot::{self, SnapshotData};
use crate::wal::Wal;
use obs::{QueryTrace, Stage, Trace};
use sqlengine::catalog::{CatalogMutation, Database, DurabilityHook};
use sqlengine::error::{Error, Result};
use sqlengine::table::{Table, TableRef};
use sqlengine::types::Value;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// When (if ever) WAL appends reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every group commit — survives power loss.
    Always,
    /// fsync at most once per the given window — bounded data loss,
    /// near-`Never` throughput.
    Interval(Duration),
    /// Never fsync — the OS page cache decides; survives process
    /// crashes (SIGKILL) but not power loss.
    Never,
}

impl FsyncPolicy {
    /// Parse `always` / `never` / `interval` / `interval:<ms>`.
    pub fn parse(s: &str) -> Result<FsyncPolicy> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "interval" => Ok(FsyncPolicy::Interval(Duration::from_millis(100))),
            other => {
                if let Some(ms) = other.strip_prefix("interval:") {
                    let ms: u64 = ms.parse().map_err(|_| {
                        Error::eval(format!("invalid fsync interval '{ms}' (want milliseconds)"))
                    })?;
                    return Ok(FsyncPolicy::Interval(Duration::from_millis(ms)));
                }
                Err(Error::eval(format!(
                    "unknown fsync policy '{other}' (want always | interval[:ms] | never)"
                )))
            }
        }
    }

    /// Canonical rendering (shown in `sdb_storage`).
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::Interval(d) => format!("interval:{}", d.as_millis()),
            FsyncPolicy::Never => "never".to_string(),
        }
    }
}

/// What recovery found and did, frozen at open time.
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    /// LSN of the snapshot that seeded recovery (0 = none found).
    pub snapshot_lsn: u64,
    /// Tables / views restored from the snapshot.
    pub snapshot_tables: u64,
    pub snapshot_views: u64,
    /// UDF names the snapshot recorded (informational — UDFs are code,
    /// re-registered by the session at startup).
    pub snapshot_udfs: Vec<String>,
    /// WAL records replayed (LSN > snapshot LSN).
    pub replayed_records: u64,
    /// WAL records skipped because the snapshot already covered them.
    pub skipped_records: u64,
    /// Bytes of torn WAL tail truncated at open.
    pub truncated_bytes: u64,
    /// Why the tail was torn, when it was.
    pub torn_reason: Option<String>,
    /// Snapshots that failed validation and were passed over.
    pub rejected_snapshots: Vec<(String, String)>,
    /// Wall-clock nanos spent recovering.
    pub recover_nanos: u64,
}

/// Mutable engine state behind one lock: the log, the commit buffer,
/// the shadow catalog, and cumulative counters.
struct EngineInner {
    wal: Wal,
    /// Mutations recorded since the last [`StorageEngine::commit`].
    pending: Vec<CatalogMutation>,
    next_lsn: u64,
    last_checkpoint_lsn: u64,
    /// Shadow catalog: durable tables/views as of the last commit.
    tables: HashMap<String, TableRef>,
    views: HashMap<String, String>,
    /// Cumulative counters (surfaced in `sdb_storage`).
    commits: u64,
    fsyncs: u64,
    appended_records: u64,
    appended_bytes: u64,
    wal_append_nanos: u64,
    checkpoints: u64,
    snapshots_written: u64,
    last_snapshot_bytes: u64,
    last_fsync: Instant,
}

impl EngineInner {
    fn apply_to_shadow(&mut self, m: &CatalogMutation) {
        match m {
            CatalogMutation::CreateTable { name, table }
            | CatalogMutation::PutTable { name, table } => {
                self.tables.insert(name.clone(), table.clone());
            }
            CatalogMutation::DropTable { name } => {
                self.tables.remove(name);
            }
            CatalogMutation::AppendRows { name, rows } => {
                if let Some(t) = self.tables.get_mut(name) {
                    Arc::make_mut(t).rows.extend(rows.iter().cloned());
                }
            }
            CatalogMutation::CreateView { name, sql } => {
                self.views.insert(name.clone(), sql.clone());
            }
            CatalogMutation::DropView { name } => {
                self.views.remove(name);
            }
        }
    }
}

/// The durable storage engine for one data directory.
pub struct StorageEngine {
    dir: PathBuf,
    policy: FsyncPolicy,
    inner: Mutex<EngineInner>,
    recovery: RecoveryStats,
    recovery_trace: QueryTrace,
}

fn lock(inner: &Mutex<EngineInner>) -> MutexGuard<'_, EngineInner> {
    // A poisoning panic cannot leave the byte-level state torn worse
    // than a crash would, and recovery handles crashes; keep serving.
    inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl StorageEngine {
    /// Open a data directory: load the newest valid snapshot, replay
    /// the WAL tail (truncating a torn final record), and position the
    /// log for appends. Records the `recover` stage tree.
    pub fn open(dir: &Path, policy: FsyncPolicy) -> Result<StorageEngine> {
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::eval(format!("storage: create data dir: {e}")))?;
        let started = Instant::now();
        let trace = Trace::new();
        trace.set_label("RECOVER");
        let mut stats = RecoveryStats::default();
        let mut tables: HashMap<String, TableRef> = HashMap::new();
        let mut views: HashMap<String, String> = HashMap::new();

        // Phase 1: newest valid snapshot.
        let snap: Option<SnapshotData> = trace.time("recover.snapshot", || {
            let mut rejected = Vec::new();
            let s = snapshot::load_latest(dir, &mut rejected);
            stats.rejected_snapshots = rejected;
            s
        });
        if let Some(snap) = &snap {
            stats.snapshot_lsn = snap.last_lsn;
            stats.snapshot_tables = snap.tables.len() as u64;
            stats.snapshot_views = snap.views.len() as u64;
            stats.snapshot_udfs = snap.udfs.clone();
            for (name, t) in &snap.tables {
                tables.insert(name.clone(), t.clone());
            }
            for (name, sql) in &snap.views {
                views.insert(name.clone(), sql.clone());
            }
        }
        let snapshot_lsn = stats.snapshot_lsn;

        // Phase 2: WAL tail. Records the snapshot already covers are
        // skipped; a torn final record was truncated by `Wal::open`.
        let (wal, scan) = trace.time("recover.wal", || Wal::open(&dir.join("wal.log")))?;
        stats.truncated_bytes = scan.truncated_bytes;
        stats.torn_reason = scan.torn_reason.clone();
        let mut shadow = EngineInner {
            wal,
            pending: Vec::new(),
            next_lsn: 1,
            last_checkpoint_lsn: snapshot_lsn,
            tables,
            views,
            commits: 0,
            fsyncs: 0,
            appended_records: 0,
            appended_bytes: 0,
            wal_append_nanos: 0,
            checkpoints: 0,
            snapshots_written: 0,
            last_snapshot_bytes: 0,
            last_fsync: Instant::now(),
        };
        let mut max_lsn = snapshot_lsn;
        for Record { lsn, mutation } in &scan.records {
            max_lsn = max_lsn.max(*lsn);
            if *lsn <= snapshot_lsn {
                stats.skipped_records += 1;
                continue;
            }
            shadow.apply_to_shadow(mutation);
            stats.replayed_records += 1;
        }
        shadow.next_lsn = max_lsn + 1;
        stats.recover_nanos = started.elapsed().as_nanos() as u64;
        let recovery_trace = trace.finish();
        Ok(StorageEngine {
            dir: dir.to_path_buf(),
            policy,
            inner: Mutex::new(shadow),
            recovery: stats,
            recovery_trace,
        })
    }

    /// The data directory this engine owns.
    pub fn data_dir(&self) -> &Path {
        &self.dir
    }

    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Recovery outcome, frozen at open.
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// The `recover` stage tree recorded while opening.
    pub fn recovery_trace(&self) -> &QueryTrace {
        &self.recovery_trace
    }

    /// Populate a fresh session catalog from the shadow catalog
    /// (`Arc` clones — no row copies). Call *before* attaching the
    /// engine as the durability hook so hydration is not re-logged.
    pub fn hydrate(&self, db: &mut Database) -> Result<()> {
        let inner = lock(&self.inner);
        let mut muts: Vec<CatalogMutation> = Vec::new();
        let mut tables: Vec<(&String, &TableRef)> = inner.tables.iter().collect();
        tables.sort_by(|a, b| a.0.cmp(b.0));
        for (name, t) in tables {
            muts.push(CatalogMutation::CreateTable { name: name.clone(), table: t.clone() });
        }
        let mut views: Vec<(&String, &String)> = inner.views.iter().collect();
        views.sort_by(|a, b| a.0.cmp(b.0));
        for (name, sql) in views {
            muts.push(CatalogMutation::CreateView { name: name.clone(), sql: sql.clone() });
        }
        drop(inner);
        for m in muts {
            m.apply(db)?;
        }
        Ok(())
    }

    /// Group commit: flush every mutation recorded since the last call
    /// as one contiguous WAL write, fsyncing per the policy. Returns
    /// `(records written, nanos spent)` for the `wal.append` stage.
    pub fn commit(&self) -> Result<(u64, u64)> {
        let mut inner = lock(&self.inner);
        if inner.pending.is_empty() {
            return Ok((0, 0));
        }
        let started = Instant::now();
        let pending = std::mem::take(&mut inner.pending);
        let mut batch = Vec::with_capacity(pending.len());
        for m in pending {
            let lsn = inner.next_lsn;
            inner.next_lsn += 1;
            batch.push((lsn, m));
        }
        let fsync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Never => false,
            FsyncPolicy::Interval(window) => inner.last_fsync.elapsed() >= window,
        };
        let bytes = inner.wal.append(&batch, fsync)?;
        if fsync {
            inner.fsyncs += 1;
            inner.last_fsync = Instant::now();
        }
        for (_, m) in &batch {
            inner.apply_to_shadow(m);
        }
        let n = batch.len() as u64;
        let nanos = started.elapsed().as_nanos() as u64;
        inner.commits += 1;
        inner.appended_records += n;
        inner.appended_bytes += bytes;
        inner.wal_append_nanos += nanos;
        Ok((n, nanos))
    }

    /// `CHECKPOINT`: commit anything pending, snapshot the shadow
    /// catalog, rotate the log, prune superseded snapshots. `udfs` is
    /// the checkpointing session's registered-UDF list (recorded in the
    /// snapshot for recovery reporting).
    pub fn do_checkpoint(&self, udfs: &[String], trace: Option<&Trace>) -> Result<Table> {
        // Flush the commit buffer so the snapshot's LSN covers it.
        self.commit()?;
        let mut inner = lock(&self.inner);
        let started = Instant::now();
        let last_lsn = inner.next_lsn - 1;
        let mut tables: Vec<(String, TableRef)> =
            inner.tables.iter().map(|(n, t)| (n.clone(), t.clone())).collect();
        tables.sort_by(|a, b| a.0.cmp(&b.0));
        let mut views: Vec<(String, String)> =
            inner.views.iter().map(|(n, s)| (n.clone(), s.clone())).collect();
        views.sort_by(|a, b| a.0.cmp(&b.0));

        let (path, bytes) = if let Some(tr) = trace {
            tr.time("checkpoint.snapshot", || {
                snapshot::write_snapshot_parts(&self.dir, last_lsn, &tables, &views, udfs)
            })?
        } else {
            snapshot::write_snapshot_parts(&self.dir, last_lsn, &tables, &views, udfs)?
        };
        // The snapshot is durably in place; the log can restart empty
        // (replay skips LSN ≤ snapshot anyway, so a crash between the
        // rename above and this truncation is safe).
        if let Some(tr) = trace {
            tr.time("checkpoint.rotate", || inner.wal.rotate())?;
        } else {
            inner.wal.rotate()?;
        }
        snapshot::prune_snapshots(&self.dir, last_lsn);
        inner.last_checkpoint_lsn = last_lsn;
        inner.checkpoints += 1;
        inner.snapshots_written += 1;
        inner.last_snapshot_bytes = bytes;
        let nanos = started.elapsed().as_nanos() as u64;
        Ok(Table::from_rows(
            &["checkpoint_lsn", "snapshot_file", "snapshot_bytes", "tables", "views", "ms"],
            vec![vec![
                Value::Int(last_lsn as i64),
                Value::text(path.to_string_lossy()),
                Value::Int(bytes as i64),
                Value::Int(tables.len() as i64),
                Value::Int(views.len() as i64),
                Value::Float(nanos as f64 / 1_000_000.0),
            ]],
        ))
    }

    /// Column names of the `sdb_storage` relation.
    pub const STATUS_COLUMNS: [&'static str; 17] = [
        "data_dir",
        "fsync_policy",
        "wal_bytes",
        "wal_records",
        "last_lsn",
        "last_checkpoint_lsn",
        "commits",
        "fsyncs",
        "wal_append_ms",
        "checkpoints",
        "snapshot_bytes",
        "recovered_snapshot_lsn",
        "recovered_replayed",
        "recovered_skipped",
        "recovered_truncated_bytes",
        "recovered_torn_reason",
        "recover_ms",
    ];

    /// The `sdb_storage` relation with no rows — the shape served when
    /// no storage engine is attached (ephemeral sessions).
    pub fn status_schema_table() -> Table {
        Table::from_rows(&Self::STATUS_COLUMNS, Vec::new())
    }

    /// One-row relation backing the `sdb_storage` virtual table.
    pub fn status_table(&self) -> Table {
        let inner = lock(&self.inner);
        let r = &self.recovery;
        Table::from_rows(
            &Self::STATUS_COLUMNS,
            vec![vec![
                Value::text(self.dir.to_string_lossy()),
                Value::text(self.policy.label()),
                Value::Int(inner.wal.bytes() as i64),
                Value::Int(inner.wal.records() as i64),
                Value::Int((inner.next_lsn - 1) as i64),
                Value::Int(inner.last_checkpoint_lsn as i64),
                Value::Int(inner.commits as i64),
                Value::Int(inner.fsyncs as i64),
                Value::Float(inner.wal_append_nanos as f64 / 1_000_000.0),
                Value::Int(inner.checkpoints as i64),
                Value::Int(inner.last_snapshot_bytes as i64),
                Value::Int(r.snapshot_lsn as i64),
                Value::Int(r.replayed_records as i64),
                Value::Int(r.skipped_records as i64),
                Value::Int(r.truncated_bytes as i64),
                match &r.torn_reason {
                    Some(reason) => Value::text(reason),
                    None => Value::Null,
                },
                Value::Float(r.recover_nanos as f64 / 1_000_000.0),
            ]],
        )
    }

    /// A `wal.append` stage for the most useful unit: one commit call.
    pub fn append_stage(records: u64, nanos: u64) -> Stage {
        let mut s = Stage::leaf("wal.append", nanos);
        s.rows = Some(records);
        s
    }
}

impl DurabilityHook for StorageEngine {
    fn record(&self, mutation: CatalogMutation) {
        lock(&self.inner).pending.push(mutation);
    }

    fn checkpoint(&self, db: &Database, trace: Option<&Trace>) -> Result<Table> {
        self.do_checkpoint(&db.udf_names(), trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::execute_sql;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sdb-engine-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn attached_db(engine: &Arc<StorageEngine>) -> Database {
        let mut db = Database::new();
        engine.hydrate(&mut db).unwrap();
        db.set_durability_hook(engine.clone());
        db
    }

    #[test]
    fn statements_survive_reopen() {
        let dir = tmpdir("reopen");
        {
            let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Always).unwrap());
            let mut db = attached_db(&engine);
            execute_sql(&mut db, "CREATE TABLE t (a INT, b TEXT)").unwrap();
            execute_sql(&mut db, "INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
            execute_sql(&mut db, "CREATE VIEW v AS SELECT a FROM t WHERE b = 'y'").unwrap();
            engine.commit().unwrap();
        }
        let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Always).unwrap());
        assert_eq!(engine.recovery_stats().replayed_records, 3);
        let mut db = attached_db(&engine);
        let t = execute_sql(&mut db, "SELECT * FROM v").unwrap().into_table().unwrap();
        assert_eq!(t.num_rows(), 1);
        let t = execute_sql(&mut db, "SELECT count(*) FROM t").unwrap().into_table().unwrap();
        assert_eq!(t.rows[0][0], Value::Int(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rotates_and_recovery_prefers_snapshot() {
        let dir = tmpdir("ckpt");
        {
            let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Always).unwrap());
            let mut db = attached_db(&engine);
            execute_sql(&mut db, "CREATE TABLE t (a INT)").unwrap();
            execute_sql(&mut db, "INSERT INTO t VALUES (1), (2), (3)").unwrap();
            engine.commit().unwrap();
            let status = execute_sql(&mut db, "CHECKPOINT").unwrap().into_table().unwrap();
            assert_eq!(status.num_rows(), 1);
            // Post-checkpoint writes land in the fresh log.
            execute_sql(&mut db, "INSERT INTO t VALUES (4)").unwrap();
            engine.commit().unwrap();
        }
        let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Always).unwrap());
        let r = engine.recovery_stats();
        assert!(r.snapshot_lsn > 0, "snapshot should seed recovery");
        assert_eq!(r.replayed_records, 1, "only the post-checkpoint insert replays");
        let mut db = attached_db(&engine);
        let t = execute_sql(&mut db, "SELECT count(*) FROM t").unwrap().into_table().unwrap();
        assert_eq!(t.rows[0][0], Value::Int(4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn update_delete_and_drop_replay() {
        let dir = tmpdir("dml");
        {
            let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Never).unwrap());
            let mut db = attached_db(&engine);
            for sql in [
                "CREATE TABLE t (a INT, b TEXT)",
                "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')",
                "UPDATE t SET b = 'yy' WHERE a = 2",
                "DELETE FROM t WHERE a = 1",
                "CREATE TABLE gone (g INT)",
                "DROP TABLE gone",
            ] {
                execute_sql(&mut db, sql).unwrap();
                engine.commit().unwrap();
            }
        }
        let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Never).unwrap());
        let mut db = attached_db(&engine);
        let t =
            execute_sql(&mut db, "SELECT a, b FROM t ORDER BY a").unwrap().into_table().unwrap();
        assert_eq!(
            t.rows,
            vec![vec![Value::Int(2), Value::text("yy")], vec![Value::Int(3), Value::text("z")],]
        );
        assert!(execute_sql(&mut db, "SELECT * FROM gone").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policy_parse() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("interval:250").unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(250))
        );
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::parse("interval:250").unwrap().label(), "interval:250");
    }

    #[test]
    fn status_table_reports_counters() {
        let dir = tmpdir("status");
        let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Always).unwrap());
        let mut db = attached_db(&engine);
        execute_sql(&mut db, "CREATE TABLE t (a INT)").unwrap();
        engine.commit().unwrap();
        let s = engine.status_table();
        assert_eq!(s.num_rows(), 1);
        let col = |name: &str| {
            let i = s.schema.index_of(name).unwrap();
            s.rows[0][i].clone()
        };
        assert_eq!(col("commits"), Value::Int(1));
        assert_eq!(col("fsyncs"), Value::Int(1));
        assert_eq!(col("wal_records"), Value::Int(1));
        assert_eq!(col("fsync_policy"), Value::text("always"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
