//! WAL record encoding: logical catalog mutations framed with a length
//! prefix and CRC-32 checksum.
//!
//! ```text
//! frame   := len:u32 crc:u32 body[len]        (crc = CRC-32 of body)
//! body    := lsn:u64 kind:u8 payload
//! payload :=
//!   kind 0x01 CREATE_TABLE  name:str table        (wire table encoding)
//!   kind 0x02 DROP_TABLE    name:str
//!   kind 0x03 PUT_TABLE     name:str table
//!   kind 0x04 APPEND_ROWS   name:str nrows:u32 (ncols:u16 value*)*
//!   kind 0x05 CREATE_VIEW   name:str sql:str
//!   kind 0x06 DROP_VIEW     name:str
//! str     := len:u32 utf8[len]
//! ```
//!
//! All integers are little-endian, matching the `sqlengine::wire`
//! codec the payloads reuse. Decoding is defensive — truncation, bad
//! tags and absurd lengths error rather than panic — because recovery
//! feeds it arbitrary torn file tails.

use crate::crc::crc32;
use sqlengine::catalog::CatalogMutation;
use sqlengine::error::{Error, Result};
use sqlengine::table::Row;
use sqlengine::wire::{self, Reader};
use std::sync::Arc;

/// Upper bound for one record body (64 MiB) — rejects absurd length
/// prefixes before any allocation.
pub const MAX_RECORD_LEN: u32 = 64 << 20;

/// Fixed bytes of framing before the body.
pub const FRAME_HEADER_LEN: usize = 8;

mod kind {
    pub const CREATE_TABLE: u8 = 0x01;
    pub const DROP_TABLE: u8 = 0x02;
    pub const PUT_TABLE: u8 = 0x03;
    pub const APPEND_ROWS: u8 = 0x04;
    pub const CREATE_VIEW: u8 = 0x05;
    pub const DROP_VIEW: u8 = 0x06;
}

fn err(msg: impl Into<String>) -> Error {
    Error::eval(format!("wal: {}", msg.into()))
}

/// One decoded WAL record.
#[derive(Debug, Clone)]
pub struct Record {
    pub lsn: u64,
    pub mutation: CatalogMutation,
}

/// Append the full frame (header + body) for one mutation.
pub fn encode_record(lsn: u64, mutation: &CatalogMutation, out: &mut Vec<u8>) {
    let mut body = Vec::with_capacity(64);
    body.extend_from_slice(&lsn.to_le_bytes());
    match mutation {
        CatalogMutation::CreateTable { name, table } => {
            body.push(kind::CREATE_TABLE);
            wire::put_str(&mut body, name);
            body.extend_from_slice(&wire::encode_table(table));
        }
        CatalogMutation::DropTable { name } => {
            body.push(kind::DROP_TABLE);
            wire::put_str(&mut body, name);
        }
        CatalogMutation::PutTable { name, table } => {
            body.push(kind::PUT_TABLE);
            wire::put_str(&mut body, name);
            body.extend_from_slice(&wire::encode_table(table));
        }
        CatalogMutation::AppendRows { name, rows } => {
            body.push(kind::APPEND_ROWS);
            wire::put_str(&mut body, name);
            body.extend_from_slice(&(rows.len() as u32).to_le_bytes());
            for row in rows {
                body.extend_from_slice(&(row.len() as u16).to_le_bytes());
                for v in row {
                    wire::encode_value(v, &mut body);
                }
            }
        }
        CatalogMutation::CreateView { name, sql } => {
            body.push(kind::CREATE_VIEW);
            wire::put_str(&mut body, name);
            wire::put_str(&mut body, sql);
        }
        CatalogMutation::DropView { name } => {
            body.push(kind::DROP_VIEW);
            wire::put_str(&mut body, name);
        }
    }
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
}

/// Decode one record body (after the frame header was validated).
pub fn decode_body(body: &[u8]) -> Result<Record> {
    let mut r = Reader::new(body);
    let lsn = r.u64()?;
    let kind = r.u8()?;
    let name = r.string()?;
    let mutation = match kind {
        kind::CREATE_TABLE => {
            let table = wire::decode_table_from(&mut r)?;
            CatalogMutation::CreateTable { name, table: Arc::new(table) }
        }
        kind::DROP_TABLE => CatalogMutation::DropTable { name },
        kind::PUT_TABLE => {
            let table = wire::decode_table_from(&mut r)?;
            CatalogMutation::PutTable { name, table: Arc::new(table) }
        }
        kind::APPEND_ROWS => {
            let nrows = r.u32()?;
            // Each row carries at least a 2-byte arity prefix.
            if (nrows as usize).saturating_mul(2) > r.remaining() {
                return Err(err("row count inconsistent with record length"));
            }
            let mut rows: Vec<Row> = Vec::with_capacity(nrows as usize);
            for _ in 0..nrows {
                let ncols = r.u16()?;
                let mut row = Vec::with_capacity(ncols as usize);
                for _ in 0..ncols {
                    row.push(wire::decode_value(&mut r)?);
                }
                rows.push(row);
            }
            CatalogMutation::AppendRows { name, rows }
        }
        kind::CREATE_VIEW => {
            let sql = r.string()?;
            CatalogMutation::CreateView { name, sql }
        }
        kind::DROP_VIEW => CatalogMutation::DropView { name },
        other => return Err(err(format!("unknown record kind 0x{other:02x}"))),
    };
    if !r.is_empty() {
        return Err(err(format!("{} trailing byte(s) in record body", r.remaining())));
    }
    Ok(Record { lsn, mutation })
}

/// Outcome of scanning one frame at `buf[offset..]`.
pub enum FrameScan {
    /// A valid record; `next` is the offset of the following frame.
    Valid { record: Record, next: usize },
    /// End of buffer exactly at a frame boundary.
    Clean,
    /// Torn or corrupt frame starting at this offset — everything from
    /// `offset` on must be truncated. The string says why.
    Torn(String),
}

/// Scan the frame starting at `offset`, validating length, checksum and
/// payload structure.
pub fn scan_frame(buf: &[u8], offset: usize) -> FrameScan {
    let rest = &buf[offset..];
    if rest.is_empty() {
        return FrameScan::Clean;
    }
    if rest.len() < FRAME_HEADER_LEN {
        return FrameScan::Torn(format!("short frame header ({} byte(s))", rest.len()));
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
    let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
    if len > MAX_RECORD_LEN {
        return FrameScan::Torn(format!("record length {len} exceeds limit {MAX_RECORD_LEN}"));
    }
    let body_end = FRAME_HEADER_LEN + len as usize;
    if rest.len() < body_end {
        return FrameScan::Torn(format!(
            "truncated body: need {len} byte(s), have {}",
            rest.len() - FRAME_HEADER_LEN
        ));
    }
    let body = &rest[FRAME_HEADER_LEN..body_end];
    if crc32(body) != crc {
        return FrameScan::Torn("checksum mismatch".to_string());
    }
    match decode_body(body) {
        Ok(record) => FrameScan::Valid { record, next: offset + body_end },
        Err(e) => FrameScan::Torn(format!("undecodable body: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::table::Table;
    use sqlengine::types::Value;

    fn sample_mutations() -> Vec<CatalogMutation> {
        let t = Arc::new(Table::from_rows(
            &["a", "b"],
            vec![vec![Value::Int(1), Value::text("x")], vec![Value::Null, Value::Float(0.5)]],
        ));
        vec![
            CatalogMutation::CreateTable { name: "t".into(), table: t.clone() },
            CatalogMutation::AppendRows {
                name: "t".into(),
                rows: vec![vec![Value::Int(2), Value::text("y")]],
            },
            CatalogMutation::PutTable { name: "t".into(), table: t },
            CatalogMutation::CreateView { name: "v".into(), sql: "SELECT a FROM t".into() },
            CatalogMutation::DropView { name: "v".into() },
            CatalogMutation::DropTable { name: "t".into() },
        ]
    }

    #[test]
    fn records_roundtrip() {
        for (i, m) in sample_mutations().into_iter().enumerate() {
            let mut buf = Vec::new();
            encode_record(i as u64 + 1, &m, &mut buf);
            match scan_frame(&buf, 0) {
                FrameScan::Valid { record, next } => {
                    assert_eq!(record.lsn, i as u64 + 1);
                    assert_eq!(next, buf.len());
                    assert_eq!(format!("{:?}", record.mutation), format!("{m:?}"));
                }
                _ => panic!("record {i} did not scan as valid"),
            }
        }
    }

    #[test]
    fn every_truncation_is_torn_not_panic() {
        let mut buf = Vec::new();
        for (i, m) in sample_mutations().into_iter().enumerate() {
            encode_record(i as u64, &m, &mut buf);
        }
        for cut in 0..buf.len() {
            let prefix = &buf[..cut];
            // Walk valid frames; the walk must terminate at Clean or Torn.
            let mut off = 0;
            while let FrameScan::Valid { next, .. } = scan_frame(prefix, off) {
                assert!(next > off, "no progress at offset {off}");
                off = next;
            }
            assert!(off <= cut);
        }
    }

    #[test]
    fn corrupt_byte_is_detected() {
        let mut buf = Vec::new();
        encode_record(7, &sample_mutations()[0], &mut buf);
        for i in FRAME_HEADER_LEN..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(scan_frame(&bad, 0), FrameScan::Torn(_)),
                "corruption at byte {i} undetected"
            );
        }
    }
}
