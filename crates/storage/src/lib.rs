//! # storage — durability subsystem for the SolveDB+ reproduction
//!
//! The catalog is in-memory and copy-on-write; this crate makes it
//! survive restarts and crashes (ROADMAP open item 2):
//!
//! * **Write-ahead log** ([`wal`]) — an append-only file of
//!   length-prefixed, CRC-32-checksummed *logical* records
//!   ([`record`]): one [`sqlengine::catalog::CatalogMutation`] per
//!   record (DDL, DML batches, solution materializations). Logging
//!   logical catalog mutations rather than SQL text means replay never
//!   re-runs a solver or UDF, so nondeterministic solves recover to
//!   exactly the rows that were committed.
//! * **Snapshots** ([`snapshot`]) — periodic atomic binary images of
//!   the full catalog (schemas, rows, views, UDF names) tagged with
//!   the last covered LSN, written by `CHECKPOINT`.
//! * **Recovery** ([`engine`]) — load the newest valid snapshot, then
//!   replay WAL records with a higher LSN; a torn final record (crash
//!   mid-write) is detected by checksum/length validation and
//!   physically truncated, leaving a prefix-consistent catalog.
//!
//! Each durable session attaches a [`SessionHook`] (the catalog's
//! `DurabilityHook`) over the shared [`StorageEngine`]: the hook
//! buffers the statement's committed mutations per session and
//! flushes them as one group-commit write, fsyncing per
//! [`FsyncPolicy`]. Commits are validated against the engine's shadow
//! catalog, so conflicting schema changes from concurrent connections
//! error instead of corrupting the durable state. Everything is
//! `std`-only (the repo vendors no I/O crates); CRC-32 is implemented
//! in [`crc`].

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod crc;
pub mod engine;
pub mod record;
pub mod snapshot;
pub mod wal;

pub use engine::{FsyncPolicy, RecoveryStats, SessionHook, StorageEngine};
pub use record::Record;
pub use snapshot::SnapshotData;
pub use wal::{Wal, WalScan};
