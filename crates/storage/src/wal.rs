//! The write-ahead log file: append-only frames, torn-tail recovery.
//!
//! A WAL is a single file (`wal.log`) of back-to-back record frames
//! (see [`crate::record`]). Opening scans the file front to back; the
//! first frame that fails validation — short header, absurd length,
//! truncated body, checksum mismatch, undecodable payload — marks the
//! torn tail, which is physically truncated so the file ends at the
//! last durable record. Everything before it replays.

use crate::record::{encode_record, scan_frame, FrameScan, Record};
use sqlengine::catalog::CatalogMutation;
use sqlengine::error::{Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

fn io_err(ctx: &str, e: std::io::Error) -> Error {
    Error::eval(format!("storage: {ctx}: {e}"))
}

/// What scanning an existing log produced.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Valid records in log order.
    pub records: Vec<Record>,
    /// Bytes of torn tail removed, 0 for a clean log.
    pub truncated_bytes: u64,
    /// Why the tail was torn (`None` for a clean log).
    pub torn_reason: Option<String>,
}

/// An open, append-positioned write-ahead log.
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Current file length (== append offset).
    bytes: u64,
    /// Records currently in the file.
    records: u64,
    /// Highest LSN present in the file (0 when empty).
    last_lsn: u64,
}

impl Wal {
    /// Open (creating if absent) and scan the log, truncating any torn
    /// tail so the file ends at the last valid record.
    pub fn open(path: &Path) -> Result<(Wal, WalScan)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err("open wal", e))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf).map_err(|e| io_err("read wal", e))?;

        let mut scan = WalScan::default();
        let mut valid = 0usize;
        loop {
            match scan_frame(&buf, valid) {
                FrameScan::Valid { record, next } => {
                    scan.records.push(record);
                    valid = next;
                }
                FrameScan::Clean => break,
                FrameScan::Torn(reason) => {
                    scan.truncated_bytes = (buf.len() - valid) as u64;
                    scan.torn_reason = Some(reason);
                    break;
                }
            }
        }
        if scan.truncated_bytes > 0 {
            file.set_len(valid as u64).map_err(|e| io_err("truncate torn tail", e))?;
            file.sync_data().map_err(|e| io_err("fsync after truncate", e))?;
        }
        file.seek(SeekFrom::Start(valid as u64)).map_err(|e| io_err("seek wal end", e))?;
        let last_lsn = scan.records.last().map(|r| r.lsn).unwrap_or(0);
        let wal = Wal {
            file,
            path: path.to_path_buf(),
            bytes: valid as u64,
            records: scan.records.len() as u64,
            last_lsn,
        };
        Ok((wal, scan))
    }

    /// Append a batch of mutations as one contiguous write (group
    /// commit), optionally fsyncing. LSNs must be ascending. Returns
    /// `(bytes written, nanos spent in fsync)` — the fsync time is 0
    /// when no sync was requested, so callers can feed the `wal.fsync`
    /// latency histogram.
    pub fn append(&mut self, batch: &[(u64, CatalogMutation)], fsync: bool) -> Result<(u64, u64)> {
        if batch.is_empty() {
            return Ok((0, 0));
        }
        let mut frames = Vec::new();
        for (lsn, m) in batch {
            encode_record(*lsn, m, &mut frames);
        }
        self.file.write_all(&frames).map_err(|e| io_err("append wal", e))?;
        let fsync_nanos = if fsync {
            let started = std::time::Instant::now();
            self.file.sync_data().map_err(|e| io_err("fsync wal", e))?;
            started.elapsed().as_nanos() as u64
        } else {
            0
        };
        self.bytes += frames.len() as u64;
        self.records += batch.len() as u64;
        if let Some((lsn, _)) = batch.last() {
            self.last_lsn = *lsn;
        }
        Ok((frames.len() as u64, fsync_nanos))
    }

    /// Force an fsync (used by the `interval` policy's deadline).
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data().map_err(|e| io_err("fsync wal", e))
    }

    /// Rotate after a checkpoint: records up to the snapshot's LSN are
    /// covered by the snapshot, so the log restarts empty. Crash-safe
    /// ordering: the snapshot is durably renamed *before* this runs,
    /// and replay skips records with LSN ≤ the snapshot's anyway.
    pub fn rotate(&mut self) -> Result<()> {
        self.file.set_len(0).map_err(|e| io_err("rotate wal", e))?;
        self.file.seek(SeekFrom::Start(0)).map_err(|e| io_err("seek rotated wal", e))?;
        self.file.sync_data().map_err(|e| io_err("fsync rotated wal", e))?;
        self.bytes = 0;
        self.records = 0;
        Ok(())
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    pub fn records(&self) -> u64 {
        self.records
    }

    pub fn last_lsn(&self) -> u64 {
        self.last_lsn
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::table::Table;
    use sqlengine::types::Value;
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sdb-wal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn mutations(n: u64) -> Vec<(u64, CatalogMutation)> {
        (1..=n)
            .map(|i| {
                (
                    i,
                    CatalogMutation::AppendRows {
                        name: "t".into(),
                        rows: vec![vec![Value::Int(i as i64), Value::text(format!("r{i}"))]],
                    },
                )
            })
            .collect()
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = tmpdir("reopen");
        let path = dir.join("wal.log");
        {
            let (mut wal, scan) = Wal::open(&path).unwrap();
            assert!(scan.records.is_empty());
            wal.append(&mutations(5), true).unwrap();
        }
        let (wal, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(wal.last_lsn(), 5);
        let lsns: Vec<u64> = scan.records.iter().map(|r| r.lsn).collect();
        assert_eq!(lsns, vec![1, 2, 3, 4, 5]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_byte_boundary() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(&mutations(4), true).unwrap();
            let t = Arc::new(Table::from_rows(&["x"], vec![vec![Value::Int(9)]]));
            wal.append(&[(5, CatalogMutation::PutTable { name: "t".into(), table: t })], true)
                .unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            let torn_path = dir.join(format!("wal-{cut}.log"));
            std::fs::write(&torn_path, &full[..cut]).unwrap();
            let (wal, scan) = Wal::open(&torn_path).unwrap();
            // Replayed records must be a prefix of the committed sequence.
            for (i, r) in scan.records.iter().enumerate() {
                assert_eq!(r.lsn, i as u64 + 1, "cut {cut}: out-of-order replay");
            }
            assert!(scan.records.len() <= 5);
            // The file was physically truncated to the valid prefix:
            // reopening again must be clean.
            assert_eq!(wal.bytes(), std::fs::metadata(&torn_path).unwrap().len());
            let (_, rescan) = Wal::open(&torn_path).unwrap();
            assert_eq!(rescan.truncated_bytes, 0, "cut {cut}: second open not clean");
            assert_eq!(rescan.records.len(), scan.records.len());
            let _ = std::fs::remove_file(&torn_path);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotate_empties_the_log() {
        let dir = tmpdir("rotate");
        let path = dir.join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&mutations(3), true).unwrap();
        assert!(wal.bytes() > 0);
        wal.rotate().unwrap();
        assert_eq!(wal.bytes(), 0);
        let (_, scan) = Wal::open(&path).unwrap();
        assert!(scan.records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
