//! Full-catalog binary snapshots.
//!
//! A snapshot is the complete durable state of a [`Database`] — table
//! schemas and rows, view definitions (canonical SQL), registered UDF
//! names — plus the LSN of the last WAL record it covers. Recovery
//! loads the newest *valid* snapshot and replays only WAL records with
//! a higher LSN.
//!
//! ```text
//! snapshot := magic:"SDBSNP01" crc:u32 body      (crc = CRC-32 of body)
//! body     := last_lsn:u64
//!             ntables:u32 (name:str table)*      (wire table encoding)
//!             nviews:u32  (name:str sql:str)*
//!             nudfs:u32   (name:str)*
//! ```
//!
//! Writes are atomic: encode to `<name>.tmp`, fsync, rename into
//! place. A crash mid-write leaves only a `.tmp` the loader ignores; a
//! corrupt (partially synced) snapshot fails its CRC and the loader
//! falls back to the previous one. UDF names are informational — UDFs
//! are code, re-registered by the session at startup; the snapshot
//! records which ones existed so recovery can report a mismatch.

use crate::crc::crc32;
use sqlengine::catalog::Database;
use sqlengine::error::{Error, Result};
use sqlengine::table::TableRef;
use sqlengine::wire::{self, Reader};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"SDBSNP01";

/// Defensive bound on relations in one snapshot.
const MAX_RELATIONS: u32 = 1 << 20;

fn err(msg: impl Into<String>) -> Error {
    Error::eval(format!("snapshot: {}", msg.into()))
}

fn io_err(ctx: &str, e: std::io::Error) -> Error {
    Error::eval(format!("snapshot: {ctx}: {e}"))
}

/// Decoded snapshot contents.
#[derive(Debug)]
pub struct SnapshotData {
    /// LSN of the last WAL record the snapshot covers.
    pub last_lsn: u64,
    pub tables: Vec<(String, TableRef)>,
    /// Views as `(name, canonical SQL)`.
    pub views: Vec<(String, String)>,
    /// UDF names registered when the snapshot was taken.
    pub udfs: Vec<String>,
    /// File the snapshot was loaded from.
    pub path: PathBuf,
}

/// File name for a snapshot covering `last_lsn` (zero-padded so the
/// lexical order of directory entries is the numeric LSN order).
pub fn snapshot_file_name(last_lsn: u64) -> String {
    format!("snapshot-{last_lsn:020}.sdb")
}

fn encode(
    last_lsn: u64,
    tables: &[(String, TableRef)],
    views: &[(String, String)],
    udfs: &[String],
) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    body.extend_from_slice(&last_lsn.to_le_bytes());
    body.extend_from_slice(&(tables.len() as u32).to_le_bytes());
    for (name, table) in tables {
        wire::put_str(&mut body, name);
        body.extend_from_slice(&wire::encode_table(table));
    }
    body.extend_from_slice(&(views.len() as u32).to_le_bytes());
    for (name, sql) in views {
        wire::put_str(&mut body, name);
        wire::put_str(&mut body, sql);
    }
    body.extend_from_slice(&(udfs.len() as u32).to_le_bytes());
    for name in udfs {
        wire::put_str(&mut body, name);
    }
    let mut out = Vec::with_capacity(body.len() + 12);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

fn decode(bytes: &[u8], path: &Path) -> Result<SnapshotData> {
    if bytes.len() < 12 || &bytes[..8] != MAGIC {
        return Err(err("bad magic"));
    }
    let crc = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let body = &bytes[12..];
    if crc32(body) != crc {
        return Err(err("checksum mismatch"));
    }
    let mut r = Reader::new(body);
    let last_lsn = r.u64()?;
    let ntables = r.u32()?;
    if ntables > MAX_RELATIONS {
        return Err(err(format!("table count {ntables} exceeds limit")));
    }
    let mut tables = Vec::with_capacity(ntables as usize);
    for _ in 0..ntables {
        let name = r.string()?;
        let table = wire::decode_table_from(&mut r)?;
        tables.push((name, Arc::new(table)));
    }
    let nviews = r.u32()?;
    if nviews > MAX_RELATIONS {
        return Err(err(format!("view count {nviews} exceeds limit")));
    }
    let mut views = Vec::with_capacity(nviews as usize);
    for _ in 0..nviews {
        let name = r.string()?;
        let sql = r.string()?;
        views.push((name, sql));
    }
    let nudfs = r.u32()?;
    if nudfs > MAX_RELATIONS {
        return Err(err(format!("udf count {nudfs} exceeds limit")));
    }
    let mut udfs = Vec::with_capacity(nudfs as usize);
    for _ in 0..nudfs {
        udfs.push(r.string()?);
    }
    if !r.is_empty() {
        return Err(err(format!("{} trailing byte(s)", r.remaining())));
    }
    Ok(SnapshotData { last_lsn, tables, views, udfs, path: path.to_path_buf() })
}

/// Atomically write a snapshot of `db` covering `last_lsn`; returns the
/// final path and the encoded size in bytes.
pub fn write_snapshot(dir: &Path, db: &Database, last_lsn: u64) -> Result<(PathBuf, u64)> {
    write_snapshot_parts(
        dir,
        last_lsn,
        &db.tables_snapshot(),
        &db.views_snapshot(),
        &db.udf_names(),
    )
}

/// Atomically write a snapshot from explicit state lists (the engine's
/// shadow catalog plus the checkpointing session's UDF names).
pub fn write_snapshot_parts(
    dir: &Path,
    last_lsn: u64,
    tables: &[(String, TableRef)],
    views: &[(String, String)],
    udfs: &[String],
) -> Result<(PathBuf, u64)> {
    let bytes = encode(last_lsn, tables, views, udfs);
    let final_path = dir.join(snapshot_file_name(last_lsn));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(last_lsn)));
    {
        let mut f = File::create(&tmp_path).map_err(|e| io_err("create tmp", e))?;
        f.write_all(&bytes).map_err(|e| io_err("write tmp", e))?;
        f.sync_data().map_err(|e| io_err("fsync tmp", e))?;
    }
    fs::rename(&tmp_path, &final_path).map_err(|e| io_err("rename into place", e))?;
    // Best-effort directory sync so the rename itself is durable.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok((final_path, bytes.len() as u64))
}

/// Delete snapshots older than `keep_lsn` (called after a new snapshot
/// is durably in place) plus any stale `.tmp` leftovers.
pub fn prune_snapshots(dir: &Path, keep_lsn: u64) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".tmp") && name.starts_with("snapshot-") {
            let _ = fs::remove_file(entry.path());
            continue;
        }
        if let Some(lsn) = parse_snapshot_name(&name) {
            if lsn < keep_lsn {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("snapshot-")?.strip_suffix(".sdb")?;
    rest.parse::<u64>().ok()
}

/// Load the newest valid snapshot in `dir`, falling back to older ones
/// when the newest fails validation (e.g. a partially synced file that
/// survived a crash). Returns `None` when no usable snapshot exists.
/// `rejected` collects `(file name, reason)` for every snapshot that
/// failed to load — surfaced in recovery stats.
pub fn load_latest(dir: &Path, rejected: &mut Vec<(String, String)>) -> Option<SnapshotData> {
    let entries = fs::read_dir(dir).ok()?;
    let mut candidates: Vec<(u64, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            parse_snapshot_name(&name).map(|lsn| (lsn, e.path()))
        })
        .collect();
    candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
    for (_, path) in candidates {
        match fs::read(&path) {
            Ok(bytes) => match decode(&bytes, &path) {
                Ok(snap) => return Some(snap),
                Err(e) => {
                    rejected.push((path.to_string_lossy().into_owned(), e.to_string()));
                }
            },
            Err(e) => rejected.push((path.to_string_lossy().into_owned(), e.to_string())),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::parser;
    use sqlengine::table::Table;
    use sqlengine::types::Value;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sdb-snap-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "t",
            Table::from_rows(&["a", "b"], vec![vec![Value::Int(1), Value::text("x")]]),
            false,
        )
        .unwrap();
        let q = parser::parse_query("SELECT a FROM t WHERE b = 'x'").unwrap();
        db.create_view("v", q, false).unwrap();
        db
    }

    #[test]
    fn snapshot_roundtrips() {
        let dir = tmpdir("roundtrip");
        let db = sample_db();
        let (path, bytes) = write_snapshot(&dir, &db, 42).unwrap();
        assert!(bytes > 0);
        assert!(path.exists());
        let mut rejected = Vec::new();
        let snap = load_latest(&dir, &mut rejected).unwrap();
        assert!(rejected.is_empty());
        assert_eq!(snap.last_lsn, 42);
        assert_eq!(snap.tables.len(), 1);
        assert_eq!(snap.tables[0].0, "t");
        assert_eq!(snap.tables[0].1.num_rows(), 1);
        // Views round-trip as their *canonical* rendering (which may
        // parenthesize expressions), and must re-parse.
        assert_eq!(snap.views.len(), 1);
        assert_eq!(snap.views[0].0, "v");
        assert!(parser::parse_query(&snap.views[0].1).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = tmpdir("fallback");
        let db = sample_db();
        write_snapshot(&dir, &db, 10).unwrap();
        let (newest, _) = write_snapshot(&dir, &db, 20).unwrap();
        // Corrupt the newest in the body region.
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        let mut rejected = Vec::new();
        let snap = load_latest(&dir, &mut rejected).unwrap();
        assert_eq!(snap.last_lsn, 10, "should fall back to the older snapshot");
        assert_eq!(rejected.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_only_the_latest() {
        let dir = tmpdir("prune");
        let db = sample_db();
        write_snapshot(&dir, &db, 1).unwrap();
        write_snapshot(&dir, &db, 2).unwrap();
        write_snapshot(&dir, &db, 3).unwrap();
        prune_snapshots(&dir, 3);
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec![snapshot_file_name(3)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let dir = tmpdir("trunc");
        let db = sample_db();
        let (path, _) = write_snapshot(&dir, &db, 5).unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            assert!(
                decode(&full[..cut], &path).is_err(),
                "prefix of {cut} bytes unexpectedly decoded"
            );
        }
        assert!(decode(&full, &path).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
