//! # forecast — time-series forecasting methods
//!
//! The algorithmic half of SolveDB+'s Predictive Framework (paper §3):
//! ordinary-least-squares linear regression, ARIMA(p,d,q) with
//! Hannan–Rissanen estimation, naive baselines, rolling-origin cross
//! validation, and the model-selection routine behind the Predictive
//! Advisor (`predictive_solver`). Engine integration (SQL exposure,
//! decision-column handling) lives in `solvedbplus-core`.

#![forbid(unsafe_code)]

pub mod arima;
pub mod cv;
pub mod linreg;
pub mod ols;

pub use arima::Arima;
pub use cv::{cross_validate, rmse, select_best};
pub use linreg::LinearRegression;

/// A trainable, exogenous-feature-aware forecaster.
///
/// `features` is column-major: each inner slice is one feature column
/// aligned with `y`. `future_features` supplies the same columns for the
/// forecast horizon.
pub trait Forecaster {
    fn name(&self) -> &str;

    /// Fit on history. Returns a descriptive error when the data is
    /// insufficient for the model's order.
    fn fit(&mut self, y: &[f64], features: &[Vec<f64>]) -> Result<(), String>;

    /// Forecast `h` steps ahead. `future_features` must hold the same
    /// number of columns as `fit` saw, each of length `h`.
    fn forecast(&self, h: usize, future_features: &[Vec<f64>]) -> Result<Vec<f64>, String>;

    /// In-sample one-step-ahead fitted values (for error reporting).
    fn fitted(&self) -> &[f64];
}

/// Forecast with the historical mean — the weakest sensible baseline.
#[derive(Debug, Default, Clone)]
pub struct MeanForecaster {
    mean: f64,
    fitted: Vec<f64>,
}

impl Forecaster for MeanForecaster {
    fn name(&self) -> &str {
        "mean"
    }

    fn fit(&mut self, y: &[f64], _features: &[Vec<f64>]) -> Result<(), String> {
        if y.is_empty() {
            return Err("mean forecaster needs at least one observation".into());
        }
        self.mean = y.iter().sum::<f64>() / y.len() as f64;
        self.fitted = vec![self.mean; y.len()];
        Ok(())
    }

    fn forecast(&self, h: usize, _f: &[Vec<f64>]) -> Result<Vec<f64>, String> {
        Ok(vec![self.mean; h])
    }

    fn fitted(&self) -> &[f64] {
        &self.fitted
    }
}

/// Seasonal-naive: repeat the value observed one season earlier.
#[derive(Debug, Clone)]
pub struct SeasonalNaive {
    pub period: usize,
    history: Vec<f64>,
    fitted: Vec<f64>,
}

impl SeasonalNaive {
    pub fn new(period: usize) -> SeasonalNaive {
        SeasonalNaive { period: period.max(1), history: vec![], fitted: vec![] }
    }
}

impl Forecaster for SeasonalNaive {
    fn name(&self) -> &str {
        "seasonal_naive"
    }

    fn fit(&mut self, y: &[f64], _features: &[Vec<f64>]) -> Result<(), String> {
        if y.len() < self.period {
            return Err(format!(
                "seasonal naive needs at least one full period ({} points)",
                self.period
            ));
        }
        self.history = y.to_vec();
        self.fitted = y
            .iter()
            .enumerate()
            .map(|(i, &v)| if i >= self.period { y[i - self.period] } else { v })
            .collect();
        Ok(())
    }

    fn forecast(&self, h: usize, _f: &[Vec<f64>]) -> Result<Vec<f64>, String> {
        let n = self.history.len();
        Ok((0..h)
            .map(|k| {
                // Index of the same phase in the last observed season.
                let idx = n - self.period + (k % self.period);
                self.history[idx]
            })
            .collect())
    }

    fn fitted(&self) -> &[f64] {
        &self.fitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_forecaster() {
        let mut m = MeanForecaster::default();
        m.fit(&[1.0, 2.0, 3.0], &[]).unwrap();
        assert_eq!(m.forecast(2, &[]).unwrap(), vec![2.0, 2.0]);
        assert!(m.fit(&[], &[]).is_err());
    }

    #[test]
    fn seasonal_naive_repeats_last_season() {
        let mut m = SeasonalNaive::new(3);
        m.fit(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[]).unwrap();
        // Last season = [4, 5, 6].
        assert_eq!(m.forecast(4, &[]).unwrap(), vec![4.0, 5.0, 6.0, 4.0]);
    }

    #[test]
    fn seasonal_naive_requires_full_period() {
        let mut m = SeasonalNaive::new(10);
        assert!(m.fit(&[1.0, 2.0], &[]).is_err());
    }
}
