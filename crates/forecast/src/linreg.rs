//! Linear regression forecaster (the paper's LR predictive solver, §4.1).
//!
//! Regresses the target on an intercept, the exogenous feature columns
//! and optionally a linear time index (so a bare series still has a
//! trend model when no features are given).

use crate::ols::ols;
use crate::Forecaster;

#[derive(Debug, Clone, Default)]
pub struct LinearRegression {
    /// Include a linear time-index regressor.
    pub with_trend: bool,
    coef: Vec<f64>,
    n_features: usize,
    n_obs: usize,
    fitted: Vec<f64>,
}

impl LinearRegression {
    pub fn new() -> LinearRegression {
        LinearRegression::default()
    }

    pub fn with_trend() -> LinearRegression {
        LinearRegression { with_trend: true, ..Default::default() }
    }

    /// Fitted coefficients: `[intercept, features..., trend?]`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    fn design_row(&self, features: &[Vec<f64>], t: usize, row: usize) -> Vec<f64> {
        let mut r = Vec::with_capacity(1 + self.n_features + self.with_trend as usize);
        r.push(1.0);
        for col in features {
            r.push(col[row]);
        }
        if self.with_trend {
            r.push(t as f64);
        }
        r
    }
}

impl Forecaster for LinearRegression {
    fn name(&self) -> &str {
        "linear_regression"
    }

    fn fit(&mut self, y: &[f64], features: &[Vec<f64>]) -> Result<(), String> {
        self.n_features = features.len();
        self.n_obs = y.len();
        for col in features {
            if col.len() != y.len() {
                return Err("feature column length mismatch".into());
            }
        }
        let k = 1 + self.n_features + self.with_trend as usize;
        if y.len() < k {
            return Err(format!(
                "linear regression needs at least {k} observations, got {}",
                y.len()
            ));
        }
        let x: Vec<Vec<f64>> = (0..y.len()).map(|i| self.design_row(features, i, i)).collect();
        self.coef = ols(&x, y)?;
        self.fitted =
            x.iter().map(|r| r.iter().zip(&self.coef).map(|(a, b)| a * b).sum()).collect();
        Ok(())
    }

    fn forecast(&self, h: usize, future_features: &[Vec<f64>]) -> Result<Vec<f64>, String> {
        if future_features.len() != self.n_features {
            return Err(format!(
                "expected {} future feature columns, got {}",
                self.n_features,
                future_features.len()
            ));
        }
        for col in future_features {
            if col.len() < h {
                return Err("future feature column shorter than horizon".into());
            }
        }
        Ok((0..h)
            .map(|k| {
                let row = self.design_row(future_features, self.n_obs + k, k);
                row.iter().zip(&self.coef).map(|(a, b)| a * b).sum()
            })
            .collect())
    }

    fn fitted(&self) -> &[f64] {
        &self.fitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_linear_relation_on_feature() {
        // y = 10 + 2 * temp.
        let temp: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let y: Vec<f64> = temp.iter().map(|t| 10.0 + 2.0 * t).collect();
        let mut m = LinearRegression::new();
        m.fit(&y, &[temp]).unwrap();
        let fut = vec![vec![3.0, 4.0]];
        let f = m.forecast(2, &fut).unwrap();
        assert!((f[0] - 16.0).abs() < 1e-6);
        assert!((f[1] - 18.0).abs() < 1e-6);
    }

    #[test]
    fn trend_extrapolates() {
        let y: Vec<f64> = (0..30).map(|i| 5.0 + 0.5 * i as f64).collect();
        let mut m = LinearRegression::with_trend();
        m.fit(&y, &[]).unwrap();
        let f = m.forecast(3, &[]).unwrap();
        assert!((f[0] - 20.0).abs() < 1e-6); // 5 + 0.5*30
        assert!((f[2] - 21.0).abs() < 1e-6);
    }

    #[test]
    fn mismatched_features_error() {
        let mut m = LinearRegression::new();
        assert!(m.fit(&[1.0, 2.0], &[vec![1.0]]).is_err());
        m.fit(&[1.0, 2.0, 3.0], &[vec![1.0, 2.0, 3.0]]).unwrap();
        assert!(m.forecast(2, &[]).is_err());
        assert!(m.forecast(2, &[vec![1.0]]).is_err());
    }

    #[test]
    fn fitted_values_match_history_for_exact_fit() {
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let x = vec![vec![1.0, 2.0, 3.0, 4.0]];
        let mut m = LinearRegression::new();
        m.fit(&y, &x).unwrap();
        for (f, t) in m.fitted().iter().zip(&y) {
            assert!((f - t).abs() < 1e-8);
        }
    }
}
