//! Ordinary least squares via the normal equations.
//!
//! Small dense solves only (regression designs here have a handful of
//! columns), so Gaussian elimination with partial pivoting and a tiny
//! ridge term for rank-deficient designs is the right tool.

/// Solve `min ‖Xb − y‖²`, returning the coefficient vector.
/// `x` is row-major: `n` rows of `k` features each.
pub fn ols(x: &[Vec<f64>], y: &[f64]) -> Result<Vec<f64>, String> {
    let n = x.len();
    if n == 0 || n != y.len() {
        return Err("OLS: empty design or length mismatch".into());
    }
    let k = x[0].len();
    if k == 0 {
        return Err("OLS: no regressors".into());
    }
    if x.iter().any(|r| r.len() != k) {
        return Err("OLS: ragged design matrix".into());
    }
    // Normal equations: (X'X) b = X'y.
    let mut xtx = vec![0.0; k * k];
    let mut xty = vec![0.0; k];
    for (row, &yi) in x.iter().zip(y) {
        for i in 0..k {
            xty[i] += row[i] * yi;
            for j in i..k {
                xtx[i * k + j] += row[i] * row[j];
            }
        }
    }
    for i in 0..k {
        for j in 0..i {
            xtx[i * k + j] = xtx[j * k + i];
        }
    }
    // Tiny ridge proportional to the diagonal scale for robustness.
    let scale = (0..k).map(|i| xtx[i * k + i]).fold(0.0f64, f64::max).max(1.0);
    for i in 0..k {
        xtx[i * k + i] += 1e-10 * scale;
    }
    solve_dense(&mut xtx, &mut xty, k)?;
    Ok(xty)
}

/// In-place Gaussian elimination with partial pivoting: solves `A b = rhs`
/// (`a` row-major k×k, destroyed; solution left in `rhs`).
pub fn solve_dense(a: &mut [f64], rhs: &mut [f64], k: usize) -> Result<(), String> {
    for col in 0..k {
        let mut piv = col;
        let mut best = a[col * k + col].abs();
        for r in (col + 1)..k {
            let v = a[r * k + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-14 {
            return Err("singular system in OLS solve".into());
        }
        if piv != col {
            for c in 0..k {
                a.swap(col * k + c, piv * k + c);
            }
            rhs.swap(col, piv);
        }
        let d = a[col * k + col];
        for r in (col + 1)..k {
            let f = a[r * k + col] / d;
            if f != 0.0 {
                for c in col..k {
                    a[r * k + c] -= f * a[col * k + c];
                }
                rhs[r] -= f * rhs[col];
            }
        }
    }
    for col in (0..k).rev() {
        let mut s = rhs[col];
        for c in (col + 1)..k {
            s -= a[col * k + c] * rhs[c];
        }
        rhs[col] = s / a[col * k + col];
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit() {
        // y = 2 + 3x.
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 2.0 + 3.0 * i as f64).collect();
        let b = ols(&x, &y).unwrap();
        assert!((b[0] - 2.0).abs() < 1e-6);
        assert!((b[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn least_squares_of_noisy_data() {
        // y = 1 + 0.5x with symmetric residuals: coefficients unchanged.
        let x = vec![vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0], vec![1.0, 3.0]];
        let y = vec![1.1, 1.4, 2.1, 2.4];
        let b = ols(&x, &y).unwrap();
        let pred: Vec<f64> = x.iter().map(|r| b[0] + b[1] * r[1]).collect();
        let sse: f64 = pred.iter().zip(&y).map(|(p, t)| (p - t).powi(2)).sum();
        assert!(sse < 0.04); // analytic optimum has sse = 0.032
    }

    #[test]
    fn rank_deficient_design_is_regularized() {
        // Two identical columns: ridge makes it solvable.
        let x = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]];
        let y = vec![2.0, 4.0, 6.0];
        let b = ols(&x, &y).unwrap();
        assert!((b[0] + b[1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(ols(&[], &[]).is_err());
        assert!(ols(&[vec![1.0]], &[1.0, 2.0]).is_err());
        assert!(ols(&[vec![1.0], vec![]], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn solve_dense_pivots() {
        // Needs row swap: [[0,1],[1,0]] b = [2,3] → b = [3,2].
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut r = vec![2.0, 3.0];
        solve_dense(&mut a, &mut r, 2).unwrap();
        assert_eq!(r, vec![3.0, 2.0]);
    }
}
