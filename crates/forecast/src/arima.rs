//! ARIMA(p, d, q) with Hannan–Rissanen coefficient estimation.
//!
//! The paper's `arima_solver` (statsmodels-backed in the original)
//! estimates the three *order* hyper-parameters with a black-box search
//! (PSO over `[0,5]³`, §3.2) and fits coefficients per candidate order.
//! Hannan–Rissanen gives a deterministic, OLS-only coefficient fit:
//! a long autoregression provides innovation estimates, then the ARMA
//! coefficients come from a second OLS on lagged values and lagged
//! innovations.

use crate::ols::ols;
use crate::Forecaster;

#[derive(Debug, Clone)]
pub struct Arima {
    pub p: usize,
    pub d: usize,
    pub q: usize,
    /// AR coefficients φ₁..φ_p.
    phi: Vec<f64>,
    /// MA coefficients θ₁..θ_q.
    theta: Vec<f64>,
    intercept: f64,
    /// Differenced training series.
    z: Vec<f64>,
    /// Innovation estimates aligned with `z`.
    eps: Vec<f64>,
    /// Last `d` levels of the raw series, oldest first (for integration).
    tail: Vec<f64>,
    fitted: Vec<f64>,
}

impl Arima {
    pub fn new(p: usize, d: usize, q: usize) -> Arima {
        Arima {
            p,
            d,
            q,
            phi: vec![],
            theta: vec![],
            intercept: 0.0,
            z: vec![],
            eps: vec![],
            tail: vec![],
            fitted: vec![],
        }
    }

    pub fn coefficients(&self) -> (&[f64], &[f64], f64) {
        (&self.phi, &self.theta, self.intercept)
    }

    /// One-step in-sample RMSE on the original scale — the quantity the
    /// paper's `arima_rmse` fitness function minimizes during order search.
    pub fn in_sample_rmse(&self, y: &[f64]) -> f64 {
        if self.fitted.is_empty() || y.len() != self.fitted.len() {
            return f64::INFINITY;
        }
        let sse: f64 = self.fitted.iter().zip(y).map(|(f, t)| (f - t) * (f - t)).sum();
        (sse / y.len() as f64).sqrt()
    }
}

/// Difference a series `d` times, returning the result and the tail of
/// pre-difference values needed to invert the transform.
fn difference(y: &[f64], d: usize) -> (Vec<f64>, Vec<f64>) {
    let mut cur = y.to_vec();
    let mut tails = Vec::with_capacity(d);
    for _ in 0..d {
        tails.push(*cur.last().expect("non-empty series"));
        cur = cur.windows(2).map(|w| w[1] - w[0]).collect();
    }
    tails.reverse(); // deepest differencing level first
    (cur, tails)
}

/// Invert differencing for a forecast path.
fn integrate(forecast: &[f64], tails: &[f64]) -> Vec<f64> {
    let mut cur = forecast.to_vec();
    // `tails` holds the last value at each level, deepest difference
    // first, so integrating consumes it in order.
    for &last in tails.iter() {
        let mut level = Vec::with_capacity(cur.len());
        let mut acc = last;
        for &delta in &cur {
            acc += delta;
            level.push(acc);
        }
        cur = level;
    }
    cur
}

impl Forecaster for Arima {
    fn name(&self) -> &str {
        "arima"
    }

    fn fit(&mut self, y: &[f64], _features: &[Vec<f64>]) -> Result<(), String> {
        let (p, d, q) = (self.p, self.d, self.q);
        if y.len() < d + 1 {
            return Err("series shorter than differencing order".into());
        }
        let (z, tail) = difference(y, d);
        let n = z.len();
        let min_needed = (p.max(q) + q + p).max(1) + 2;
        if n < min_needed {
            return Err(format!(
                "ARIMA({p},{d},{q}) needs at least {min_needed} differenced points, got {n}"
            ));
        }

        // Stage 1: long AR to estimate innovations.
        let long = ((n as f64).ln().ceil() as usize + p + q).clamp(1, n / 2);
        let mut eps = vec![0.0; n];
        if q > 0 {
            let rows: Vec<Vec<f64>> = (long..n)
                .map(|t| {
                    let mut r = vec![1.0];
                    r.extend((1..=long).map(|k| z[t - k]));
                    r
                })
                .collect();
            let targets: Vec<f64> = (long..n).map(|t| z[t]).collect();
            let b = ols(&rows, &targets)?;
            for t in long..n {
                let pred: f64 = b[0] + (1..=long).map(|k| b[k] * z[t - k]).sum::<f64>();
                eps[t] = z[t] - pred;
            }
        }

        // Stage 2: OLS of z_t on [1, z_{t-1..p}, eps_{t-1..q}].
        let start = p.max(q).max(if q > 0 { long } else { 0 });
        let rows: Vec<Vec<f64>> = (start..n)
            .map(|t| {
                let mut r = vec![1.0];
                r.extend((1..=p).map(|k| z[t - k]));
                r.extend((1..=q).map(|k| eps[t - k]));
                r
            })
            .collect();
        let targets: Vec<f64> = (start..n).map(|t| z[t]).collect();
        if rows.len() < p + q + 1 {
            return Err("not enough rows for ARMA regression".into());
        }
        let b = ols(&rows, &targets)?;
        self.intercept = b[0];
        self.phi = b[1..=p].to_vec();
        self.theta = b[p + 1..=p + q].to_vec();

        // Refresh innovations with the final model (one pass).
        let mut eps2 = vec![0.0; n];
        let mut zhat = vec![0.0; n];
        for t in 0..n {
            let mut pred = self.intercept;
            for k in 1..=p {
                if t >= k {
                    pred += self.phi[k - 1] * z[t - k];
                }
            }
            for k in 1..=q {
                if t >= k {
                    pred += self.theta[k - 1] * eps2[t - k];
                }
            }
            zhat[t] = pred;
            eps2[t] = z[t] - pred;
        }
        self.eps = eps2;
        self.z = z;
        self.tail = tail;

        // Fitted values on the original scale.
        if d == 0 {
            self.fitted = zhat;
        } else {
            // zhat[t] predicts the d-th difference; reconstruct level
            // predictions as y[t] = zhat-contribution + previous levels.
            // For reporting we integrate one step at a time using actual
            // history (one-step-ahead fits).
            let mut fitted = Vec::with_capacity(y.len());
            for t in 0..y.len() {
                if t < d {
                    fitted.push(y[t]);
                } else {
                    let zt = t - d;
                    // One-step level forecast = zhat + (level implied by history).
                    let mut base = 0.0;
                    // y[t] = z[t] + sum of lower-order differences at t-1 …
                    // equivalently y[t] = zhat[zt] + (y-reconstruction).
                    // Use: y[t] ≈ zhat[zt] + (y[t] - z[zt]) since z = Δᵈy.
                    base += y[t] - self.z[zt];
                    fitted.push(zhat[zt] + base);
                }
            }
            self.fitted = fitted;
        }
        Ok(())
    }

    fn forecast(&self, h: usize, _features: &[Vec<f64>]) -> Result<Vec<f64>, String> {
        if self.z.is_empty() {
            return Err("ARIMA model not fitted".into());
        }
        let (p, q) = (self.p, self.q);
        let n = self.z.len();
        let mut z_ext = self.z.clone();
        let mut eps_ext = self.eps.clone();
        let mut out_z = Vec::with_capacity(h);
        for k in 0..h {
            let t = n + k;
            let mut pred = self.intercept;
            for j in 1..=p {
                if t >= j {
                    pred += self.phi[j - 1] * z_ext[t - j];
                }
            }
            for j in 1..=q {
                if t >= j && t - j < n + k {
                    // Future innovations are zero in expectation.
                    let e = if t - j < n { eps_ext[t - j] } else { 0.0 };
                    pred += self.theta[j - 1] * e;
                }
            }
            z_ext.push(pred);
            eps_ext.push(0.0);
            out_z.push(pred);
        }
        Ok(integrate(&out_z, &self.tail))
    }

    fn fitted(&self) -> &[f64] {
        &self.fitted
    }
}

/// Fit an ARIMA of the given order and return its in-sample RMSE —
/// the fitness function of the paper's order-search `SOLVESELECT`
/// (`arima_rmse` in §3.2). Infinite when the order is infeasible.
pub fn arima_rmse(y: &[f64], p: usize, d: usize, q: usize) -> f64 {
    let mut m = Arima::new(p, d, q);
    match m.fit(y, &[]) {
        Ok(()) => m.in_sample_rmse(y),
        Err(_) => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_ar1(n: usize, phi: f64, c: f64) -> Vec<f64> {
        // Deterministic noise from a simple LCG.
        let mut seed = 123456789u64;
        let mut noise = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut y = vec![c / (1.0 - phi)];
        for _ in 1..n {
            let prev = *y.last().unwrap();
            y.push(c + phi * prev + 0.1 * noise());
        }
        y
    }

    #[test]
    fn difference_and_integrate_roundtrip() {
        let y = vec![1.0, 3.0, 6.0, 10.0, 15.0];
        let (z, tails) = difference(&y, 2);
        assert_eq!(z, vec![1.0, 1.0, 1.0]); // second differences of triangular numbers
                                            // Forecast two more second-differences of 1.0 → levels 21, 28.
        let f = integrate(&[1.0, 1.0], &tails);
        assert_eq!(f, vec![21.0, 28.0]);
    }

    #[test]
    fn ar1_coefficient_recovery() {
        let y = gen_ar1(500, 0.7, 1.0);
        let mut m = Arima::new(1, 0, 0);
        m.fit(&y, &[]).unwrap();
        let (phi, _, _c) = m.coefficients();
        assert!((phi[0] - 0.7).abs() < 0.1, "phi={}", phi[0]);
    }

    #[test]
    fn trend_series_needs_differencing() {
        let y: Vec<f64> = (0..100).map(|i| 2.0 * i as f64).collect();
        let mut m = Arima::new(0, 1, 0);
        m.fit(&y, &[]).unwrap();
        let f = m.forecast(3, &[]).unwrap();
        // Δy is constant 2 → forecasts continue the line.
        assert!((f[0] - 200.0).abs() < 1e-6, "{f:?}");
        assert!((f[2] - 204.0).abs() < 1e-6);
    }

    #[test]
    fn rmse_prefers_correct_order() {
        let y = gen_ar1(400, 0.8, 0.0);
        let good = arima_rmse(&y, 1, 0, 0);
        let bad = arima_rmse(&y, 0, 2, 0);
        assert!(good < bad, "good={good} bad={bad}");
    }

    #[test]
    fn infeasible_orders_give_infinite_rmse() {
        assert!(arima_rmse(&[1.0, 2.0, 3.0], 5, 2, 5).is_infinite());
    }

    #[test]
    fn forecast_before_fit_errors() {
        let m = Arima::new(1, 0, 0);
        assert!(m.forecast(5, &[]).is_err());
    }

    #[test]
    fn ma_component_fits() {
        // MA(1): y_t = e_t + 0.6 e_{t-1}.
        let mut seed = 77u64;
        let mut noise = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let es: Vec<f64> = (0..600).map(|_| noise()).collect();
        let y: Vec<f64> = (1..600).map(|t| es[t] + 0.6 * es[t - 1]).collect();
        let mut m = Arima::new(0, 0, 1);
        m.fit(&y, &[]).unwrap();
        let (_, theta, _) = m.coefficients();
        assert!((theta[0] - 0.6).abs() < 0.15, "theta={}", theta[0]);
    }

    #[test]
    fn seasonal_like_series_forecast_is_finite() {
        let y: Vec<f64> = (0..200)
            .map(|i| 50.0 + 30.0 * (i as f64 * std::f64::consts::TAU / 24.0).sin())
            .collect();
        let mut m = Arima::new(3, 0, 1);
        m.fit(&y, &[]).unwrap();
        let f = m.forecast(24, &[]).unwrap();
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
