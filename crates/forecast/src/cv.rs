//! Rolling-origin cross validation and model selection — the machinery
//! behind the Predictive Advisor (`predictive_solver`, paper §3.1–3.2).

use crate::Forecaster;

/// Root-mean-square error between two aligned slices.
pub fn rmse(pred: &[f64], actual: &[f64]) -> f64 {
    if pred.is_empty() || pred.len() != actual.len() {
        return f64::INFINITY;
    }
    let sse: f64 = pred.iter().zip(actual).map(|(p, a)| (p - a) * (p - a)).sum();
    (sse / pred.len() as f64).sqrt()
}

/// Rolling-origin evaluation: for `folds` cut points, train on the prefix
/// and score an `horizon`-step forecast against the held-out window.
/// Returns the average RMSE across successful folds, or infinity when the
/// model never fits.
pub fn cross_validate(
    make: &dyn Fn() -> Box<dyn Forecaster>,
    y: &[f64],
    features: &[Vec<f64>],
    horizon: usize,
    folds: usize,
) -> f64 {
    let n = y.len();
    if n <= horizon + 2 || folds == 0 {
        return f64::INFINITY;
    }
    let earliest = (n / 2).max(3);
    let latest = n - horizon;
    if latest <= earliest {
        return f64::INFINITY;
    }
    let mut errors = Vec::new();
    for f in 0..folds {
        // Evenly spaced cut points between earliest and latest.
        let cut = earliest + (latest - earliest) * (f + 1) / folds;
        let train_y = &y[..cut];
        let train_f: Vec<Vec<f64>> = features.iter().map(|c| c[..cut].to_vec()).collect();
        let test_f: Vec<Vec<f64>> =
            features.iter().map(|c| c[cut..cut + horizon].to_vec()).collect();
        let mut model = make();
        if model.fit(train_y, &train_f).is_err() {
            continue;
        }
        if let Ok(pred) = model.forecast(horizon, &test_f) {
            let e = rmse(&pred, &y[cut..cut + horizon]);
            if e.is_finite() {
                errors.push(e);
            }
        }
    }
    if errors.is_empty() {
        f64::INFINITY
    } else {
        errors.iter().sum::<f64>() / errors.len() as f64
    }
}

/// Pick the best model among candidates by rolling-origin CV, fit it on
/// the full history, and return it with its CV score. This is the model
/// selection step of the Predictive Advisor (§3.2, P2.3).
pub fn select_best(
    candidates: Vec<(String, Box<dyn Fn() -> Box<dyn Forecaster>>)>,
    y: &[f64],
    features: &[Vec<f64>],
    horizon: usize,
    folds: usize,
) -> Option<(String, Box<dyn Forecaster>, f64)> {
    let mut best: Option<(String, f64, &Box<dyn Fn() -> Box<dyn Forecaster>>)> = None;
    for (name, make) in &candidates {
        let score = cross_validate(make.as_ref(), y, features, horizon, folds);
        if score.is_finite() {
            match &best {
                None => best = Some((name.clone(), score, make)),
                Some((_, s, _)) if score < *s => best = Some((name.clone(), score, make)),
                _ => {}
            }
        }
    }
    let (name, score, make) = best?;
    let mut model = make();
    model.fit(y, features).ok()?;
    Some((name, model, score))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Arima, LinearRegression, MeanForecaster, SeasonalNaive};

    #[test]
    fn rmse_basics() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(rmse(&[0.0, 0.0], &[3.0, 4.0]), (12.5f64).sqrt());
        assert!(rmse(&[], &[]).is_infinite());
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_infinite());
    }

    fn seasonal_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 100.0 + 50.0 * ((i % 24) as f64 * std::f64::consts::TAU / 24.0).sin())
            .collect()
    }

    #[test]
    fn cv_scores_seasonal_naive_best_on_seasonal_data() {
        let y = seasonal_series(240);
        let sn = cross_validate(
            &|| Box::new(SeasonalNaive::new(24)) as Box<dyn Forecaster>,
            &y,
            &[],
            24,
            3,
        );
        let mean = cross_validate(
            &|| Box::new(MeanForecaster::default()) as Box<dyn Forecaster>,
            &y,
            &[],
            24,
            3,
        );
        assert!(sn < mean, "seasonal {sn} vs mean {mean}");
        assert!(sn < 1e-9); // perfectly periodic
    }

    #[test]
    fn select_best_picks_the_right_model_and_fits_it() {
        let y = seasonal_series(240);
        let candidates: Vec<(String, Box<dyn Fn() -> Box<dyn Forecaster>>)> = vec![
            (
                "mean".into(),
                Box::new(|| Box::new(MeanForecaster::default()) as Box<dyn Forecaster>),
            ),
            (
                "seasonal".into(),
                Box::new(|| Box::new(SeasonalNaive::new(24)) as Box<dyn Forecaster>),
            ),
            ("arima".into(), Box::new(|| Box::new(Arima::new(1, 0, 0)) as Box<dyn Forecaster>)),
        ];
        let (name, model, score) = select_best(candidates, &y, &[], 24, 3).unwrap();
        assert_eq!(name, "seasonal");
        assert!(score < 1e-9);
        let f = model.forecast(24, &[]).unwrap();
        assert!((f[0] - y[216]).abs() < 1e-9);
    }

    #[test]
    fn select_best_handles_all_failures() {
        // Series too short for any candidate.
        let y = vec![1.0, 2.0];
        let candidates: Vec<(String, Box<dyn Fn() -> Box<dyn Forecaster>>)> = vec![(
            "arima".into(),
            Box::new(|| Box::new(Arima::new(5, 2, 5)) as Box<dyn Forecaster>),
        )];
        assert!(select_best(candidates, &y, &[], 5, 3).is_none());
    }

    #[test]
    fn cv_with_features_uses_future_columns() {
        // y = 2 * feature; LR should be near-perfect.
        let feat: Vec<f64> = (0..120).map(|i| ((i * 13) % 29) as f64).collect();
        let y: Vec<f64> = feat.iter().map(|v| 2.0 * v).collect();
        let score = cross_validate(
            &|| Box::new(LinearRegression::new()) as Box<dyn Forecaster>,
            &y,
            &[feat.clone()],
            10,
            4,
        );
        assert!(score < 1e-6, "score {score}");
    }

    #[test]
    fn cv_insufficient_data() {
        assert!(cross_validate(
            &|| Box::new(MeanForecaster::default()) as Box<dyn Forecaster>,
            &[1.0, 2.0, 3.0],
            &[],
            5,
            3
        )
        .is_infinite());
    }
}
