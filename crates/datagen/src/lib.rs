//! # datagen — deterministic synthetic datasets
//!
//! Stand-ins for the two datasets of the paper's evaluation:
//!
//! * **NIST net-zero home** (UC1): 8737 hourly rows of PV supply, HVAC
//!   load, and outdoor/indoor temperatures from an instrumented
//!   lab-home. We generate a multivariate hourly series with the same
//!   shape — daily/seasonal solar cycles driving PV, weather-driven
//!   outdoor temperature, and an indoor temperature that follows a
//!   ground-truth LTI thermal model (so P3's parameter estimation has a
//!   recoverable target).
//! * **TPC-H** (UC2): items/parts with monthly order histories. We keep
//!   the columns the use case touches (items with size/price/supply
//!   cost and an 80-month order series per item).
//!
//! Everything is seeded and deterministic.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlengine::types::timeval;
use sqlengine::{Database, Row, Table, Value};
use ssmodel::Lti;

/// Ground-truth HVAC thermal parameters used by the generator; P3
/// experiments should recover values close to these.
pub const TRUE_A1: f64 = 0.90;
pub const TRUE_B1: f64 = 0.08;
pub const TRUE_B2: f64 = 0.00045;

/// One hourly record of the energy dataset.
#[derive(Debug, Clone, Copy)]
pub struct EnergyRow {
    /// Micros since epoch (hourly).
    pub time: i64,
    pub out_temp: f64,
    pub in_temp: f64,
    pub h_load: f64,
    pub pv_supply: f64,
}

/// Generate `n` hourly rows of NIST-like energy data starting at
/// 2017-01-01 00:00 (the paper uses 8737 rows ≈ one year).
pub fn energy_series(n: usize, seed: u64) -> Vec<EnergyRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let start = timeval::parse_timestamp("2017-01-01 00:00").expect("static timestamp");
    let model = Lti::hvac(TRUE_A1, TRUE_B1, TRUE_B2);
    let mut rows = Vec::with_capacity(n);
    let mut in_temp = 21.0;
    for k in 0..n {
        let t = start + (k as i64) * timeval::MICROS_PER_HOUR;
        let hour = (k % 24) as f64;
        let day = (k / 24) as f64;
        // Outdoor temperature: seasonal + diurnal cycles + noise.
        let seasonal = 10.0 - 12.0 * ((day + 10.0) * std::f64::consts::TAU / 365.0).cos();
        let diurnal = 4.0 * ((hour - 14.0) * std::f64::consts::TAU / 24.0).cos();
        let out_temp = seasonal + diurnal + rng.gen_range(-1.5..1.5);
        // PV supply: clipped solar bell over daylight hours, scaled by season.
        let sun = (-((hour - 12.5) / 3.5).powi(2)).exp();
        let season_scale = 0.55 + 0.45 * ((day + 10.0) * std::f64::consts::TAU / 365.0).sin().abs();
        let cloud = 0.6 + 0.4 * rng.gen::<f64>();
        let pv_supply = (420.0 * sun * season_scale * cloud).max(0.0);
        let pv_supply = if (6.0..20.0).contains(&hour) { pv_supply } else { 0.0 };
        // HVAC load: thermostat control steering the LTI state toward the
        // 21.5 °C setpoint (so indoor temperatures stay in the paper's
        // 20–24 °C comfort range), plus actuation noise.
        let setpoint = 21.5;
        let steady = (setpoint * (1.0 - TRUE_A1) - TRUE_B1 * out_temp) / TRUE_B2;
        let correction = (setpoint - in_temp) / TRUE_B2 * 0.05;
        let h_load = (steady + correction + rng.gen_range(-40.0..40.0)).clamp(0.0, 17_000.0);
        // Indoor temperature follows the ground-truth LTI model.
        rows.push(EnergyRow { time: t, out_temp, in_temp, h_load, pv_supply });
        in_temp = model.step(&[in_temp], &[out_temp, h_load])[0];
    }
    rows
}

/// Materialize energy rows as an engine table
/// (`time, outtemp, intemp, hload, pvsupply`).
pub fn energy_table(rows: &[EnergyRow]) -> Table {
    let data: Vec<Row> = rows
        .iter()
        .map(|r| {
            vec![
                Value::Timestamp(r.time),
                Value::Float(r.out_temp),
                Value::Float(r.in_temp),
                Value::Float(r.h_load),
                Value::Float(r.pv_supply),
            ]
        })
        .collect();
    Table::from_rows(&["time", "outtemp", "intemp", "hload", "pvsupply"], data)
}

/// The planning-horizon variant used throughout §5: historical rows plus
/// `horizon` future rows where `intemp`, `hload`, `pvsupply` are NULL
/// (decision cells) and `outtemp` carries the forecasted temperature —
/// exactly Table 1's shape.
pub fn energy_planning_table(history: usize, horizon: usize, seed: u64) -> Table {
    let rows = energy_series(history + horizon, seed);
    let data: Vec<Row> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if i < history {
                vec![
                    Value::Timestamp(r.time),
                    Value::Float(r.out_temp),
                    Value::Float(r.in_temp),
                    Value::Float(r.h_load),
                    Value::Float(r.pv_supply),
                ]
            } else {
                vec![
                    Value::Timestamp(r.time),
                    Value::Float(r.out_temp),
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ]
            }
        })
        .collect();
    let mut t = Table::from_rows(&["time", "outtemp", "intemp", "hload", "pvsupply"], data);
    // NULL-bearing columns must still be typed.
    for c in t.schema.columns.iter_mut() {
        if c.name != "time" {
            c.ty = sqlengine::DataType::Float;
        } else {
            c.ty = sqlengine::DataType::Timestamp;
        }
    }
    t
}

/// Install the paper's 10-row Table 1 example (5 measured hours, 5
/// decision hours) as table `input` in a database.
pub fn install_table1(db: &mut Database) {
    let ts = |s: &str| Value::Timestamp(timeval::parse_timestamp(s).unwrap());
    let f = Value::Float;
    let rows: Vec<Row> = vec![
        vec![ts("2017-07-02 07:00"), f(5.0), f(21.0), f(100.0), f(0.0)],
        vec![ts("2017-07-02 08:00"), f(6.0), f(20.5), f(250.0), f(0.0)],
        vec![ts("2017-07-02 09:00"), f(6.0), f(21.0), f(150.0), f(200.0)],
        vec![ts("2017-07-02 10:00"), f(7.0), f(23.0), f(120.0), f(254.0)],
        vec![ts("2017-07-02 11:00"), f(8.0), f(23.0), f(80.0), f(320.0)],
        vec![ts("2017-07-02 12:00"), f(9.0), Value::Null, Value::Null, Value::Null],
        vec![ts("2017-07-02 13:00"), f(11.0), Value::Null, Value::Null, Value::Null],
        vec![ts("2017-07-02 14:00"), f(12.0), Value::Null, Value::Null, Value::Null],
        vec![ts("2017-07-02 15:00"), f(11.0), Value::Null, Value::Null, Value::Null],
        vec![ts("2017-07-02 16:00"), f(11.0), Value::Null, Value::Null, Value::Null],
    ];
    let mut t = Table::from_rows(&["time", "outtemp", "intemp", "hload", "pvsupply"], rows);
    for c in t.schema.columns.iter_mut() {
        c.ty = if c.name == "time" {
            sqlengine::DataType::Timestamp
        } else {
            sqlengine::DataType::Float
        };
    }
    db.put_table("input", t);
}

// ---------------------------------------------------------------------------
// TPC-H-like supply chain data (UC2)
// ---------------------------------------------------------------------------

/// An item of the supply chain use case.
#[derive(Debug, Clone)]
pub struct ScItem {
    pub item_id: i64,
    /// Storage volume per unit.
    pub size: f64,
    /// Sale price per unit.
    pub price: f64,
    /// Production cost per unit.
    pub cost: f64,
    /// Monthly order quantities, oldest first.
    pub orders: Vec<f64>,
}

/// Generate `n_items` items, each with `months` months of order history
/// (the paper uses 80 rows of monthly orders per item).
pub fn supply_chain(n_items: usize, months: usize, seed: u64) -> Vec<ScItem> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_items)
        .map(|i| {
            let base = rng.gen_range(50.0..400.0);
            let trend = rng.gen_range(-0.6..1.2);
            let season_amp = rng.gen_range(0.0..0.45) * base;
            let phase = rng.gen_range(0.0..std::f64::consts::TAU);
            let noise_amp = rng.gen_range(0.02..0.12) * base;
            let orders: Vec<f64> = (0..months)
                .map(|m| {
                    let v = base
                        + trend * m as f64
                        + season_amp * ((m as f64) * std::f64::consts::TAU / 12.0 + phase).sin()
                        + rng.gen_range(-noise_amp..noise_amp);
                    v.max(0.0)
                })
                .collect();
            let price = rng.gen_range(10.0..120.0);
            ScItem {
                item_id: (i + 1) as i64,
                size: rng.gen_range(0.5..8.0),
                price,
                cost: price * rng.gen_range(0.4..0.8),
                orders,
            }
        })
        .collect()
}

/// Install `items` and `orders` tables for UC2:
/// `items(item_id, size, price, cost)`,
/// `orders(item_id, month, quantity)` with `month` as a timestamp.
pub fn install_supply_chain(db: &mut Database, items: &[ScItem]) {
    let item_rows: Vec<Row> = items
        .iter()
        .map(|it| {
            vec![
                Value::Int(it.item_id),
                Value::Float(it.size),
                Value::Float(it.price),
                Value::Float(it.cost),
            ]
        })
        .collect();
    db.put_table("items", Table::from_rows(&["item_id", "size", "price", "cost"], item_rows));
    let start = timeval::parse_timestamp("2010-01-01").expect("static timestamp");
    let mut order_rows: Vec<Row> = Vec::new();
    for it in items {
        for (m, &qty) in it.orders.iter().enumerate() {
            // Month arithmetic: advance by calendar month.
            let mut c = timeval::decompose(start);
            let total = c.month as usize - 1 + m;
            c.year += (total / 12) as i64;
            c.month = (total % 12) as u32 + 1;
            order_rows.push(vec![
                Value::Int(it.item_id),
                Value::Timestamp(timeval::compose(c)),
                Value::Float(qty),
            ]);
        }
    }
    db.put_table("orders", Table::from_rows(&["item_id", "month", "quantity"], order_rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_series_is_deterministic_and_shaped() {
        let a = energy_series(100, 7);
        let b = energy_series(100, 7);
        assert_eq!(a.len(), 100);
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.pv_supply == y.pv_supply && x.out_temp == y.out_temp));
        let c = energy_series(100, 8);
        assert!(a.iter().zip(&c).any(|(x, y)| x.pv_supply != y.pv_supply));
        // PV is zero at night.
        assert!(a
            .iter()
            .filter(|r| {
                let hour = ((r.time / timeval::MICROS_PER_HOUR) % 24) as i64;
                !(6..20).contains(&hour)
            })
            .all(|r| r.pv_supply == 0.0));
        // Load respects the HVAC power limit of the paper (0–17 kW).
        assert!(a.iter().all(|r| (0.0..=17_000.0).contains(&r.h_load)));
    }

    #[test]
    fn indoor_temperature_follows_ground_truth_model() {
        let rows = energy_series(50, 3);
        let m = Lti::hvac(TRUE_A1, TRUE_B1, TRUE_B2);
        for w in rows.windows(2) {
            let expect = m.step(&[w[0].in_temp], &[w[0].out_temp, w[0].h_load])[0];
            assert!((w[1].in_temp - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn planning_table_has_null_decision_cells() {
        let t = energy_planning_table(24, 5, 1);
        assert_eq!(t.num_rows(), 29);
        assert!(!t.value(23, 2).is_null());
        assert!(t.value(24, 2).is_null()); // intemp
        assert!(t.value(24, 3).is_null()); // hload
        assert!(t.value(24, 4).is_null()); // pvsupply
        assert!(!t.value(24, 1).is_null()); // forecasted outtemp present
    }

    #[test]
    fn table1_matches_paper() {
        let mut db = Database::new();
        install_table1(&mut db);
        let t = db.table("input").unwrap();
        assert_eq!(t.num_rows(), 10);
        assert_eq!(t.value(0, 2), &Value::Float(21.0));
        assert_eq!(t.value(4, 4), &Value::Float(320.0));
        assert!(t.value(5, 4).is_null());
    }

    #[test]
    fn supply_chain_tables() {
        let items = supply_chain(10, 80, 5);
        assert_eq!(items.len(), 10);
        assert!(items.iter().all(|i| i.orders.len() == 80));
        assert!(items.iter().all(|i| i.price > i.cost));
        let mut db = Database::new();
        install_supply_chain(&mut db, &items);
        assert_eq!(db.table("items").unwrap().num_rows(), 10);
        assert_eq!(db.table("orders").unwrap().num_rows(), 800);
    }

    #[test]
    fn orders_are_nonnegative_with_seasonality_available() {
        let items = supply_chain(3, 36, 11);
        for it in &items {
            assert!(it.orders.iter().all(|&q| q >= 0.0));
        }
    }
}
