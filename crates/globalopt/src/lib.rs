//! # globalopt — black-box global optimization
//!
//! From-scratch Particle Swarm Optimization, Simulated Annealing and
//! Differential Evolution, standing in for the SwarmOps library the
//! paper exposes as the `swarmops` solver (`swarmops.pso()`,
//! `swarmops.sa()`, …).
//!
//! All methods minimize a black-box function over a box; dimensions can
//! be marked integral (the paper's ARIMA order search uses integer
//! parameters in `[0, 5]`). Runs are deterministic given a seed.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Index of the smallest value under IEEE total order (empty → 0).
fn argmin(vals: &[f64]) -> usize {
    let mut best = 0;
    for (i, v) in vals.iter().enumerate().skip(1) {
        if v.total_cmp(&vals[best]).is_lt() {
            best = i;
        }
    }
    best
}

/// Search box with optional per-dimension integrality.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    pub lower: Vec<f64>,
    pub upper: Vec<f64>,
    pub integer: Vec<bool>,
}

impl SearchSpace {
    pub fn continuous(lower: Vec<f64>, upper: Vec<f64>) -> SearchSpace {
        let n = lower.len();
        assert_eq!(n, upper.len());
        SearchSpace { lower, upper, integer: vec![false; n] }
    }

    pub fn with_integrality(mut self, integer: Vec<bool>) -> SearchSpace {
        assert_eq!(integer.len(), self.dim());
        self.integer = integer;
        self
    }

    pub fn dim(&self) -> usize {
        self.lower.len()
    }

    /// Clamp (and round integral dims of) a candidate in place.
    pub fn repair(&self, x: &mut [f64]) {
        for i in 0..self.dim() {
            if self.integer[i] {
                x[i] = x[i].round();
            }
            x[i] = x[i].clamp(self.lower[i], self.upper[i]);
            if self.integer[i] {
                // Clamp may land between integers when bounds are fractional.
                x[i] = x[i].round().clamp(self.lower[i].ceil(), self.upper[i].floor());
            }
        }
    }

    fn sample(&self, rng: &mut StdRng) -> Vec<f64> {
        let mut x: Vec<f64> = (0..self.dim())
            .map(|i| {
                let (l, u) = (finite(self.lower[i], -1e6), finite(self.upper[i], 1e6));
                rng.gen_range(l..=u.max(l))
            })
            .collect();
        self.repair(&mut x);
        x
    }

    fn span(&self, i: usize) -> f64 {
        finite(self.upper[i], 1e6) - finite(self.lower[i], -1e6)
    }
}

fn finite(v: f64, default: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        default
    }
}

/// Result of a black-box optimization run.
#[derive(Debug, Clone)]
pub struct OptResult {
    pub x: Vec<f64>,
    pub value: f64,
    pub evaluations: usize,
    /// Outer iterations (generations / annealing steps) actually run.
    pub iterations: usize,
}

/// Point-in-time snapshot of a running search, handed to the progress
/// callback of the `_with` variants once per outer iteration. Returning
/// `false` from the callback stops the search cooperatively; the result
/// then carries the best point found so far and the iterations actually
/// run (the caller knows it interrupted — it returned `false`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchProgress {
    /// Outer iterations completed so far (1-based at first callback).
    pub iteration: usize,
    /// Objective evaluations so far.
    pub evaluations: usize,
    /// Best objective value found so far (minimization sense).
    pub best: f64,
}

// ---------------------------------------------------------------------------
// Particle Swarm Optimization (Kennedy & Eberhart)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
pub struct PsoOptions {
    pub particles: usize,
    pub iterations: usize,
    /// Inertia weight ω.
    pub inertia: f64,
    /// Cognitive coefficient c₁.
    pub cognitive: f64,
    /// Social coefficient c₂.
    pub social: f64,
    pub seed: u64,
}

impl Default for PsoOptions {
    fn default() -> Self {
        PsoOptions {
            particles: 10,
            iterations: 10,
            inertia: 0.729,
            cognitive: 1.49445,
            social: 1.49445,
            seed: 0x50_50,
        }
    }
}

/// Minimize `f` by particle swarm optimization.
pub fn pso(f: impl FnMut(&[f64]) -> f64, space: &SearchSpace, opts: PsoOptions) -> OptResult {
    pso_with(f, space, opts, &mut |_| true)
}

/// [`pso`] with a per-iteration progress callback (see
/// [`SearchProgress`]).
pub fn pso_with(
    mut f: impl FnMut(&[f64]) -> f64,
    space: &SearchSpace,
    opts: PsoOptions,
    on_progress: &mut dyn FnMut(&SearchProgress) -> bool,
) -> OptResult {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let n = space.dim();
    let mut evaluations = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    let mut pos: Vec<Vec<f64>> = (0..opts.particles).map(|_| space.sample(&mut rng)).collect();
    let mut vel: Vec<Vec<f64>> = (0..opts.particles)
        .map(|_| (0..n).map(|i| (rng.gen::<f64>() - 0.5) * 0.1 * space.span(i)).collect())
        .collect();
    let mut pbest = pos.clone();
    let mut pbest_val: Vec<f64> = pos.iter().map(|x| eval(x, &mut evaluations)).collect();
    let gbest_idx = argmin(&pbest_val);
    let mut gbest = pbest[gbest_idx].clone();
    let mut gbest_val = pbest_val[gbest_idx];

    let mut ran = 0usize;
    for it in 0..opts.iterations {
        ran = it + 1;
        for p in 0..opts.particles {
            for i in 0..n {
                let r1: f64 = rng.gen();
                let r2: f64 = rng.gen();
                vel[p][i] = opts.inertia * vel[p][i]
                    + opts.cognitive * r1 * (pbest[p][i] - pos[p][i])
                    + opts.social * r2 * (gbest[i] - pos[p][i]);
                pos[p][i] += vel[p][i];
            }
            space.repair(&mut pos[p]);
            let v = eval(&pos[p], &mut evaluations);
            if v < pbest_val[p] {
                pbest_val[p] = v;
                pbest[p] = pos[p].clone();
                if v < gbest_val {
                    gbest_val = v;
                    gbest = pos[p].clone();
                }
            }
        }
        if !on_progress(&SearchProgress { iteration: ran, evaluations, best: gbest_val }) {
            break;
        }
    }
    OptResult { x: gbest, value: gbest_val, evaluations, iterations: ran }
}

// ---------------------------------------------------------------------------
// Simulated Annealing
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
pub struct SaOptions {
    pub iterations: usize,
    /// Initial temperature (relative to the initial objective scale).
    pub initial_temperature: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// Neighbourhood size as a fraction of each dimension's span.
    pub step: f64,
    pub seed: u64,
}

impl Default for SaOptions {
    fn default() -> Self {
        SaOptions {
            iterations: 2000,
            initial_temperature: 1.0,
            cooling: 0.997,
            step: 0.1,
            seed: 0x5A_5A,
        }
    }
}

/// Minimize `f` by simulated annealing from a random start (or a given
/// one via [`sa_from`]).
pub fn simulated_annealing(
    f: impl FnMut(&[f64]) -> f64,
    space: &SearchSpace,
    opts: SaOptions,
) -> OptResult {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let x0 = space.sample(&mut rng);
    sa_from(f, space, opts, x0)
}

/// Simulated annealing from an explicit starting point (SolveDB+ uses the
/// decision columns' initial values when present).
pub fn sa_from(
    f: impl FnMut(&[f64]) -> f64,
    space: &SearchSpace,
    opts: SaOptions,
    x: Vec<f64>,
) -> OptResult {
    sa_from_with(f, space, opts, x, &mut |_| true)
}

/// [`sa_from`] with a per-iteration progress callback (see
/// [`SearchProgress`]). The callback is throttled to every 64 annealing
/// steps — a step is one objective evaluation, far cheaper than a
/// PSO/DE generation.
pub fn sa_from_with(
    mut f: impl FnMut(&[f64]) -> f64,
    space: &SearchSpace,
    opts: SaOptions,
    mut x: Vec<f64>,
    on_progress: &mut dyn FnMut(&SearchProgress) -> bool,
) -> OptResult {
    let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(1));
    space.repair(&mut x);
    let n = space.dim();
    let mut evaluations = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };
    let mut cur_val = eval(&x, &mut evaluations);
    let mut best = x.clone();
    let mut best_val = cur_val;
    let scale = if cur_val.is_finite() { cur_val.abs().max(1.0) } else { 1.0 };
    let mut temp = opts.initial_temperature * scale;

    let mut ran = 0usize;
    for it in 0..opts.iterations {
        ran = it + 1;
        let mut cand = x.clone();
        // Perturb a random subset of dimensions.
        let k = rng.gen_range(1..=n.max(1));
        for _ in 0..k {
            let i = rng.gen_range(0..n);
            let sigma = opts.step * space.span(i).max(1e-9);
            let delta = (rng.gen::<f64>() * 2.0 - 1.0) * sigma;
            cand[i] +=
                if space.integer[i] { delta.signum() * delta.abs().ceil().max(1.0) } else { delta };
        }
        space.repair(&mut cand);
        let cand_val = eval(&cand, &mut evaluations);
        let accept = cand_val < cur_val || {
            let d = (cand_val - cur_val) / temp.max(1e-12);
            rng.gen::<f64>() < (-d).exp()
        };
        if accept {
            x = cand;
            cur_val = cand_val;
            if cur_val < best_val {
                best_val = cur_val;
                best = x.clone();
            }
        }
        temp *= opts.cooling;
        // `u64::is_multiple_of` would read better but needs Rust 1.87;
        // the workspace MSRV is 1.75.
        #[allow(clippy::manual_is_multiple_of)]
        if ran % 64 == 0
            && !on_progress(&SearchProgress { iteration: ran, evaluations, best: best_val })
        {
            break;
        }
    }
    OptResult { x: best, value: best_val, evaluations, iterations: ran }
}

// ---------------------------------------------------------------------------
// Differential Evolution (rand/1/bin)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
pub struct DeOptions {
    pub population: usize,
    pub iterations: usize,
    /// Differential weight F.
    pub weight: f64,
    /// Crossover probability CR.
    pub crossover: f64,
    pub seed: u64,
}

impl Default for DeOptions {
    fn default() -> Self {
        DeOptions { population: 20, iterations: 100, weight: 0.6, crossover: 0.9, seed: 0xDE }
    }
}

/// Minimize `f` by differential evolution (rand/1/bin scheme).
pub fn differential_evolution(
    f: impl FnMut(&[f64]) -> f64,
    space: &SearchSpace,
    opts: DeOptions,
) -> OptResult {
    differential_evolution_with(f, space, opts, &mut |_| true)
}

/// [`differential_evolution`] with a per-generation progress callback
/// (see [`SearchProgress`]).
pub fn differential_evolution_with(
    mut f: impl FnMut(&[f64]) -> f64,
    space: &SearchSpace,
    opts: DeOptions,
    on_progress: &mut dyn FnMut(&SearchProgress) -> bool,
) -> OptResult {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let n = space.dim();
    let np = opts.population.max(4);
    let mut evaluations = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    let mut pop: Vec<Vec<f64>> = (0..np).map(|_| space.sample(&mut rng)).collect();
    let mut vals: Vec<f64> = pop.iter().map(|x| eval(x, &mut evaluations)).collect();

    let mut ran = 0usize;
    for it in 0..opts.iterations {
        ran = it + 1;
        for i in 0..np {
            // Pick three distinct indices ≠ i.
            let mut pick = || loop {
                let k = rng.gen_range(0..np);
                if k != i {
                    break k;
                }
            };
            let (a, b, c) = (pick(), pick(), pick());
            let jrand = rng.gen_range(0..n);
            let mut trial = pop[i].clone();
            for j in 0..n {
                if j == jrand || rng.gen::<f64>() < opts.crossover {
                    trial[j] = pop[a][j] + opts.weight * (pop[b][j] - pop[c][j]);
                }
            }
            space.repair(&mut trial);
            let tv = eval(&trial, &mut evaluations);
            if tv <= vals[i] {
                pop[i] = trial;
                vals[i] = tv;
            }
        }
        if !on_progress(&SearchProgress { iteration: ran, evaluations, best: vals[argmin(&vals)] })
        {
            break;
        }
    }
    let bi = argmin(&vals);
    OptResult { x: pop[bi].clone(), value: vals[bi], evaluations, iterations: ran }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    fn rosenbrock(x: &[f64]) -> f64 {
        (0..x.len() - 1)
            .map(|i| 100.0 * (x[i + 1] - x[i] * x[i]).powi(2) + (1.0 - x[i]).powi(2))
            .sum()
    }

    fn box3() -> SearchSpace {
        SearchSpace::continuous(vec![-5.0; 3], vec![5.0; 3])
    }

    #[test]
    fn pso_minimizes_sphere() {
        let r = pso(
            sphere,
            &box3(),
            PsoOptions { particles: 30, iterations: 200, ..Default::default() },
        );
        assert!(r.value < 1e-4, "value {}", r.value);
        assert!(r.evaluations > 0);
        assert_eq!(r.iterations, 200);
    }

    #[test]
    fn sa_minimizes_sphere() {
        let r = simulated_annealing(
            sphere,
            &box3(),
            SaOptions { iterations: 20_000, ..Default::default() },
        );
        assert!(r.value < 1e-2, "value {}", r.value);
    }

    #[test]
    fn de_minimizes_rosenbrock() {
        let space = SearchSpace::continuous(vec![-2.0; 2], vec![2.0; 2]);
        let r = differential_evolution(
            rosenbrock,
            &space,
            DeOptions { population: 40, iterations: 400, ..Default::default() },
        );
        assert!(r.value < 1e-3, "value {}", r.value);
        assert!((r.x[0] - 1.0).abs() < 0.1);
    }

    #[test]
    fn integer_dimensions_stay_integral() {
        let space = SearchSpace::continuous(vec![0.0, 0.0], vec![5.0, 5.0])
            .with_integrality(vec![true, true]);
        // min (x-2.4)² + (y-3.6)² over integers → (2, 4).
        let f = |x: &[f64]| (x[0] - 2.4).powi(2) + (x[1] - 3.6).powi(2);
        for r in [
            pso(f, &space, PsoOptions { particles: 20, iterations: 100, ..Default::default() }),
            differential_evolution(f, &space, DeOptions::default()),
            simulated_annealing(f, &space, SaOptions { iterations: 5000, ..Default::default() }),
        ] {
            assert_eq!(r.x[0], r.x[0].round());
            assert_eq!(r.x[1], r.x[1].round());
            assert_eq!((r.x[0], r.x[1]), (2.0, 4.0), "got {:?}", r.x);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = pso(sphere, &box3(), PsoOptions::default());
        let b = pso(sphere, &box3(), PsoOptions::default());
        assert_eq!(a.x, b.x);
        let c = pso(sphere, &box3(), PsoOptions { seed: 7, ..Default::default() });
        assert_ne!(a.x, c.x);
    }

    #[test]
    fn progress_callback_can_stop_each_method() {
        let space = box3();
        // PSO: stop after 5 generations.
        let mut seen = 0usize;
        let r = pso_with(
            sphere,
            &space,
            PsoOptions { particles: 10, iterations: 500, ..Default::default() },
            &mut |p| {
                seen = p.iteration;
                assert!(p.evaluations > 0);
                assert!(p.best.is_finite());
                p.iteration < 5
            },
        );
        assert_eq!(seen, 5);
        assert_eq!(r.iterations, 5);
        assert!(r.value.is_finite());

        // DE: same contract.
        let r = differential_evolution_with(
            sphere,
            &space,
            DeOptions { iterations: 500, ..Default::default() },
            &mut |p| p.iteration < 3,
        );
        assert_eq!(r.iterations, 3);

        // SA: throttled to every 64 steps, so the stop lands on a
        // multiple of 64.
        let r = sa_from_with(
            sphere,
            &space,
            SaOptions { iterations: 100_000, ..Default::default() },
            vec![1.0, 1.0, 1.0],
            &mut |p| p.iteration < 128,
        );
        assert_eq!(r.iterations, 128);
    }

    #[test]
    fn uninterrupted_with_variants_match_plain_calls() {
        let a = pso(sphere, &box3(), PsoOptions::default());
        let b = pso_with(sphere, &box3(), PsoOptions::default(), &mut |_| true);
        assert_eq!(a.x, b.x);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn sa_from_starting_point_respects_bounds() {
        let space = SearchSpace::continuous(vec![0.0], vec![1.0]);
        let r = sa_from(|x| x[0], &space, SaOptions::default(), vec![100.0]);
        assert!(r.x[0] >= 0.0 && r.x[0] <= 1.0);
        assert!(r.value < 0.05);
    }

    #[test]
    fn nan_objectives_are_rejected() {
        let space = SearchSpace::continuous(vec![-1.0], vec![1.0]);
        // NaN off the negative half; the optimizer should settle in [0,1].
        let f = |x: &[f64]| if x[0] < 0.0 { f64::NAN } else { x[0] };
        let r = pso(f, &space, PsoOptions { particles: 20, iterations: 100, ..Default::default() });
        assert!(r.value.is_finite());
        assert!(r.x[0] >= 0.0);
    }

    #[test]
    fn infinite_bounds_are_searchable() {
        let space = SearchSpace::continuous(vec![f64::NEG_INFINITY], vec![f64::INFINITY]);
        let r = differential_evolution(
            |x| (x[0] - 3.0).powi(2),
            &space,
            DeOptions { population: 30, iterations: 300, ..Default::default() },
        );
        assert!((r.x[0] - 3.0).abs() < 0.1, "got {:?}", r.x);
    }
}
