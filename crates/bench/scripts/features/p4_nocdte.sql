-- HVAC optimization WITHOUT CDTEs: simulated states are decision
-- columns of the input relation and the dynamics become self-join
-- constraints with scalar-subquery parameter lookups.
SOLVESELECT t(hload, intemp) AS
  (SELECT h.time, h.outtemp, h.intemp, h.hload, f.pvsupply
   FROM horizon h JOIN pv_forecast f ON f.time = h.time)
MINIMIZE (SELECT sum((hload - pvsupply) * 0.12) FROM t)
SUBJECTTO
  (SELECT intemp = (SELECT intemp FROM hist ORDER BY time DESC LIMIT 1)
   FROM t WHERE time = (SELECT min(time) FROM t)),
  (SELECT nxt.intemp = hvac_pars.a1 * cur.intemp
                     + hvac_pars.b1 * cur.outtemp
                     + hvac_pars.b2 * cur.hload
   FROM t cur JOIN t nxt ON nxt.time = cur.time + interval '1 hour', hvac_pars),
  (SELECT 20 <= intemp <= 25, 0 <= hload <= 17000 FROM t)
USING solverlp.cbc();
