-- LR estimation WITH CDTEs (SolveDB+, paper Sec. 4.1): parameters and
-- errors live in separate decision relations.
SOLVESELECT p(b0, b1, b2) AS
  (SELECT NULL::float8 AS b0, NULL::float8 AS b1, NULL::float8 AS b2)
WITH e(err) AS
  (SELECT outtemp, hr, pvsupply, NULL::float8 AS err FROM lrdata)
MINIMIZE (SELECT sum(err) FROM e)
SUBJECTTO (SELECT -1*err <= (b0 + b1*outtemp + b2*hr - pvsupply) <= err FROM e, p)
USING solverlp.cbc();
