-- HVAC optimization WITH a simulation CDTE (SolveDB+): the dynamics are
-- written once as a recursive simulation and bound to the decisions.
SOLVESELECT t(hload, intemp) AS
  (SELECT h.time, h.outtemp, h.intemp, h.hload, f.pvsupply
   FROM horizon h JOIN pv_forecast f ON f.time = h.time)
WITH sim AS (
  WITH RECURSIVE s(time, x) AS (
    SELECT (SELECT min(time) FROM t) AS time,
           (SELECT intemp FROM hist ORDER BY time DESC LIMIT 1) AS x
    UNION ALL
    SELECT s.time + interval '1 hour',
           hvac_pars.a1 * s.x
           + hvac_pars.b1 * n.outtemp
           + hvac_pars.b2 * n.hload
    FROM s JOIN t n ON n.time = s.time, hvac_pars)
  SELECT time, x FROM s)
MINIMIZE (SELECT sum((hload - pvsupply) * 0.12) FROM t)
SUBJECTTO (SELECT t.intemp = sim.x FROM sim, t WHERE t.time = sim.time),
          (SELECT 20 <= intemp <= 25, 0 <= hload <= 17000 FROM t)
USING solverlp.cbc();
