-- LR estimation WITHOUT CDTEs (SolveDB style): parameters and per-row
-- errors must share the single input relation (the Table 5 layout), and
-- every parameter reference needs a scalar subquery with a row filter.
SOLVESELECT l(b0, b1, b2, err) AS (
  SELECT 0 AS rid,
         NULL::float8 AS b0, NULL::float8 AS b1, NULL::float8 AS b2,
         NULL::float8 AS outtemp, NULL::float8 AS hr,
         NULL::float8 AS pvsupply, NULL::float8 AS err
  UNION ALL
  SELECT rid, NULL::float8, NULL::float8, NULL::float8,
         outtemp, hr, pvsupply, NULL::float8
  FROM lrdata)
MINIMIZE (SELECT sum(err) FROM l WHERE rid > 0)
SUBJECTTO (SELECT -1*err <= ((SELECT b0 FROM l WHERE rid = 0)
                             + (SELECT b1 FROM l WHERE rid = 0) * outtemp
                             + (SELECT b2 FROM l WHERE rid = 0) * hr
                             - pvsupply) <= err
           FROM l WHERE rid > 0)
USING solverlp.cbc();
