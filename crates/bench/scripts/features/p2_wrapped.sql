-- LR as a wrapped specialized solver (the Sci-kit-style integration of
-- paper Sec. 5.5): one line, native least squares underneath.
SOLVESELECT t(y) AS (SELECT * FROM lrseries) USING lr_solver(features := outtemp);
