-- HVAC model fitting WITHOUT CDTEs: the simulation is a recursive CTE
-- inside the MINIMIZE SELECT (plain SQL there), since SolveDB's
-- SOLVESELECT has no WITH clause.
SOLVESELECT t(a1, b1, b2) AS
  (SELECT 0.5::float8 AS a1, 0.05::float8 AS b1, 0.0005::float8 AS b2)
MINIMIZE (WITH RECURSIVE s(time, x, intemp) AS (
    SELECT (SELECT min(time) FROM hist) AS time,
           (SELECT intemp FROM hist ORDER BY time LIMIT 1) AS x,
           (SELECT intemp FROM hist ORDER BY time LIMIT 1) AS intemp
    UNION ALL
    SELECT s.time + interval '1 hour',
           t.a1 * s.x
           + t.b1 * n.outtemp
           + t.b2 * n.hload,
           n.intemp
    FROM s JOIN hist n ON n.time = s.time, t)
  SELECT sum((s.x - h.intemp)^2) FROM s, hist h WHERE s.time = h.time)
SUBJECTTO (SELECT 0 <= a1 <= 1, 0 <= b1 <= 1, 0 <= b2 <= 0.001 FROM t)
USING swarmops.sa(iterations := 400, seed := 5);
