-- UC2 (supply chain) in SolveDB+ (paper Sec. 5.4): per-item demand
-- forecast with the ARIMA solver, expected-profit modelling in SQL, and
-- the warehouse knapsack as a MIP SOLVESELECT.
-- P2: forecast next-month demand per item. The harness iterates items
-- and runs this SOLVESELECT per item (one ARIMA model per item):
DROP TABLE IF EXISTS demand_forecast;
CREATE TABLE demand_forecast (item_id int, qty float8);
INSERT INTO demand_forecast
SELECT item_id, qty FROM (
  SOLVESELECT t(qty) AS (
    SELECT item_id, month, quantity AS qty FROM orders WHERE item_id = $ITEM
    UNION ALL
    SELECT $ITEM, (SELECT max(month) FROM orders WHERE item_id = $ITEM)
                  + interval '31 days', NULL::float8
    ORDER BY month)
  USING arima_solver(seed := 7)
) f ORDER BY f.month DESC LIMIT 1;
-- P3: expected profit = margin weighted by forecasted demand.
DROP TABLE IF EXISTS profit;
CREATE TABLE profit AS
SELECT i.item_id, (i.price - i.cost) * greatest(0.0, f.qty) AS v,
       i.size * greatest(0.0, f.qty) AS volume
FROM items i JOIN demand_forecast f ON f.item_id = i.item_id;
-- P4: knapsack under the warehouse volume capacity.
DROP TABLE IF EXISTS production_plan;
CREATE TABLE production_plan AS
SOLVESELECT p(pick) AS (SELECT item_id, v, volume, NULL::int AS pick FROM profit)
MAXIMIZE (SELECT sum(v * pick) FROM p)
SUBJECTTO (SELECT sum(volume * pick) <= 0.4 * (SELECT sum(volume) FROM profit) FROM p),
          (SELECT 0 <= pick <= 1 FROM p)
USING solverlp.cbc();
