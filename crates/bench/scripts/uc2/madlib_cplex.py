# UC2 with MADlib + CPLEX (paper Sec. 5.4). Transcription counted for
# eLOC, executed through its Rust structural simulation (baselines::uc2).
import cplex
item_rows = plpy.execute("SELECT item_id, size, price, cost FROM items ORDER BY item_id")
forecasts = []
for item in item_rows:
    plpy.execute("DROP TABLE IF EXISTS train")
    plpy.execute(f"""
      CREATE TABLE train AS SELECT row_number() OVER (ORDER BY month) AS rn,
             quantity FROM orders WHERE item_id = {item['item_id']}""")
    best, best_err = None, float("inf")
    for p in range(5):
        for d in range(2):
            for q in range(5):
                plpy.execute("DROP TABLE IF EXISTS cv_result")
                plpy.execute(f"""
                  CREATE TABLE cv_result AS
                  SELECT madlib.arima_train('train', 'arima_model', 'rn',
                         'quantity', NULL, TRUE, ARRAY[{p}, {d}, {q}])""")
                err = plpy.execute("SELECT residual_variance FROM arima_model_summary")[0]["residual_variance"]
                if err < best_err:
                    best, best_err = (p, d, q), err
    fc = plpy.execute(f"SELECT madlib.arima_forecast('arima_model', 1) AS f")[0]["f"]
    forecasts.append(max(0.0, fc))
profits, volumes = [], []
for item, f in zip(item_rows, forecasts):
    profits.append((item["price"] - item["cost"]) * f)
    volumes.append(item["size"] * f)
cap = 0.4 * sum(volumes)
prob = cplex.Cplex()
prob.objective.set_sense(prob.objective.sense.maximize)
prob.variables.add(obj=profits, types="B" * len(profits))
prob.linear_constraints.add(
    lin_expr=[cplex.SparsePair(ind=range(len(volumes)), val=volumes)],
    senses="L", rhs=[cap])
prob.solve()
picks = prob.solution.get_values()
plpy.execute("DROP TABLE IF EXISTS production_plan; CREATE TABLE production_plan (item_id int, pick int)")
for item, p in zip(item_rows, picks):
    plpy.execute(f"INSERT INTO production_plan VALUES ({item['item_id']}, {round(p)})")
