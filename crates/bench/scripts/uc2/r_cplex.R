# UC2 with R + CPLEX (paper Sec. 5.4). Transcription counted for eLOC,
# executed through its Rust structural simulation (baselines::uc2).
library(DBI); library(forecast); library(Rcplex)
con <- dbConnect(RPostgres::Postgres(), dbname = "tpch")
items <- dbGetQuery(con, "SELECT item_id, size, price, cost FROM items")
forecasts <- numeric(nrow(items))
for (i in seq_len(nrow(items))) {
  orders <- dbGetQuery(con, sprintf(
    "SELECT quantity FROM orders WHERE item_id = %d ORDER BY month",
    items$item_id[i]))
  write.csv(orders, sprintf("/tmp/item%d.csv", i))
  y <- read.csv(sprintf("/tmp/item%d.csv", i))$quantity
  best <- NULL; best_err <- Inf
  for (p in 0:4) for (d in 0:1) for (q in 0:4) {
    fit <- tryCatch(arima(y, order = c(p, d, q)), error = function(e) NULL)
    if (!is.null(fit) && AIC(fit) < best_err) { best <- fit; best_err <- AIC(fit) }
  }
  forecasts[i] <- max(0, predict(best, n.ahead = 1)$pred[1])
}
profit <- (items$price - items$cost) * forecasts
volume <- items$size * forecasts
cap <- 0.4 * sum(volume)
res <- Rcplex(cvec = profit, Amat = matrix(volume, nrow = 1),
              bvec = cap, ub = rep(1, nrow(items)),
              objsense = "max", vtype = "B")
picks <- round(res$xopt)
for (i in seq_len(nrow(items))) {
  dbExecute(con, sprintf("INSERT INTO production_plan VALUES (%d, %d)",
                         items$item_id[i], picks[i]))
}
dbDisconnect(con)
