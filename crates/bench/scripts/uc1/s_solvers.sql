-- S-solvers: the whole P2-P4 workflow through composite solvers that
-- hide the problem specifications (paper Sec. 5.3, "S-solvers").
DROP TABLE IF EXISTS plan;
CREATE TABLE plan AS
SOLVESELECT t(intemp, hload, pvsupply) AS (SELECT * FROM input)
USING hvac_scheduler(comfort_low := 20, comfort_high := 25,
                     power_max := 17000, price := 0.12);
