-- S-3SS / P2: PV supply forecast as an explicit L1-regression LP
-- (general-purpose solver), per paper Sec. 4.1, followed by forecast
-- materialization for the horizon.
DROP TABLE IF EXISTS lr_pars;
CREATE TABLE lr_pars AS
SOLVESELECT p(b0, b1, b2) AS
  (SELECT NULL::float8 AS b0, NULL::float8 AS b1, NULL::float8 AS b2)
WITH e(err) AS
  (SELECT outtemp, hour(time) AS hr, pvsupply, NULL::float8 AS err FROM hist)
MINIMIZE (SELECT sum(err) FROM e)
SUBJECTTO (SELECT -1*err <= (b0 + b1*outtemp + b2*hr - pvsupply) <= err FROM e, p)
USING solverlp.cbc();
DROP TABLE IF EXISTS pv_forecast;
CREATE TABLE pv_forecast AS
SELECT h.time, greatest(0.0, p.b0 + p.b1*h.outtemp + p.b2*hour(h.time)) AS pvsupply
FROM horizon h, lr_pars p;
