-- S-3SS / P1: data management. Split the planning table into history
-- (complete measurements) and the planning horizon, as temp tables that
-- link the three SOLVESELECTs.
DROP TABLE IF EXISTS hist;
CREATE TABLE hist AS SELECT * FROM input WHERE pvsupply IS NOT NULL;
DROP TABLE IF EXISTS horizon;
CREATE TABLE horizon AS SELECT * FROM input WHERE pvsupply IS NULL;
