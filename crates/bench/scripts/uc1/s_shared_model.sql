-- S-shared / model: the LTI grey-box model stored once as a shared
-- problem model (paper Sec. 4.4) and reused by P3 and P4.
DROP TABLE IF EXISTS model;
CREATE TABLE model (m model);
INSERT INTO model SELECT (SOLVEMODEL
  pars AS (SELECT 0.0::float8 AS a1, 0.0::float8 AS b1, 0.0::float8 AS b2)
  WITH data0 AS (SELECT 21.0::float8 AS intemp),
       data AS (SELECT time, outtemp, intemp, hload FROM hist),
       simul AS (
         WITH RECURSIVE s(time, x) AS (
           SELECT (SELECT min(time) FROM data), (SELECT intemp FROM data0)
           UNION ALL
           SELECT s.time + interval '1 hour',
                  pars.a1 * s.x
                  + pars.b1 * n.outtemp
                  + pars.b2 * n.hload
           FROM s JOIN data n ON n.time = s.time, pars)
         SELECT time, x FROM s));
