-- In-DBMS comparison / P2: PV forecast through the specialized
-- lr_solver (same least-squares core as MADlib's linregr, but no
-- intermediate model/summary tables — paper Sec. 5.3, Fig. 7/8).
DROP TABLE IF EXISTS pred;
CREATE TABLE pred AS
SOLVESELECT t(pvsupply) AS (SELECT * FROM input)
USING lr_solver(features := outtemp);
DROP TABLE IF EXISTS pv_forecast;
CREATE TABLE pv_forecast AS
SELECT time, greatest(0.0, pvsupply) AS pvsupply FROM pred
WHERE time > (SELECT max(time) FROM hist);
