-- S-shared / P3: fit the shared model's parameters by instantiating it
-- with the decision parameters and the measured history.
DROP TABLE IF EXISTS hvac_pars;
CREATE TABLE hvac_pars AS
SOLVESELECT t(a1, b1, b2) AS
  (SELECT 0.5::float8 AS a1, 0.05::float8 AS b1, 0.0005::float8 AS b2)
INLINE m AS (SELECT m << (SOLVEMODEL
    pars AS (SELECT a1, b1, b2 FROM t)
    WITH data0 AS (SELECT intemp FROM hist ORDER BY time LIMIT 1))
  FROM model)
MINIMIZE (SELECT sum((m_simul.x - h.intemp)^2) FROM m_simul, hist h
          WHERE m_simul.time = h.time)
SUBJECTTO (SELECT 0 <= a1 <= 1, 0 <= b1 <= 1, 0 <= b2 <= 0.001 FROM t)
USING swarmops.sa(iterations := 400, seed := 5);
