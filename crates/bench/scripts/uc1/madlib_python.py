# UC1 with MADlib + PL/Python (paper Sec. 5.3, the in-DBMS analytics
# stack of the usability study). Transcription counted for eLOC,
# executed through its Rust structural simulation (baselines::uc1).
# --- P2: MADlib linear regression -----------------------------------------
plpy.execute("""
  DROP TABLE IF EXISTS lr_model;
  SELECT madlib.linregr_train('input_history', 'lr_model',
         'pvsupply', 'ARRAY[1, outtemp, extract(hour from time)]')
""")
plpy.execute("""
  DROP TABLE IF EXISTS pv_forecast;
  CREATE TABLE pv_forecast AS
  SELECT h.time, GREATEST(0, madlib.linregr_predict(m.coef,
         ARRAY[1, h.outtemp, extract(hour from h.time)])) AS pvsupply
  FROM input_horizon h, lr_model m
""")
# --- P3: HVAC fit with SwarmOps differential evolution --------------------
rows = plpy.execute("SELECT outtemp, hload, intemp FROM input_history ORDER BY time")
out = [r["outtemp"] for r in rows]
load = [r["hload"] for r in rows]
intemp = [r["intemp"] for r in rows]
def sse(p):
    a1, b1, b2 = p
    x, v = intemp[0], 0.0
    for k in range(len(intemp)):
        v += (x - intemp[k]) ** 2
        x = a1 * x + b1 * out[k] + b2 * load[k]
    return v
problem = swarmops.Problem(dim=3, lower=[0, 0, 0], upper=[1, 1, 0.01], fitness=sse)
best = swarmops.DE(problem, max_evaluations=300).best
a1, b1, b2 = best
plpy.execute("DROP TABLE IF EXISTS hvac_pars; CREATE TABLE hvac_pars (a1 float, b1 float, b2 float)")
plpy.execute(f"INSERT INTO hvac_pars VALUES ({a1}, {b1}, {b2})")
# --- P4: cost LP with PyMathProg + GLPK ------------------------------------
fc = plpy.execute("SELECT h.outtemp, f.pvsupply FROM input_horizon h JOIN pv_forecast f ON f.time = h.time ORDER BY h.time")
fout = [r["outtemp"] for r in fc]
pvf = [r["pvsupply"] for r in fc]
H = len(fout)
x0 = intemp[-1]
begin("hvac")
h = [var(f"h{k}", bounds=(0, 17000)) for k in range(H)]
x = [var(f"x{k}", bounds=(20, 25) if k + 1 < H else (None, None)) for k in range(H)]
minimize(sum((h[k] - pvf[k]) * 0.12 for k in range(H)))
prev = x0
for k in range(H):
    st(x[k] == a1 * prev + b1 * fout[k] + b2 * h[k])
    prev = x[k]
solve()
plan = [h[k].primal for k in range(H)]
end()
plpy.execute("DROP TABLE IF EXISTS plan; CREATE TABLE plan (h float)")
for v in plan:
    plpy.execute(f"INSERT INTO plan VALUES ({v})")
