% UC1 with general-purpose modelling (paper Sec. 5.3, "Matlab-YALMIP").
% Transcription of the baseline implementation; counted for eLOC,
% executed through its Rust structural simulation (baselines::uc1).
% --- P1: init + data I/O -------------------------------------------------
conn = database('nist', 'user', 'pass');
hist = sqlread(conn, 'input_history');
horizon = sqlread(conn, 'input_horizon');
out = hist.outtemp; load = hist.hload; pv = hist.pvsupply;
intemp = hist.intemp; hr = hour(hist.time);
fout = horizon.outtemp; fhr = hour(horizon.time);
n = numel(pv); H = numel(fout);
% --- P2: LR fit as an explicit LP ----------------------------------------
beta = sdpvar(3, 1); e = sdpvar(n, 1);
resid = beta(1) + beta(2)*out + beta(3)*hr - pv;
C2 = [ -e <= resid <= e ];
optimize(C2, sum(e), sdpsettings('solver', 'cbc'));
bhat = value(beta);
pvf = max(0, bhat(1) + bhat(2)*fout + bhat(3)*fhr);
% --- P3: LTI fit with fminsearch ------------------------------------------
sse = @(p) sim_sse(p(1), p(2), p(3), intemp, out, load);
phat = fminsearch(sse, [0.5, 0.05, 0.0005]);
a1 = phat(1); b1 = phat(2); b2 = phat(3);
% --- P4: cost LP over the dynamics ----------------------------------------
h = sdpvar(H, 1); x = sdpvar(H+1, 1);
C4 = [ x(1) == intemp(end) ];
for k = 1:H
  C4 = [ C4, x(k+1) == a1*x(k) + b1*fout(k) + b2*h(k) ];
  C4 = [ C4, 0 <= h(k) <= 17000 ];
  if k < H; C4 = [ C4, 20 <= x(k+1) <= 25 ]; end
end
optimize(C4, sum((h - pvf) * 0.12), sdpsettings('solver', 'cbc'));
plan = value(h);
% --- write results back ----------------------------------------------------
for i = 1:H
  exec(conn, sprintf('INSERT INTO plan VALUES (%f)', plan(i)));
end
close(conn);
function v = sim_sse(a1, b1, b2, intemp, out, load)
  x = intemp(1); v = 0;
  for k = 1:numel(intemp)
    v = v + (x - intemp(k))^2;
    x = a1*x + b1*out(k) + b2*load(k);
  end
end
