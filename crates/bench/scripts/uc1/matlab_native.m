% UC1 with specialized Matlab toolboxes (paper Sec. 5.3, "Matlab-native").
% Transcription of the baseline implementation; counted for eLOC,
% executed through its Rust structural simulation (baselines::uc1).
% --- P1: init + data I/O -------------------------------------------------
conn = database('nist', 'user', 'pass');
hist = sqlread(conn, 'input_history');
horizon = sqlread(conn, 'input_horizon');
t = hist.time; out = hist.outtemp; load = hist.hload;
pv = hist.pvsupply; intemp = hist.intemp;
fout = horizon.outtemp; fhr = hour(horizon.time);
% --- P2: PV forecast with fitlm ------------------------------------------
X = [out, hour(t)];
mdl = fitlm(X, pv);
pvf = max(0, predict(mdl, [fout, fhr]));
% --- P3: state-space fit with ssest --------------------------------------
data = iddata(intemp, [out, load], 3600);
sys = ssest(data, 1, 'Ts', 3600, 'Form', 'canonical');
a1 = sys.A; b1 = sys.B(1); b2 = sys.B(2);
% --- P4: MPC via Multi-Parametric Toolbox --------------------------------
model = LTISystem('A', a1, 'B', [b1 b2]);
model.x.min = 20; model.x.max = 25;
model.u.min = [ -inf; 0 ]; model.u.max = [ inf; 17000 ];
model.u.penalty = OneNormFunction(diag([0, 0.12]));
ctrl = MPCController(model, numel(fout));
x0 = intemp(end);
[u, feasible] = ctrl.evaluate(x0, 'u.previous', [fout'; pvf']);
plan = u(2, :)';
% --- write results back ---------------------------------------------------
for i = 1:numel(plan)
  exec(conn, sprintf('INSERT INTO plan VALUES (%f)', plan(i)));
end
close(conn);
