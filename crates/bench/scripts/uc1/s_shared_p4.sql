-- S-shared / P4: cost optimization over the same shared model,
-- instantiated with the fitted parameters and the horizon data.
DROP TABLE IF EXISTS plan;
CREATE TABLE plan AS
SOLVESELECT t(hload, intemp) AS
  (SELECT h.time, h.outtemp, h.intemp, h.hload, f.pvsupply
   FROM horizon h JOIN pv_forecast f ON f.time = h.time)
INLINE m AS (SELECT m << (SOLVEMODEL
    pars AS (SELECT a1, b1, b2 FROM hvac_pars)
    WITH data0 AS (SELECT intemp FROM hist ORDER BY time DESC LIMIT 1),
         data AS (SELECT time, outtemp, 0.0 AS intemp, hload FROM t))
  FROM model)
MINIMIZE (SELECT sum((hload - pvsupply) * 0.12) FROM t)
SUBJECTTO (SELECT t.intemp = m_simul.x FROM m_simul, t WHERE t.time = m_simul.time),
          (SELECT 20 <= intemp <= 25, 0 <= hload <= 17000 FROM t)
USING solverlp.cbc();
