-- S-3SS / P4: HVAC cost optimization. The LTI dynamics are spelled out
-- again (duplicated from P3 — no shared model), now as linear
-- constraints over the decision loads.
DROP TABLE IF EXISTS plan;
CREATE TABLE plan AS
SOLVESELECT t(hload, intemp) AS
  (SELECT h.time, h.outtemp, h.intemp, h.hload, f.pvsupply
   FROM horizon h JOIN pv_forecast f ON f.time = h.time)
WITH sim AS (
  WITH RECURSIVE s(time, x) AS (
    -- Initial data, for step 0
    SELECT (SELECT min(time) FROM t) AS time,
           (SELECT intemp FROM hist ORDER BY time DESC LIMIT 1) AS x
    UNION ALL
    -- Computed data, for steps > 0
    SELECT s.time + interval '1 hour',
           hvac_pars.a1 * s.x
           + hvac_pars.b1 * n.outtemp
           + hvac_pars.b2 * n.hload
    FROM s JOIN t n ON n.time = s.time, hvac_pars)
  SELECT time, x FROM s)
MINIMIZE (SELECT sum((hload - pvsupply) * 0.12) FROM t)
SUBJECTTO (SELECT t.intemp = sim.x FROM sim, t WHERE t.time = sim.time),
          (SELECT 20 <= intemp <= 25, 0 <= hload <= 17000 FROM t)
USING solverlp.cbc();
