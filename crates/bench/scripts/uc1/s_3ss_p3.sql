-- S-3SS / P3: HVAC thermal-model fitting. The LTI simulation is spelled
-- out inside the query (no shared model), solved by simulated annealing.
DROP TABLE IF EXISTS hvac_pars;
CREATE TABLE hvac_pars AS
SOLVESELECT t(a1, b1, b2) AS
  (SELECT 0.5::float8 AS a1, 0.05::float8 AS b1, 0.0005::float8 AS b2)
WITH sim AS (
  WITH RECURSIVE s(time, x, intemp) AS (
    -- Initial data, for step 0
    SELECT (SELECT min(time) FROM hist) AS time,
           (SELECT intemp FROM hist ORDER BY time LIMIT 1) AS x,
           (SELECT intemp FROM hist ORDER BY time LIMIT 1) AS intemp
    UNION ALL
    -- Computed data, for steps > 0
    SELECT s.time + interval '1 hour',
           t.a1 * s.x
           + t.b1 * n.outtemp
           + t.b2 * n.hload,
           n.intemp
    FROM s JOIN hist n ON n.time = s.time, t)
  SELECT time, x, intemp FROM s)
MINIMIZE (SELECT sum((sim.x - h.intemp)^2) FROM sim, hist h WHERE sim.time = h.time)
SUBJECTTO (SELECT 0 <= a1 <= 1, 0 <= b1 <= 1, 0 <= b2 <= 0.001 FROM t)
USING swarmops.sa(iterations := 400, seed := 5);
