//! Effective Lines of Code (eLOC) — the implementation-size metric of
//! the paper's evaluation (Morozoff [24]): lines that carry program
//! logic, excluding blanks, comments and lone block delimiters.

/// Count effective lines in a source string. Handles SQL (`--`),
/// Matlab (`%`), Python/R (`#`) and C-style comments.
pub fn eloc(source: &str) -> usize {
    let mut in_block_comment = false;
    let mut count = 0;
    for raw in source.lines() {
        let mut line = raw.trim().to_string();
        if line.is_empty() {
            continue;
        }
        // Block comments (SQL/C style).
        loop {
            if in_block_comment {
                match line.find("*/") {
                    Some(end) => {
                        line = line[end + 2..].trim().to_string();
                        in_block_comment = false;
                    }
                    None => {
                        line.clear();
                        break;
                    }
                }
            } else {
                match line.find("/*") {
                    Some(start) => {
                        let rest = line[start + 2..].to_string();
                        line = line[..start].trim_end().to_string();
                        in_block_comment = true;
                        // Re-check the remainder for the closing marker.
                        if let Some(end) = rest.find("*/") {
                            line.push_str(rest[end + 2..].trim());
                            in_block_comment = false;
                        }
                        if in_block_comment {
                            break;
                        }
                    }
                    None => break,
                }
            }
        }
        // Line comments.
        for marker in ["--", "%", "#", "//"] {
            if let Some(pos) = line.find(marker) {
                // Don't cut '%' inside format strings etc. — good enough
                // for the measured scripts, which put comments on their
                // own lines or at end of line.
                line = line[..pos].trim_end().to_string();
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Lone delimiters don't count as effective lines.
        if matches!(line, "{" | "}" | "(" | ")" | ");" | "};" | "end" | "end;" | "begin") {
            continue;
        }
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sql() {
        let s = "
-- a comment
SELECT a,           -- trailing comment
       b
FROM t;             /* block
comment spanning lines */
WHERE x = 1;
";
        assert_eq!(eloc(s), 4);
    }

    #[test]
    fn skips_blanks_and_delimiters() {
        let s = "
function y = f(x)
  y = x + 1;
end
";
        assert_eq!(eloc(s), 2);
    }

    #[test]
    fn python_comments() {
        let s = "
# setup
import numpy as np
x = 1  # inline
";
        assert_eq!(eloc(s), 2);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(eloc(""), 0);
        assert_eq!(eloc("\n\n-- only comments\n"), 0);
    }
}
