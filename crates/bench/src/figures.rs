//! Regeneration of every figure of the paper's evaluation (§5).
//!
//! Each function returns a [`Figure`] — headers + rows + notes — that
//! the `reproduce` binary prints. Sizes are scaled to what the
//! educational dense simplex handles (documented in EXPERIMENTS.md);
//! `Config::quick` shrinks them further for CI.

use crate::eloc::eloc;
use crate::setup::{planning_table, uc1_session, uc2_session};
use crate::uc1::{self, run_s3ss, run_sshared, run_ssolvers};
use crate::uc2::run_uc2;
use crate::OrDie;
use baselines::neldermead::{nelder_mead, NmOptions};
use baselines::uc1::{
    madlib_python, matlab_native, matlab_yalmip, p4_direct, p4_symbolic, p4_symbolic_mpt, Uc1Task,
};
use baselines::uc2::{madlib_cplex, r_cplex};
use obs::timed;
use solvedbplus_core::Session;
use sqlengine::{Table, Value};
use std::time::Duration;

/// A reproduced table/figure: printable series.
#[derive(Debug, Clone)]
pub struct Figure {
    pub id: String,
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    pub notes: Vec<String>,
}

impl Figure {
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Serialize as a `BENCH_*.json` artifact. The tree is strings all
    /// the way down, so a hand-rolled emitter suffices.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let arr = |items: &[String]| -> String {
            let cells: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
            format!("[{}]", cells.join(", "))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| format!("    {}", arr(r))).collect();
        format!(
            "{{\n  \"id\": \"{}\",\n  \"title\": \"{}\",\n  \"headers\": {},\n  \"rows\": [\n{}\n  ],\n  \"notes\": {}\n}}\n",
            esc(&self.id),
            esc(&self.title),
            arr(&self.headers),
            rows.join(",\n"),
            arr(&self.notes)
        )
    }

    /// The artifact filename for this figure: `Fig 9` → `BENCH_FIG_9.json`.
    pub fn json_filename(&self) -> String {
        let slug: String = self
            .id
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_uppercase() } else { '_' })
            .collect();
        format!("BENCH_{slug}.json")
    }
}

/// Experiment sizing.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    pub quick: bool,
}

impl Config {
    pub fn full() -> Config {
        Config { quick: false }
    }

    pub fn quick() -> Config {
        Config { quick: true }
    }

    /// UC1 history length (hours).
    fn uc1_history(&self) -> usize {
        if self.quick {
            96
        } else {
            336
        }
    }

    /// UC1 planning horizon (hours). The paper's is 288; the dense
    /// simplex here is comfortable at 48–96.
    fn uc1_horizon(&self) -> usize {
        if self.quick {
            12
        } else {
            48
        }
    }

    fn p3_iterations(&self) -> usize {
        if self.quick {
            40
        } else {
            200
        }
    }
}

fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

// ---------------------------------------------------------------------------
// Tables 1 & 4 — the running example
// ---------------------------------------------------------------------------

/// Reproduce Table 1 → Table 4: the §3.1 prediction query on the
/// paper's exact 10-row dataset.
pub fn table1(_cfg: Config) -> Figure {
    let mut s = Session::new();
    datagen::install_table1(s.db_mut());
    let out = s
        .query("SOLVESELECT t(pvsupply) AS (SELECT * FROM input) USING predictive_solver()")
        .or_die("prediction query");
    let fmt = |v: &sqlengine::Value| -> String {
        match v.as_f64() {
            Ok(f) => format!("{f:.1}"),
            Err(_) => v.to_string(),
        }
    };
    let mut rows = Vec::new();
    for r in &out.rows {
        rows.push(vec![r[0].to_string(), fmt(&r[1]), fmt(&r[2]), fmt(&r[3]), fmt(&r[4])]);
    }
    Figure {
        id: "Table 4".into(),
        title: "Output of the prediction phase for the running example".into(),
        headers: vec![
            "time".into(),
            "outTemp".into(),
            "inTemp".into(),
            "hLoad".into(),
            "pvSupply".into(),
        ],
        rows,
        notes: vec![
            "pvSupply for 12:00-16:00 is filled by predictive_solver; inTemp/hLoad stay unknown"
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// Figure 3 — UC1 implementation sizes and runtimes
// ---------------------------------------------------------------------------

/// Split a script into P1..P4 sections at `P1:`/`P2:`/... markers and
/// count eLOC per phase (header text counts toward P1).
pub fn phase_eloc(source: &str) -> [usize; 4] {
    let mut sections: [String; 4] = Default::default();
    let mut cur = 0usize;
    for line in source.lines() {
        for (k, marker) in ["P1:", "P2:", "P3:", "P4:"].iter().enumerate() {
            if line.contains(marker) {
                cur = k;
            }
        }
        sections[cur].push_str(line);
        sections[cur].push('\n');
    }
    [eloc(&sections[0]), eloc(&sections[1]), eloc(&sections[2]), eloc(&sections[3])]
}

pub fn fig3a(_cfg: Config) -> Figure {
    let s3ss = {
        let p1 = eloc(uc1::S_3SS_P1);
        let p2 = eloc(uc1::S_3SS_P2);
        let p3 = eloc(uc1::S_3SS_P3);
        let p4 = eloc(uc1::S_3SS_P4);
        [p1, p2, p3, p4]
    };
    let shared_model = eloc(uc1::S_SHARED_MODEL);
    let sshared = {
        let p1 = eloc(uc1::S_3SS_P1);
        let p2 = eloc(uc1::S_3SS_P2);
        // The shared model's lines are split between its two users (the
        // paper: "the size of the model is equally shared").
        let p3 = eloc(uc1::S_SHARED_P3) + shared_model / 2;
        let p4 = eloc(uc1::S_SHARED_P4) + shared_model - shared_model / 2;
        [p1, p2, p3, p4]
    };
    let ssolvers = [eloc(uc1::S_SOLVERS), 0, 0, 0];
    let native = phase_eloc(uc1::MATLAB_NATIVE_M);
    let yalmip = phase_eloc(uc1::MATLAB_YALMIP_M);

    let mut rows = Vec::new();
    for (name, e) in [
        ("Matlab-native", native),
        ("S-solvers", ssolvers),
        ("Matlab-YALMIP", yalmip),
        ("S-3SS", s3ss),
        ("S-shared", sshared),
    ] {
        rows.push(vec![
            name.to_string(),
            e[0].to_string(),
            e[1].to_string(),
            e[2].to_string(),
            e[3].to_string(),
            e.iter().sum::<usize>().to_string(),
        ]);
    }
    Figure {
        id: "Fig 3(a)".into(),
        title: "UC1 implementation sizes (eLOC) per phase".into(),
        headers: vec!["stack".into(), "P1".into(), "P2".into(), "P3".into(), "P4".into(), "total".into()],
        rows,
        notes: vec![
            "SolveDB+ scripts are the executable files under crates/bench/scripts/uc1".into(),
            "Matlab/Python files are transcriptions (not executable here), run via structural simulations".into(),
        ],
    }
}

pub fn fig3b(cfg: Config) -> Figure {
    let history = cfg.uc1_history();
    let horizon = cfg.uc1_horizon();
    let rows_data = datagen::energy_series(history + horizon, 2026);
    let mut task = Uc1Task::new(
        rows_data[..history].to_vec(),
        rows_data[history..].iter().map(|r| r.out_temp).collect(),
    );
    task.p3_evaluations = cfg.p3_iterations();

    let native = matlab_native(&task).times;
    let yalmip = matlab_yalmip(&task).times;

    let (mut s1, _) = uc1_session(history, horizon, 2026);
    let s3ss = run_s3ss(&mut s1, Some(cfg.p3_iterations())).or_die("s3ss");
    let (mut s2, _) = uc1_session(history, horizon, 2026);
    let sshared = run_sshared(&mut s2, Some(cfg.p3_iterations())).or_die("sshared");
    let (mut s3, _) = uc1_session(history, horizon, 2026);
    let ssolv = run_ssolvers(&mut s3, cfg.p3_iterations()).or_die("ssolvers");

    let mut rows = Vec::new();
    for (name, t) in [
        ("Matlab-native", native),
        ("S-solvers", ssolv),
        ("Matlab-YALMIP", yalmip),
        ("S-3SS", s3ss),
        ("S-shared", sshared),
    ] {
        rows.push(vec![
            name.to_string(),
            secs(t.p1),
            secs(t.p2),
            secs(t.p3),
            secs(t.p4),
            secs(t.total()),
        ]);
    }
    Figure {
        id: "Fig 3(b)".into(),
        title: format!("UC1 runtimes (s) per phase — history {history} h, horizon {horizon} h"),
        headers: vec![
            "stack".into(),
            "P1".into(),
            "P2".into(),
            "P3".into(),
            "P4".into(),
            "total".into(),
        ],
        rows,
        notes: vec!["S-solvers reports the single composite SOLVESELECT under P4".into()],
    }
}

// ---------------------------------------------------------------------------
// Figure 4 — P2 / P3 scalability
// ---------------------------------------------------------------------------

pub fn fig4a(cfg: Config) -> Figure {
    // Scale factor of training+prediction input; 1 model vs N models.
    let base_hist = if cfg.quick { 60 } else { 150 };
    let base_hor = if cfg.quick { 6 } else { 12 };
    let scales: Vec<usize> = if cfg.quick { vec![1, 2] } else { vec![1, 2, 3, 4, 5] };

    let mut rows = Vec::new();
    for &k in &scales {
        let hist = base_hist * k;
        let hor = base_hor * k;
        let data = datagen::energy_series(hist + hor, 7 + k as u64);

        // YALMIP-style LP regression (general-purpose modelling).
        let y: Vec<f64> = data[..hist].iter().map(|r| r.pv_supply).collect();
        let feats = vec![data[..hist].iter().map(|r| r.out_temp).collect::<Vec<f64>>()];
        let fut = vec![data[hist..].iter().map(|r| r.out_temp).collect::<Vec<f64>>()];
        let (_, yalmip_1) = timed(|| baselines::uc1::p2_symbolic_lr(&y, &feats, &fut));

        // SolveDB+ explicit LP (S-3SS P2 script).
        let (mut s, _) = uc1_session(hist, hor, 7 + k as u64);
        s.execute_script(uc1::S_3SS_P1).or_die("UC1 P1");
        let (_, sdb_1) = timed(|| s.execute_script(uc1::S_3SS_P2).or_die("UC1 P2"));

        // Reference "fitlm": native least squares, N models (N = k) on
        // base-sized data.
        let (_, fitlm_n) = timed(|| {
            for m in 0..k {
                let d = datagen::energy_series(base_hist + base_hor, 100 + m as u64);
                let y: Vec<f64> = d[..base_hist].iter().map(|r| r.pv_supply).collect();
                let f = vec![d[..base_hist].iter().map(|r| r.out_temp).collect::<Vec<f64>>()];
                let mut lr = forecast::LinearRegression::new();
                use forecast::Forecaster;
                lr.fit(&y, &f).or_die("LR fit");
                let futm = vec![d[base_hist..].iter().map(|r| r.out_temp).collect::<Vec<f64>>()];
                let _ = lr.forecast(base_hor, &futm).or_die("LR forecast");
            }
        });

        // N independent base-size models for the general tools.
        let (_, yalmip_n) = timed(|| {
            for m in 0..k {
                let d = datagen::energy_series(base_hist + base_hor, 200 + m as u64);
                let y: Vec<f64> = d[..base_hist].iter().map(|r| r.pv_supply).collect();
                let f = vec![d[..base_hist].iter().map(|r| r.out_temp).collect::<Vec<f64>>()];
                let fu = vec![d[base_hist..].iter().map(|r| r.out_temp).collect::<Vec<f64>>()];
                let _ = baselines::uc1::p2_symbolic_lr(&y, &f, &fu);
            }
        });
        let (_, sdb_n) = timed(|| {
            for m in 0..k {
                let (mut s, _) = uc1_session(base_hist, base_hor, 300 + m as u64);
                s.execute_script(uc1::S_3SS_P1).or_die("UC1 P1");
                s.execute_script(uc1::S_3SS_P2).or_die("UC1 P2");
            }
        });

        rows.push(vec![
            format!("{k}x"),
            secs(yalmip_1),
            secs(yalmip_n),
            secs(sdb_1),
            secs(sdb_n),
            secs(fitlm_n),
        ]);
    }
    Figure {
        id: "Fig 4(a)".into(),
        title: format!(
            "Forecasting (P2) scalability — base {base_hist}+{base_hor} rows (paper: 8737+288)"
        ),
        headers: vec![
            "scale".into(),
            "YALMIP 1 model".into(),
            "YALMIP N models".into(),
            "SolveDB+ 1 model".into(),
            "SolveDB+ N models".into(),
            "fitlm reference (N)".into(),
        ],
        rows,
        notes: vec![
            "LP-based LR scales superlinearly with input size; specialized least squares stays near-linear".into(),
        ],
    }
}

pub fn fig4b(cfg: Config) -> Figure {
    let sizes: Vec<usize> = if cfg.quick { vec![50, 100] } else { vec![100, 200, 400, 600] };
    let mut rows = Vec::new();
    for &n in &sizes {
        let data = datagen::energy_series(n, 31);
        let u: Vec<Vec<f64>> = data.iter().map(|r| vec![r.out_temp, r.h_load]).collect();
        let measured: Vec<f64> = data.iter().map(|r| r.in_temp).collect();

        // fminsearch (Matlab/YALMIP): the fitness runs in Matlab's
        // interpreter — modelled by the baselines' expression walker.
        let (r, fminsearch) = timed(|| {
            nelder_mead(
                |p| baselines::interp::interpreted_hvac_sse(p[0], p[1], p[2], &u, &measured),
                &[0.5, 0.05, 0.0005],
                NmOptions { max_iterations: 100, ..Default::default() },
            )
        });
        let fminsearch_per_iter = fminsearch.as_secs_f64() / r.evaluations.max(1) as f64;

        // SolveDB+ (simulated annealing over the SQL-expressed fitness).
        let (mut s, _) = uc1_session(n, 4, 31);
        s.execute_script(uc1::S_3SS_P1).or_die("UC1 P1");
        let iters = if cfg.quick { 20 } else { 50 };
        let sql = uc1::S_3SS_P3.replace("iterations := 400", &format!("iterations := {iters}"));
        let (_, sdb) = timed(|| s.execute_script(&sql).or_die("UC1 P2 variant"));
        let sdb_per_iter = sdb.as_secs_f64() / iters as f64;

        // Reference ssest: native annealing fit.
        let (fit, ssest) = timed(|| {
            ssmodel::fit_hvac(&u, &measured, ((0.0, 1.0), (0.0, 1.0), (0.0, 0.01)), 100, 3)
        });
        let ssest_per_iter = ssest.as_secs_f64() / fit.evaluations.max(1) as f64;

        rows.push(vec![
            n.to_string(),
            format!("{fminsearch_per_iter:.6}"),
            format!("{sdb_per_iter:.6}"),
            format!("{ssest_per_iter:.6}"),
        ]);
    }
    Figure {
        id: "Fig 4(b)".into(),
        title: "P3 fitness-function evaluation time (s/iteration) vs training size".into(),
        headers: vec![
            "rows".into(),
            "Matlab/YALMIP (fminsearch)".into(),
            "SolveDB+ (simulated annealing)".into(),
            "reference native impl (ssest)".into(),
        ],
        rows,
        notes: vec![
            "SolveDB+ evaluates the SQL-expressed simulation per iteration; the references use native code".into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// Figure 5 — P4 scalability with breakdown
// ---------------------------------------------------------------------------

pub fn fig5(cfg: Config) -> Figure {
    let base = if cfg.quick { 24 } else { 288 };
    let scales = [0.5, 1.0, 1.5, 2.0];
    let mut rows = Vec::new();
    for &sc in &scales {
        let horizon = (base as f64 * sc) as usize;
        let history = cfg.uc1_history();
        let data = datagen::energy_series(history + horizon, 55);
        let mut task = Uc1Task::new(
            data[..history].to_vec(),
            data[history..].iter().map(|r| r.out_temp).collect(),
        );
        task.p3_evaluations = 10;
        let pv: Vec<f64> = data[history..].iter().map(|r| r.pv_supply).collect();
        let hvac = (datagen::TRUE_A1, datagen::TRUE_B1, datagen::TRUE_B2);
        let x0 = data[history - 1].in_temp;

        // YALMIP + MPT breakdowns (with CSV data I/O).
        let dir = baselines::csvio::TempDir::new("fig5").or_die("temp dir");
        let (_, io) = timed(|| {
            let tbl = datagen::energy_table(&data[history..]);
            let p = dir.file("hor.csv");
            baselines::csvio::export_csv(&tbl, &p).or_die("csv export");
            let _ = baselines::csvio::import_csv_numeric(&p).or_die("csv import");
        });
        let (_, mut yal) = p4_symbolic(&task, hvac, &pv, x0);
        yal.data_io = io;
        let (_, mut mpt) = p4_symbolic_mpt(&task, hvac, &pv, x0);
        mpt.data_io = io;

        // SolveDB+: model generation = symbolic compilation, measured
        // through the direct path (the engine compiles rules straight to
        // the LP; I/O is in-DBMS and counted as zero-ish).
        let (_, sdb) = p4_direct(&task, hvac, &pv, x0);

        for (name, b) in [("YALMIP", yal), ("SolveDB+", sdb), ("MPT", mpt)] {
            rows.push(vec![
                format!("{sc}x ({horizon} steps)"),
                name.to_string(),
                format!("{:.6}", b.data_io.as_secs_f64()),
                format!("{:.6}", b.solving.as_secs_f64()),
                format!("{:.6}", b.model_generation.as_secs_f64()),
                format!("{:.6}", b.total().as_secs_f64()),
            ]);
        }
    }
    Figure {
        id: "Fig 5".into(),
        title: format!("HVAC optimization (P4) scalability — 1x = {base} steps (paper: 288)"),
        headers: vec![
            "scale".into(),
            "stack".into(),
            "data I/O".into(),
            "optimization".into(),
            "model generation".into(),
            "total".into(),
        ],
        rows,
        notes: vec![
            "MPT's double translation dominates its model generation (paper: 215 s at 2x)".into()
        ],
    }
}

// ---------------------------------------------------------------------------
// Figure 6 — CDTE / shared model eLOC
// ---------------------------------------------------------------------------

pub const P2_NOCDTE: &str = include_str!("../scripts/features/p2_nocdte.sql");
pub const P2_CDTE: &str = include_str!("../scripts/features/p2_cdte.sql");
pub const P2_WRAPPED: &str = include_str!("../scripts/features/p2_wrapped.sql");
pub const P3_NOCDTE: &str = include_str!("../scripts/features/p3_nocdte.sql");
pub const P3_CDTE: &str = include_str!("../scripts/features/p3_cdte.sql");
pub const P3_SHARED: &str = include_str!("../scripts/features/p3_shared.sql");
pub const P4_NOCDTE: &str = include_str!("../scripts/features/p4_nocdte.sql");
pub const P4_CDTE: &str = include_str!("../scripts/features/p4_cdte.sql");
pub const P4_SHARED: &str = include_str!("../scripts/features/p4_shared.sql");

pub fn fig6(_cfg: Config) -> Figure {
    let shared_model = eloc(uc1::S_SHARED_MODEL);
    let rows = vec![
        vec![
            "Forecasting (P2)".into(),
            eloc(P2_NOCDTE).to_string(),
            eloc(P2_CDTE).to_string(),
            "no shared model".into(),
        ],
        vec![
            "HVAC model fitting (P3)".into(),
            eloc(P3_NOCDTE).to_string(),
            eloc(P3_CDTE).to_string(),
            (eloc(P3_SHARED) + shared_model / 2).to_string(),
        ],
        vec![
            "HVAC optimization (P4)".into(),
            eloc(P4_NOCDTE).to_string(),
            eloc(P4_CDTE).to_string(),
            (eloc(P4_SHARED) + shared_model - shared_model / 2).to_string(),
        ],
    ];
    Figure {
        id: "Fig 6".into(),
        title: "SolveDB+ implementation sizes with and without CDTEs / shared models (eLOC)".into(),
        headers: vec![
            "sub-problem".into(),
            "SolveDB (no CDTE)".into(),
            "SolveDB+ CDTE".into(),
            "SolveDB+ shared model".into(),
        ],
        rows,
        notes: vec!["shared-model lines are split between P3 and P4, as in the paper".into()],
    }
}

// ---------------------------------------------------------------------------
// Figures 7 & 8 — in-DBMS comparison
// ---------------------------------------------------------------------------

/// SolveDB+ side of the in-DBMS comparison: specialized lr_solver for
/// P2, SQL-fitness annealing for P3, symbolic-LP SOLVESELECT for P4.
pub fn run_sdb_indbms(s: &mut Session, p3_iters: usize) -> baselines::PhaseTimes {
    s.execute_script(uc1::S_3SS_P1).or_die("UC1 P1");
    let (_, p2) = timed(|| {
        s.execute_script(include_str!("../scripts/uc1/s_indbms_p2.sql")).or_die("in-DBMS P2")
    });
    let sql = uc1::S_3SS_P3.replace("iterations := 400", &format!("iterations := {p3_iters}"));
    let (_, p3) = timed(|| s.execute_script(&sql).or_die("UC1 P3"));
    let (_, p4) = timed(|| s.execute_script(uc1::S_3SS_P4).or_die("UC1 P4"));
    baselines::PhaseTimes { p1: Duration::ZERO, p2, p3, p4 }
}

pub fn fig7(cfg: Config) -> Figure {
    let history = cfg.uc1_history();
    let horizon = cfg.uc1_horizon();
    let (mut s, _) = uc1_session(history, horizon, 77);
    let sdb = run_sdb_indbms(&mut s, cfg.p3_iterations());

    let data = datagen::energy_series(history + horizon, 77);
    let mut task = Uc1Task::new(
        data[..history].to_vec(),
        data[history..].iter().map(|r| r.out_temp).collect(),
    );
    task.p3_evaluations = cfg.p3_iterations();
    let madlib = madlib_python(&task).times;

    let sdb_eloc = eloc(include_str!("../scripts/uc1/s_indbms_p2.sql"))
        + eloc(uc1::S_3SS_P1)
        + eloc(uc1::S_3SS_P3)
        + eloc(uc1::S_3SS_P4);
    let madlib_eloc = eloc(uc1::MADLIB_PYTHON_PY);

    Figure {
        id: "Fig 7".into(),
        title: "UC1 vs the in-DBMS analytics stack (single instance)".into(),
        headers: vec![
            "stack".into(),
            "P2 (s)".into(),
            "P3 (s)".into(),
            "P4 (s)".into(),
            "total (s)".into(),
            "eLOC".into(),
        ],
        rows: vec![
            vec![
                "SolveDB+".into(),
                secs(sdb.p2),
                secs(sdb.p3),
                secs(sdb.p4),
                secs(sdb.total()),
                sdb_eloc.to_string(),
            ],
            vec![
                "MADlib+Python".into(),
                secs(madlib.p2),
                secs(madlib.p3),
                secs(madlib.p4),
                secs(madlib.total()),
                madlib_eloc.to_string(),
            ],
        ],
        notes: vec![],
    }
}

pub fn fig8(cfg: Config) -> Figure {
    let counts: Vec<usize> = if cfg.quick { vec![1, 3] } else { vec![1, 5, 10, 25] };
    let history = if cfg.quick { 72 } else { 168 };
    let horizon = 12;
    let mut rows = Vec::new();
    for &n in &counts {
        // SolveDB+: n independent instances.
        let (_, sdb) = timed(|| {
            for i in 0..n {
                let (mut s, _) = uc1_session(history, horizon, 1000 + i as u64);
                run_sdb_indbms(&mut s, 30);
            }
        });
        // MADlib stack: n instances.
        let (_, madlib) = timed(|| {
            for i in 0..n {
                let data = datagen::energy_series(history + horizon, 1000 + i as u64);
                let mut task = Uc1Task::new(
                    data[..history].to_vec(),
                    data[history..].iter().map(|r| r.out_temp).collect(),
                );
                task.p3_evaluations = 30;
                let _ = madlib_python(&task);
            }
        });
        rows.push(vec![n.to_string(), secs(sdb), secs(madlib)]);
    }
    Figure {
        id: "Fig 8".into(),
        title: "Multi-instance UC1 scalability (P2+P3+P4 per instance, seconds)".into(),
        headers: vec!["instances".into(), "SolveDB+".into(), "MADlib+Python".into()],
        rows,
        notes: vec![
            "the paper reports per-phase panels (a)-(c); totals shown here include all phases"
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// Figures 9 & 10 — UC2
// ---------------------------------------------------------------------------

pub fn fig9(cfg: Config) -> Figure {
    let scales: Vec<usize> = if cfg.quick { vec![5, 10] } else { vec![10, 25, 50, 100] };
    let months = if cfg.quick { 30 } else { 80 };
    let mut rows = Vec::new();
    for &n in &scales {
        let (mut s, items) = uc2_session(n, months, 9);
        let ids: Vec<i64> = items.iter().map(|i| i.item_id).collect();
        let (_, sdb) = timed(|| run_uc2(&mut s, &ids).or_die("UC2 pipeline"));
        let (_, r) = timed(|| {
            let _ = r_cplex(&items);
        });
        let (_, madlib) = timed(|| {
            let _ = madlib_cplex(&items);
        });

        rows.push(vec![n.to_string(), secs(sdb), secs(r), secs(madlib)]);
    }
    Figure {
        id: "Fig 9".into(),
        title: format!("UC2 combined P1-P4 scalability — {months} months of orders per item"),
        headers: vec![
            "items".into(),
            "SolveDB+ (ARIMA+MIP)".into(),
            "R/CPLEX".into(),
            "MADlib/CPLEX".into(),
        ],
        rows,
        notes: vec![
            "SolveDB+ searches orders with PSO (10x10) per item; R/MADlib grid-search 50 orders per item".into(),
        ],
    }
}

pub fn fig10(cfg: Config) -> Figure {
    let n = if cfg.quick { 10 } else { 50 };
    let months = if cfg.quick { 30 } else { 80 };
    let (mut s, items) = uc2_session(n, months, 13);
    let ids: Vec<i64> = items.iter().map(|i| i.item_id).collect();
    let sdb = run_uc2(&mut s, &ids).or_die("UC2 pipeline");
    let r = r_cplex(&items).times;
    let m = madlib_cplex(&items).times;

    let sdb_eloc = eloc(crate::uc2::UC2_SQL);
    let r_eloc = eloc(crate::uc2::R_CPLEX_R);
    let m_eloc = eloc(crate::uc2::MADLIB_CPLEX_PY);

    let mk = |name: &str, t: baselines::PhaseTimes, e: usize| {
        vec![
            name.to_string(),
            secs(t.p1),
            secs(t.p2),
            secs(t.p3),
            secs(t.p4),
            secs(t.total()),
            e.to_string(),
        ]
    };
    Figure {
        id: "Fig 10".into(),
        title: format!("UC2 per-phase runtimes and eLOC at {n} items"),
        headers: vec![
            "stack".into(),
            "P1".into(),
            "P2".into(),
            "P3".into(),
            "P4".into(),
            "total (s)".into(),
            "eLOC".into(),
        ],
        rows: vec![
            mk("SolveDB+", sdb, sdb_eloc),
            mk("R/cplex", r, r_eloc),
            mk("MADlib/cplex", m, m_eloc),
        ],
        notes: vec![],
    }
}

// ---------------------------------------------------------------------------
// Figure 11 — LR implementations
// ---------------------------------------------------------------------------

pub fn fig11(cfg: Config) -> Figure {
    let n = if cfg.quick { 40 } else { 120 };
    let horizon = 10;

    // Prepare the feature-script tables.
    let mut s = Session::new();
    let data = datagen::energy_series(n + horizon, 21);
    let lrdata: Vec<Vec<sqlengine::Value>> = data[..n]
        .iter()
        .enumerate()
        .map(|(i, r)| {
            vec![
                sqlengine::Value::Int(i as i64 + 1),
                sqlengine::Value::Float(r.out_temp),
                sqlengine::Value::Float(sqlengine::types::timeval::decompose(r.time).hour as f64),
                sqlengine::Value::Float(r.pv_supply),
            ]
        })
        .collect();
    s.db_mut().put_table(
        "lrdata",
        sqlengine::Table::from_rows(&["rid", "outtemp", "hr", "pvsupply"], lrdata),
    );
    s.db_mut().put_table("lrseries", {
        let mut t = planning_table(&data, n);
        // lr_solver fills the single `y` decision column: rename pvsupply.
        let idx = t.schema.index_of("pvsupply").or_die("pvsupply column");
        t.schema.columns[idx].name = "y".into();
        t
    });

    let mut time_script =
        |sql: &str| -> Duration { timed(|| s.execute_script(sql).or_die("feature script")).1 };
    let t_nocdte = time_script(P2_NOCDTE);
    let t_cdte = time_script(P2_CDTE);
    let t_wrapped = time_script(P2_WRAPPED);

    Figure {
        id: "Fig 11".into(),
        title: format!("LR solver implementations at {n} training rows: eLOC and runtime"),
        headers: vec!["variant".into(), "eLOC".into(), "runtime (s)".into()],
        rows: vec![
            vec![
                "No CDTE".into(),
                eloc(P2_NOCDTE).to_string(),
                format!("{:.6}", t_nocdte.as_secs_f64()),
            ],
            vec![
                "CDTE".into(),
                eloc(P2_CDTE).to_string(),
                format!("{:.6}", t_cdte.as_secs_f64()),
            ],
            vec![
                "Sci-kit-style wrapped solver".into(),
                eloc(P2_WRAPPED).to_string(),
                format!("{:.6}", t_wrapped.as_secs_f64()),
            ],
        ],
        notes: vec![
            "the wrapped solver runs native least squares — the paper's ~8x speedup over the LP formulation".into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// Presolve payoff — interval propagation on vs off
// ---------------------------------------------------------------------------

/// Turn presolve off in a `USING solverlp.cbc()` clause.
fn presolve_off(sql: &str) -> String {
    sql.replace("solverlp.cbc()", "solverlp.cbc(presolve := off)")
}

/// Execute one solve and pull its solver stats out of the trace.
fn traced_solve(s: &mut Session, sql: &str) -> (Duration, obs::SolverStats) {
    let (r, t) = timed(|| s.execute(sql));
    let r = r.or_die("traced solve");
    let st = r.trace.and_then(|tr| tr.solvers.first().cloned()).or_die("solver stats in trace");
    (t, st)
}

/// Presolve on/off comparison across the UC1 LP, the UC2 knapsack MIP
/// and a bound-snapping MIP microbench: solve time, branch-and-bound
/// nodes, the reduction counters, and the (identical) objectives.
pub fn presolve(cfg: Config) -> Figure {
    let mut rows = Vec::new();
    let mut push = |workload: &str, runs: [(&str, (Duration, obs::SolverStats)); 2]| {
        for (mode, (t, st)) in runs {
            rows.push(vec![
                workload.to_string(),
                mode.to_string(),
                secs(t),
                st.nodes_explored.to_string(),
                st.presolve_cols.to_string(),
                st.presolve_bounds.to_string(),
                st.presolve_rows.to_string(),
                st.objective.map(|o| format!("{o:.2}")).unwrap_or_else(|| "-".into()),
            ]);
        }
    };

    // UC1 P4: the HVAC planning LP, run on the session prepared through
    // P3 (the solve does not mutate its inputs, so one session serves
    // both runs).
    {
        let (mut s, _) = uc1_session(cfg.uc1_history(), cfg.uc1_horizon(), 41);
        s.execute_script(uc1::S_3SS_P1).or_die("UC1 P1");
        s.execute_script(uc1::S_3SS_P2).or_die("UC1 P2");
        s.execute_script(&uc1::S_3SS_P3.replace("iterations := 400", "iterations := 40"))
            .or_die("UC1 P3");
        let p4 = uc1::S_3SS_P4;
        let start = p4.find("SOLVESELECT").or_die("UC1 P4 solve statement");
        let sql = p4[start..].trim().trim_end_matches(';').to_string();
        let on = traced_solve(&mut s, &sql);
        let off = traced_solve(&mut s, &presolve_off(&sql));
        push("UC1 HVAC plan (LP)", [("on", on), ("off", off)]);
    }

    // UC2 P4: the warehouse knapsack MIP over forecast-weighted profits.
    {
        let n = if cfg.quick { 8 } else { 25 };
        let months = if cfg.quick { 30 } else { 80 };
        let (mut s, items) = uc2_session(n, months, 7);
        let ids: Vec<i64> = items.iter().map(|i| i.item_id).collect();
        crate::uc2::prepare_uc2_profit(&mut s, &ids).or_die("UC2 P2+P3");
        let sql = crate::uc2::p4_solve_sql();
        let on = traced_solve(&mut s, &sql);
        let off = traced_solve(&mut s, &presolve_off(&sql));
        push(&format!("UC2 knapsack MIP ({n} items)"), [("on", on), ("off", off)]);
    }

    // Bound-snapping MIP: maximize sum(x) with a per-row 2x <= 7 over
    // integer decisions. Presolve snaps every upper bound to x <= 3, the
    // root relaxation becomes integral, and branch-and-bound never
    // branches; without it every variable sits fractional at 3.5.
    {
        let n = if cfg.quick { 12 } else { 40 };
        let mut s = Session::new();
        s.execute_script("CREATE TABLE mb (rid int, x int)").or_die("mb table");
        for i in 0..n {
            s.execute_script(&format!("INSERT INTO mb VALUES ({i}, NULL)")).or_die("mb row");
        }
        let sql = "SOLVESELECT q(x) AS (SELECT rid, x FROM mb) \
                   MAXIMIZE (SELECT sum(x) FROM q) \
                   SUBJECTTO (SELECT x >= 0, 2 * x <= 7 FROM q) \
                   USING solverlp.cbc()";
        let on = traced_solve(&mut s, sql);
        let off = traced_solve(&mut s, &presolve_off(sql));
        push(&format!("bound-snap MIP ({n} int vars)"), [("on", on), ("off", off)]);
    }

    Figure {
        id: "Presolve".into(),
        title: "Interval-presolve payoff: solve time and search size, presolve on vs off".into(),
        headers: vec![
            "workload".into(),
            "presolve".into(),
            "solve (s)".into(),
            "B&B nodes".into(),
            "vars fixed".into(),
            "bounds tightened".into(),
            "rows removed".into(),
            "objective".into(),
        ],
        rows,
        notes: vec![
            "identical objectives within each pair is the correctness check; nodes and time are the payoff".into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// Matrix classification payoff — integrality proofs on vs off
// ---------------------------------------------------------------------------

/// Turn matrix classification off in a `USING solverlp.cbc()` clause.
fn matrixclass_off(sql: &str) -> String {
    sql.replace("solverlp.cbc()", "solverlp.cbc(matrixclass := off)")
}

/// Matrix-classification on/off comparison across models with provable
/// structure: an assignment MIP (network TU), a staffing MIP with a
/// consecutive-ones coverage matrix (interval TU), a crew-rostering
/// set-partitioning model (census/cut registration, no whole-matrix
/// proof), and an aggregated knapsack whose linking variable is
/// implied-integral (branch-and-bound stops branching on it). Within
/// each pair the objective must be identical — the proofs are shortcuts,
/// never approximations.
pub fn matrix(cfg: Config) -> Figure {
    let mut rows = Vec::new();
    let mut push = |workload: &str, runs: [(&str, (Duration, obs::SolverStats)); 2]| {
        for (mode, (t, st)) in runs {
            rows.push(vec![
                workload.to_string(),
                mode.to_string(),
                secs(t),
                st.nodes_explored.to_string(),
                if st.integrality_proof.is_empty() { "-".into() } else { st.integrality_proof },
                if st.matrix_class.is_empty() { "-".into() } else { st.matrix_class },
                st.objective.map(|o| format!("{o:.2}")).unwrap_or_else(|| "-".into()),
            ]);
        }
    };

    // Assignment n×n: every variable sits in exactly one worker row and
    // one task row — a network matrix. With the proof, solverlp solves
    // the LP relaxation once (0 nodes, certified); without it, it runs
    // branch-and-bound and merely gets lucky at the root.
    {
        let n = if cfg.quick { 4 } else { 8 };
        let mut s = Session::new();
        s.execute_script("CREATE TABLE assign (w int, t int, cost float8, x int)")
            .or_die("assign table");
        for w in 0..n {
            for t in 0..n {
                let cost = 1.0 + ((w * 7 + t * 13) % 17) as f64;
                s.execute_script(&format!("INSERT INTO assign VALUES ({w}, {t}, {cost}, NULL)"))
                    .or_die("assign row");
            }
        }
        let sql = "SOLVESELECT a(x) AS (SELECT * FROM assign) \
                   MINIMIZE (SELECT sum(cost * x) FROM a) \
                   SUBJECTTO (SELECT sum(x) = 1 FROM a GROUP BY w), \
                             (SELECT sum(x) = 1 FROM a GROUP BY t), \
                             (SELECT 0 <= x <= 1 FROM a) \
                   USING solverlp.cbc()";
        let on = traced_solve(&mut s, sql);
        let off = traced_solve(&mut s, &matrixclass_off(sql));
        push(&format!("assignment {n}x{n} (network TU)"), [("on", on), ("off", off)]);
    }

    // Shift staffing: each coverage window spans consecutive shifts, so
    // the matrix has the consecutive-ones property (interval TU).
    {
        let mut s = Session::new();
        s.execute_script("CREATE TABLE shifts (sid int, staff int)").or_die("shifts table");
        for sid in 1..=6 {
            s.execute_script(&format!("INSERT INTO shifts VALUES ({sid}, NULL)"))
                .or_die("shift row");
        }
        let sql = "SOLVESELECT s(staff) AS (SELECT * FROM shifts) \
                   MINIMIZE (SELECT sum(staff) FROM s) \
                   SUBJECTTO (SELECT sum(staff) >= 3 FROM s WHERE sid BETWEEN 1 AND 2), \
                             (SELECT sum(staff) >= 5 FROM s WHERE sid BETWEEN 2 AND 4), \
                             (SELECT sum(staff) >= 4 FROM s WHERE sid BETWEEN 3 AND 5), \
                             (SELECT sum(staff) >= 2 FROM s WHERE sid BETWEEN 4 AND 6), \
                             (SELECT 0 <= staff <= 10 FROM s) \
                   USING solverlp.cbc()";
        let on = traced_solve(&mut s, sql);
        let off = traced_solve(&mut s, &matrixclass_off(sql));
        push("shift staffing (interval TU)", [("on", on), ("off", off)]);
    }

    // Crew rostering: pick pairings so every flight is covered exactly
    // once — pure set-partitioning rows. No whole-matrix proof (some
    // pairings span three flights), but the census registers the rows
    // as cut-separation candidates.
    {
        let mut s = Session::new();
        s.execute_script(crate::CREW_SETUP).or_die("crew tables");
        let on = traced_solve(&mut s, crate::CREW_SOLVE);
        let off = traced_solve(&mut s, &matrixclass_off(crate::CREW_SOLVE));
        push("crew rostering (set partitioning)", [("on", on), ("off", off)]);
    }

    // Duty-hours aggregate: crew clusters whose LP root is fractional
    // (each is the classic odd-cycle set-partitioning gap), plus one
    // integer aggregate `total = sum(hours * pick)` inserted as the
    // FIRST decision row so most-fractional branching reaches for it.
    // Its integrality is implied by the linking equality, so with
    // classification on, branch-and-bound relaxes it and branches on
    // the picks directly; without the proof it wastes nodes splitting
    // the aggregate. This is the genuine node-count collapse.
    {
        let k = if cfg.quick { 3 } else { 5 };
        let mut s = Session::new();
        s.execute_script(
            "CREATE TABLE duties (did int, kind int, dcost float8, coef float8, pick int);
             CREATE TABLE cover (did int, flight int)",
        )
        .or_die("duties tables");
        // The aggregate first: cost 0, coefficient -1 in the link row.
        s.execute_script("INSERT INTO duties VALUES (0, 1, 0, -1, NULL)").or_die("total row");
        for t in 0..k {
            // Per cluster: three two-flight pairings (cheap, forming the
            // odd cycle) and three single-flight reserves (expensive).
            let costs = [10.0, 10.0, 10.0, 8.0, 8.0, 8.0];
            let hb = (t % 4) as f64;
            let hours = [7.0 + hb, 9.0 + hb, 11.0 + hb, 5.0, 4.0, 6.0];
            let covers: [&[usize]; 6] = [&[1, 2], &[2, 3], &[1, 3], &[1], &[2], &[3]];
            for i in 0..6 {
                let did = 1 + 6 * t + i;
                s.execute_script(&format!(
                    "INSERT INTO duties VALUES ({did}, 0, {}, {}, NULL)",
                    costs[i], hours[i]
                ))
                .or_die("duty row");
                for fl in covers[i] {
                    s.execute_script(&format!("INSERT INTO cover VALUES ({did}, {})", 3 * t + fl))
                        .or_die("cover row");
                }
            }
        }
        let sql = "SOLVESELECT d(pick) AS (SELECT * FROM duties) \
                   MINIMIZE (SELECT sum(dcost * pick) FROM d) \
                   SUBJECTTO (SELECT sum(pick) = 1 FROM d JOIN cover ON d.did = cover.did \
                                GROUP BY cover.flight), \
                             (SELECT sum(coef * pick) = 0 FROM d), \
                             (SELECT 0 <= pick <= 1 FROM d WHERE kind = 0), \
                             (SELECT 0 <= pick <= 10000 FROM d WHERE kind = 1) \
                   USING solverlp.cbc()";
        let on = traced_solve(&mut s, sql);
        let off = traced_solve(&mut s, &matrixclass_off(sql));
        push(&format!("duty-hours aggregate ({k} clusters)"), [("on", on), ("off", off)]);
    }

    Figure {
        id: "Matrix".into(),
        title: "Matrix classification payoff: proofs, row classes and search size, on vs off"
            .into(),
        headers: vec![
            "workload".into(),
            "matrixclass".into(),
            "solve (s)".into(),
            "B&B nodes".into(),
            "proof".into(),
            "row classes".into(),
            "objective".into(),
        ],
        rows,
        notes: vec![
            "identical objectives within each pair is the correctness check; the proof column \
             shows what was certified and nodes show the search the proof removed"
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// Executor comparison: row interpreter vs planned columnar pipeline
// ---------------------------------------------------------------------------

/// Time one SQL statement under both executors, asserting identical
/// results (as multisets — the optimizer may reorder joins). Returns
/// (rows, row_time, columnar_time) with the best of three runs each.
fn race_executors(s: &mut Session, sql: &str) -> (usize, Duration, Duration) {
    let canon = |t: &Table| -> Vec<String> {
        let mut keys: Vec<String> = t
            .rows
            .iter()
            .map(|r| r.iter().map(|v| format!("{v:?}")).collect::<Vec<_>>().join("\u{1f}"))
            .collect();
        keys.sort();
        keys
    };
    let best = |s: &mut Session, sql: &str| -> (Table, Duration) {
        let (mut t, mut d) = timed(|| s.query(sql));
        for _ in 0..2 {
            let (t2, d2) = timed(|| s.query(sql));
            if d2 < d {
                d = d2;
                t = t2;
            }
        }
        (t.unwrap_or_else(|e| panic!("executor bench query failed ({e}): {sql}")), d)
    };
    let prev = sqlengine::set_force_row_interpreter(true);
    let (row_t, row_d) = best(s, sql);
    sqlengine::set_force_row_interpreter(false);
    let (col_t, col_d) = best(s, sql);
    sqlengine::set_force_row_interpreter(prev);
    assert_eq!(canon(&row_t), canon(&col_t), "row and columnar executors disagree on: {sql}");
    (col_t.num_rows(), row_d, col_d)
}

/// Row vs columnar executor on the scan/filter/join/aggregate
/// micro-suite and on the UC1/UC2 model-instantiation queries.
pub fn executor(cfg: Config) -> Figure {
    let n: i64 = if cfg.quick { 20_000 } else { 120_000 };
    // Synthetic fact/dim pair; deterministic LCG so runs are comparable.
    let mut x: i64 = 0x5DEECE66D;
    let mut rnd = |m: i64| {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (x >> 33).rem_euclid(m)
    };
    let fact: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(rnd(64)),
                Value::Int(rnd(1000)),
                Value::Float(rnd(10_000) as f64 / 10.0),
            ]
        })
        .collect();
    let dim: Vec<Vec<Value>> =
        (0..64).map(|i| vec![Value::Int(i), Value::text(format!("grp{i}"))]).collect();
    let mut s = Session::new();
    s.db_mut().put_table("fact", Table::from_rows(&["id", "g", "a", "b"], fact));
    s.db_mut().put_table("dim", Table::from_rows(&["id", "name"], dim));

    let micro: &[(&str, String)] = &[
        ("scan+project", "SELECT id, g, a, b FROM fact".into()),
        ("filter", "SELECT id, a FROM fact WHERE a > 500 AND g < 32".into()),
        (
            "hash join",
            "SELECT f.id, d.name FROM fact f JOIN dim d ON f.g = d.id WHERE f.a < 250".into(),
        ),
        (
            "aggregate",
            "SELECT g, count(*), sum(a), avg(b), min(a), max(b) FROM fact GROUP BY g".into(),
        ),
        ("rollup", "SELECT g, sum(a) FROM fact WHERE g < 16 GROUP BY ROLLUP (g)".into()),
    ];
    let mut rows = Vec::new();
    let mut agg_speedup = 0.0;
    for (name, sql) in micro {
        let (nrows, row_d, col_d) = race_executors(&mut s, sql);
        let speedup = row_d.as_secs_f64() / col_d.as_secs_f64().max(1e-9);
        if *name == "aggregate" {
            agg_speedup = speedup;
        }
        rows.push(vec![
            (*name).to_string(),
            nrows.to_string(),
            secs(row_d),
            secs(col_d),
            format!("{speedup:.2}x"),
        ]);
    }

    // Model instantiation: the SELECTs a SOLVESELECT evaluates to build
    // its problem instance, over the UC1 and UC2 datasets.
    let (mut s1, _) = uc1_session(cfg.uc1_history(), cfg.uc1_horizon(), 7);
    let uc1_sql = "SELECT time, outtemp, intemp, hload, pvsupply FROM input \
                   WHERE intemp IS NULL ORDER BY time";
    let (nrows, row_d, col_d) = race_executors(&mut s1, uc1_sql);
    rows.push(vec![
        "UC1 instantiation".into(),
        nrows.to_string(),
        secs(row_d),
        secs(col_d),
        format!("{:.2}x", row_d.as_secs_f64() / col_d.as_secs_f64().max(1e-9)),
    ]);
    let (mut s2, _) = uc2_session(if cfg.quick { 40 } else { 120 }, 24, 1);
    let uc2_sql = "SELECT i.item_id, i.price - i.cost AS margin, sum(o.quantity), avg(o.quantity) \
                   FROM items i JOIN orders o ON i.item_id = o.item_id \
                   GROUP BY i.item_id, i.price - i.cost";
    let (nrows, row_d, col_d) = race_executors(&mut s2, uc2_sql);
    rows.push(vec![
        "UC2 instantiation".into(),
        nrows.to_string(),
        secs(row_d),
        secs(col_d),
        format!("{:.2}x", row_d.as_secs_f64() / col_d.as_secs_f64().max(1e-9)),
    ]);

    Figure {
        id: "Executor".into(),
        title: "Row interpreter vs planned columnar executor".into(),
        headers: vec![
            "workload".into(),
            "rows out".into(),
            "row (s)".into(),
            "columnar (s)".into(),
            "speedup".into(),
        ],
        rows,
        notes: vec![
            "every pair asserted identical (multiset of result rows)".into(),
            format!("aggregate-heavy speedup: {agg_speedup:.2}x (target ≥2x in release builds)"),
        ],
    }
}

// ---------------------------------------------------------------------------
// Storage: fsync-policy cost and recovery speed
// ---------------------------------------------------------------------------

/// Durability cost/benefit across fsync policies: single-statement
/// ingest throughput (each statement is one group commit), WAL-tail
/// recovery, checkpoint cost, and snapshot-based recovery, against an
/// ephemeral session as the no-WAL baseline.
pub fn storage_fig(cfg: Config) -> Figure {
    use std::sync::Arc;
    use storage::{FsyncPolicy, StorageEngine};

    let n: usize = if cfg.quick { 150 } else { 1000 };
    let policies: [(&str, Option<FsyncPolicy>); 4] = [
        ("ephemeral (no WAL)", None),
        ("never", Some(FsyncPolicy::Never)),
        ("interval:100", Some(FsyncPolicy::Interval(Duration::from_millis(100)))),
        ("always", Some(FsyncPolicy::Always)),
    ];
    let mut rows = Vec::new();
    for (label, policy) in policies {
        let dir = std::env::temp_dir().join(format!(
            "sdb-bench-storage-{}-{}",
            label
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect::<String>(),
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut s = Session::new();
        if let Some(p) = policy {
            let engine = Arc::new(StorageEngine::open(&dir, p).or_die("open storage"));
            s.attach_storage(engine).or_die("attach storage");
        }
        s.execute_script("CREATE TABLE kv (k INT, v TEXT)").or_die("create kv");
        let (_, ingest) = timed(|| {
            for i in 0..n {
                s.execute(&format!("INSERT INTO kv VALUES ({i}, 'value-{i}')")).or_die("insert");
            }
        });
        let stmts_per_s = n as f64 / ingest.as_secs_f64().max(1e-9);

        let (fsyncs, wal_bytes, wal_recover, ckpt, snap_recover) = match policy {
            None => ("-".into(), "-".into(), "-".into(), "-".into(), "-".into()),
            Some(p) => {
                let fsyncs =
                    s.query_scalar("SELECT fsyncs FROM sdb_storage").or_die("fsyncs").to_string();
                let wal_bytes = s
                    .query_scalar("SELECT wal_bytes FROM sdb_storage")
                    .or_die("wal_bytes")
                    .to_string();
                // Recovery from the raw WAL (n+1 records replay).
                let (e2, wal_recover) =
                    timed(|| StorageEngine::open(&dir, p).or_die("reopen (wal)"));
                assert_eq!(e2.recovery_stats().replayed_records, n as u64 + 1, "{label}");
                // Checkpoint, then recovery from the snapshot alone.
                let (_, ckpt) = timed(|| s.execute("CHECKPOINT").or_die("checkpoint"));
                let (e3, snap_recover) =
                    timed(|| StorageEngine::open(&dir, p).or_die("reopen (snapshot)"));
                assert_eq!(e3.recovery_stats().replayed_records, 0, "{label}");
                let mut check = Session::new();
                check
                    .attach_storage(Arc::new(StorageEngine::open(&dir, p).or_die("reopen (check)")))
                    .or_die("attach check");
                let cnt = check.query_scalar("SELECT count(*) FROM kv").or_die("count");
                assert_eq!(cnt, Value::Int(n as i64), "{label}: rows lost across recovery");
                (fsyncs, wal_bytes, secs(wal_recover), secs(ckpt), secs(snap_recover))
            }
        };
        rows.push(vec![
            label.to_string(),
            n.to_string(),
            secs(ingest),
            format!("{stmts_per_s:.0}"),
            fsyncs,
            wal_bytes,
            wal_recover,
            ckpt,
            snap_recover,
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }
    Figure {
        id: "Storage".into(),
        title: format!(
            "Durable catalog: fsync-policy ingest cost and recovery speed ({n} single-row inserts)"
        ),
        headers: vec![
            "mode".into(),
            "inserts".into(),
            "ingest (s)".into(),
            "stmts/s".into(),
            "fsyncs".into(),
            "wal bytes".into(),
            "wal recover (s)".into(),
            "checkpoint (s)".into(),
            "snap recover (s)".into(),
        ],
        rows,
        notes: vec![
            "each INSERT is one statement = one group commit; `always` pays one fsync per statement".into(),
            "recovery is asserted lossless: count(*) matches after reopen in every durable mode".into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// Observability: instrumentation overhead and progress-emission cost
// ---------------------------------------------------------------------------

/// Cost of the telemetry plane itself: per-op price of the histogram
/// and metrics-registry primitives, their share of an executor
/// micro-suite's wall clock (target < 2%), and what live progress
/// emission adds to a long MIP solve.
pub fn obs_fig(cfg: Config) -> Figure {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let mut rows = Vec::new();

    // Primitive costs, amortized over a tight loop.
    let reps: u64 = if cfg.quick { 200_000 } else { 1_000_000 };
    let mut h = obs::Histogram::new();
    let (_, hist_d) = timed(|| {
        for i in 0..reps {
            h.record(i % 100_000);
        }
    });
    let hist_ns = hist_d.as_nanos() as f64 / reps as f64;
    rows.push(vec![
        "Histogram::record".into(),
        format!("{reps} ops"),
        format!("{hist_ns:.1} ns/op"),
        String::new(),
    ]);

    let reg = obs::MetricsRegistry::new();
    let stmt_reps = reps / 10;
    let (_, rec_d) = timed(|| {
        for i in 0..stmt_reps {
            reg.record_statement_exec("SELECT ?", i % 100_000, 1, false, None, None);
        }
    });
    let record_ns = rec_d.as_nanos() as f64 / stmt_reps as f64;
    rows.push(vec![
        "record_statement_exec".into(),
        format!("{stmt_reps} ops"),
        format!("{record_ns:.1} ns/op"),
        String::new(),
    ]);
    let (_, stage_d) = timed(|| {
        for i in 0..stmt_reps {
            reg.record_stage("solve/compile", i % 100_000);
        }
    });
    let stage_ns = stage_d.as_nanos() as f64 / stmt_reps as f64;
    rows.push(vec![
        "record_stage".into(),
        format!("{stmt_reps} ops"),
        format!("{stage_ns:.1} ns/op"),
        String::new(),
    ]);

    // Instrumentation share of the executor micro-suite: run real
    // statements through a session (shape fingerprinting + statement
    // recording happen on every one), then price that recording work
    // against the measured wall clock.
    let n: i64 = if cfg.quick { 5_000 } else { 30_000 };
    let mut x: i64 = 0x5DEECE66D;
    let mut rnd = |m: i64| {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (x >> 33).rem_euclid(m)
    };
    let fact: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::Int(rnd(64)), Value::Float(rnd(10_000) as f64 / 10.0)])
        .collect();
    let mut s = Session::new();
    s.db_mut().put_table("fact", Table::from_rows(&["id", "g", "a"], fact));
    let suite = [
        "SELECT id, g, a FROM fact",
        "SELECT id, a FROM fact WHERE a > 500 AND g < 32",
        "SELECT g, count(*), sum(a), avg(a) FROM fact GROUP BY g",
    ];
    let iters = if cfg.quick { 5 } else { 10 };
    let mut statements = 0u64;
    let (_, suite_d) = timed(|| {
        for _ in 0..iters {
            for sql in &suite {
                let _ = s.execute(sql);
                statements += 1;
            }
        }
    });
    // Per-statement instrumentation: one shape fingerprint + one
    // statement record (which includes one histogram record).
    let parsed = sqlengine::parser::parse_statement(suite[2]).ok();
    let shape_ns = match &parsed {
        Some(stmt) => {
            let shape_reps = 10_000u64;
            let (_, d) = timed(|| {
                for _ in 0..shape_reps {
                    let _ = sqlengine::statement_shape(stmt);
                }
            });
            d.as_nanos() as f64 / shape_reps as f64
        }
        None => 0.0,
    };
    let instr_nanos = statements as f64 * (shape_ns + record_ns);
    let overhead_pct = 100.0 * instr_nanos / (suite_d.as_nanos() as f64).max(1.0);
    rows.push(vec![
        "executor micro-suite".into(),
        format!("{statements} stmts"),
        secs(suite_d),
        format!("instrumentation {overhead_pct:.3}%"),
    ]);

    // Progress emission on a long MIP: identical hard knapsacks, one
    // silent, one with a counting progress sink installed (emission is
    // throttled to one event per 100 ms inside the solver).
    let items = if cfg.quick { 36 } else { 44 };
    let knapsack_session = |with_sink: Option<Arc<AtomicU64>>| -> (Duration, u64) {
        let mut s = Session::new();
        if let Some(counter) = &with_sink {
            let counter = counter.clone();
            s.set_progress_sink(Arc::new(move |_ev: &obs::ProgressEvent| {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
        }
        s.execute("CREATE TABLE items (id int, weight float8, value float8, pick float8)")
            .or_die("create");
        for i in 0..items {
            s.execute(&format!(
                "INSERT INTO items VALUES ({i}, {}, {}, NULL)",
                (i * 5) % 11 + 1,
                (i * 7) % 13 + 1,
            ))
            .or_die("insert");
        }
        let (out, d) = timed(|| {
            s.execute(
                "SOLVESELECT q(pick) AS (SELECT * FROM items) \
                 MAXIMIZE (SELECT sum(value * pick) FROM q) \
                 SUBJECTTO (SELECT sum(weight * pick) <= 80 FROM q), \
                           (SELECT 0 <= pick <= 1 FROM q) \
                 USING solverlp.cbc()",
            )
        });
        out.or_die("knapsack solves");
        let events = with_sink.map(|c| c.load(Ordering::Relaxed)).unwrap_or(0);
        (d, events)
    };
    let (silent_d, _) = knapsack_session(None);
    let counter = Arc::new(AtomicU64::new(0));
    let (sink_d, events) = knapsack_session(Some(counter));
    let delta_pct =
        100.0 * (sink_d.as_secs_f64() - silent_d.as_secs_f64()) / silent_d.as_secs_f64().max(1e-9);
    rows.push(vec![
        "MIP, no progress sink".into(),
        format!("{items} items"),
        secs(silent_d),
        String::new(),
    ]);
    rows.push(vec![
        "MIP, progress sink".into(),
        format!("{events} event(s)"),
        secs(sink_d),
        format!("delta {delta_pct:+.1}%"),
    ]);

    Figure {
        id: "Obs".into(),
        title: "Telemetry-plane overhead (histograms, fingerprints, progress)".into(),
        headers: vec!["probe".into(), "volume".into(), "time".into(), "overhead".into()],
        rows,
        notes: vec![
            format!(
                "instrumentation share of the executor micro-suite: {overhead_pct:.3}% \
                 (target < 2%)"
            ),
            "progress emission is throttled to one event per 100 ms; its cost is one \
             atomic load per solver progress point"
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// Table 3 claim checks
// ---------------------------------------------------------------------------

pub fn summary(cfg: Config) -> Figure {
    // Claim A: shared models ≈ 2x less P3-P4 code.
    let shared_model = eloc(uc1::S_SHARED_MODEL);
    let p34_plain = eloc(uc1::S_3SS_P3) + eloc(uc1::S_3SS_P4);
    let p34_shared = eloc(uc1::S_SHARED_P3) + eloc(uc1::S_SHARED_P4) + shared_model;
    // Claim B: CDTEs up to 3x less code for the LR spec.
    let lr_ratio = eloc(P2_NOCDTE) as f64 / eloc(P2_CDTE) as f64;
    // Claim C: composite solvers ≈ 5x less code for P2-P4.
    let p24_explicit = eloc(uc1::S_3SS_P2) + eloc(uc1::S_3SS_P3) + eloc(uc1::S_3SS_P4);
    let p24_solvers = eloc(uc1::S_SOLVERS);
    // Claim D: specialized forecasting much faster than the LP route.
    let fig = fig11(cfg);
    let lp_time: f64 = fig.rows[1][2].parse().unwrap_or(0.0);
    let wrapped_time: f64 = fig.rows[2][2].parse().unwrap_or(1.0);
    // Floor the denominator at 50 µs so sub-resolution runs don't
    // inflate the ratio.
    let speedup = lp_time / wrapped_time.max(5e-5);

    Figure {
        id: "Table 3".into(),
        title: "Feature-impact claims (paper Table 3) — measured".into(),
        headers: vec!["claim".into(), "paper".into(), "measured".into()],
        rows: vec![
            vec![
                "shared models: less P3-P4 code".into(),
                "up to 2x".into(),
                format!(
                    "{:.2}x ({p34_plain} vs {p34_shared} eLOC)",
                    p34_plain as f64 / p34_shared as f64
                ),
            ],
            vec![
                "CDTEs: less SOLVESELECT code (LR)".into(),
                "up to 3x".into(),
                format!("{lr_ratio:.2}x"),
            ],
            vec![
                "composite solvers: less P2-P4 code".into(),
                "up to 5x".into(),
                format!(
                    "{:.2}x ({p24_explicit} vs {p24_solvers} eLOC)",
                    p24_explicit as f64 / p24_solvers as f64
                ),
            ],
            vec![
                "specialized forecasting speedup".into(),
                "~6-8x".into(),
                format!("{speedup:.1}x"),
            ],
        ],
        notes: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_serialize_to_json_artifacts() {
        let f = Figure {
            id: "Fig 9".into(),
            title: "a \"quoted\" title".into(),
            headers: vec!["x".into(), "y".into()],
            rows: vec![vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
            notes: vec!["line\nbreak".into()],
        };
        assert_eq!(f.json_filename(), "BENCH_FIG_9.json");
        let j = f.to_json();
        assert!(j.contains("\"id\": \"Fig 9\""), "{j}");
        assert!(j.contains("a \\\"quoted\\\" title"), "{j}");
        assert!(j.contains("[\"1\", \"2\"]"), "{j}");
        assert!(j.contains("line\\nbreak"), "{j}");
    }

    #[test]
    fn presolve_figure_shows_node_reduction_at_equal_objectives() {
        let f = presolve(Config::quick());
        assert_eq!(f.rows.len(), 6);
        // Objectives agree within each on/off pair.
        for pair in f.rows.chunks(2) {
            assert_eq!(pair[0][0], pair[1][0]);
            assert_eq!((pair[0][1].as_str(), pair[1][1].as_str()), ("on", "off"));
            assert_eq!(pair[0][7], pair[1][7], "objective drift in {}", pair[0][0]);
        }
        // The bound-snap MIP demonstrates the payoff: fewer B&B nodes
        // with presolve on, and nonzero reduction counters.
        let snap = &f.rows[4..6];
        let nodes = |r: &Vec<String>| -> u64 { r[3].parse().unwrap() };
        assert!(
            nodes(&snap[0]) < nodes(&snap[1]),
            "expected fewer nodes with presolve on: {} vs {}",
            snap[0][3],
            snap[1][3]
        );
        assert!(snap[0][5].parse::<u64>().unwrap() > 0, "bounds tightened should be counted");
    }

    #[test]
    fn phase_eloc_splits_on_markers() {
        let src = "\
header line
% --- P2: forecast
x = 1;
y = 2;
% --- P4: optimize
z = 3;
";
        let e = phase_eloc(src);
        assert_eq!(e, [1, 2, 0, 1]);
    }

    #[test]
    fn fig3a_shapes_hold() {
        let f = fig3a(Config::quick());
        assert_eq!(f.rows.len(), 5);
        let total = |i: usize| -> usize { f.rows[i][5].parse().unwrap() };
        // S-solvers is the most compact; S-shared is within a couple of
        // lines of S-3SS (this engine's terse recursive-CTE syntax makes
        // duplicating the model cheap — see EXPERIMENTS.md, Fig 3a).
        let by_name: std::collections::HashMap<&str, usize> =
            (0..5).map(|i| (f.rows[i][0].as_str(), total(i))).collect();
        assert!(by_name["S-solvers"] < by_name["S-3SS"]);
        assert!(by_name["S-shared"] <= by_name["S-3SS"] + 2);
        assert!(by_name["S-solvers"] < by_name["Matlab-native"]);
    }

    #[test]
    fn fig6_shapes_hold() {
        let f = fig6(Config::quick());
        // No-CDTE P2 needs more code than CDTE.
        let nocdte: usize = f.rows[0][1].parse().unwrap();
        let cdte: usize = f.rows[0][2].parse().unwrap();
        assert!(nocdte > cdte, "{nocdte} vs {cdte}");
        // P3 doesn't benefit much from CDTEs (paper Fig. 6).
        let p3_nocdte: usize = f.rows[1][1].parse().unwrap();
        let p3_cdte: usize = f.rows[1][2].parse().unwrap();
        assert!(p3_nocdte.abs_diff(p3_cdte) <= 3);
    }

    #[test]
    fn table1_runs() {
        let f = table1(Config::quick());
        assert_eq!(f.rows.len(), 10);
        // The last 5 pvSupply cells are filled.
        for r in &f.rows[5..] {
            assert_ne!(r[4], "NULL");
        }
    }

    #[test]
    fn fig11_runs_and_wrapped_is_fastest() {
        let f = fig11(Config::quick());
        let lp: f64 = f.rows[1][2].parse().unwrap();
        let wrapped: f64 = f.rows[2][2].parse().unwrap();
        assert!(wrapped < lp, "wrapped {wrapped} vs LP {lp}");
    }
}
