//! # bench — the reproduction harness for the paper's evaluation (§5)
//!
//! One module per concern: [`eloc`] implements the implementation-size
//! metric, [`setup`] prepares sessions/datasets, [`uc1`]/[`uc2`] run the
//! SolveDB+ pipelines from the checked-in SQL scripts, and [`figures`]
//! regenerates every figure's data series. The `reproduce` binary prints
//! them; the Criterion benches time the hot paths.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod eloc;
pub mod figures;
pub mod setup;
pub mod uc1;
pub mod uc2;

/// Benchmark-grade unwrapping: the harness aborts on a broken setup
/// step, but every abort names the step. This is the lint-wall-approved
/// replacement for `unwrap`/`expect` in bench code — panicking is the
/// right response (a benchmark with missing inputs must not report
/// numbers), silently losing the context is not.
pub trait OrDie<T> {
    /// Unwrap, panicking with `what` as context on failure.
    fn or_die(self, what: &str) -> T;
}

impl<T, E: std::fmt::Debug> OrDie<T> for Result<T, E> {
    fn or_die(self, what: &str) -> T {
        match self {
            Ok(v) => v,
            Err(e) => panic!("bench: {what}: {e:?}"),
        }
    }
}

impl<T> OrDie<T> for Option<T> {
    fn or_die(self, what: &str) -> T {
        match self {
            Some(v) => v,
            None => panic!("bench: {what}: missing value"),
        }
    }
}

/// Crew-rostering set-partitioning model, shared by the `analyze`
/// sweep, the matrix figure and (mirrored in Rust) by
/// `examples/crew_rostering.rs`: choose pairings so that every flight
/// leg is covered by exactly one chosen pairing. Every coverage row is
/// a pure set-partitioning row — the SD020 census and the cut-separator
/// registration see the structure on a realistic model. Some pairings
/// span three legs, so the matrix is deliberately *not* an interval or
/// network matrix: the census fires without a whole-matrix TU proof.
pub const CREW_SETUP: &str = "
    CREATE TABLE pairings (pid int, pcost float8, pick int);
    INSERT INTO pairings VALUES
      (1, 9, NULL), (2, 14, NULL), (3, 8, NULL), (4, 5, NULL),
      (5, 10, NULL), (6, 11, NULL), (7, 9, NULL), (8, 10, NULL),
      (9, 13, NULL), (10, 12, NULL), (11, 7, NULL), (12, 15, NULL);
    CREATE TABLE legs (pid int, flight int);
    INSERT INTO legs VALUES
      (1, 1), (1, 2),
      (2, 3), (2, 4), (2, 5),
      (3, 6), (3, 7),
      (4, 8),
      (5, 1), (5, 3),
      (6, 2), (6, 4),
      (7, 5), (7, 6),
      (8, 7), (8, 8),
      (9, 1), (9, 2), (9, 3),
      (10, 4), (10, 5), (10, 6),
      (11, 7), (11, 8),
      (12, 2), (12, 5), (12, 8)";

/// The crew-rostering solve statement over [`CREW_SETUP`]'s tables.
pub const CREW_SOLVE: &str = "SOLVESELECT p(pick) AS (SELECT * FROM pairings) \
     MINIMIZE (SELECT sum(pcost * pick) FROM p) \
     SUBJECTTO (SELECT sum(pick) = 1 FROM p JOIN legs ON p.pid = legs.pid \
                  GROUP BY legs.flight), \
               (SELECT 0 <= pick <= 1 FROM p) \
     USING solverlp.cbc()";
