//! # bench — the reproduction harness for the paper's evaluation (§5)
//!
//! One module per concern: [`eloc`] implements the implementation-size
//! metric, [`setup`] prepares sessions/datasets, [`uc1`]/[`uc2`] run the
//! SolveDB+ pipelines from the checked-in SQL scripts, and [`figures`]
//! regenerates every figure's data series. The `reproduce` binary prints
//! them; the Criterion benches time the hot paths.

#![forbid(unsafe_code)]

pub mod eloc;
pub mod figures;
pub mod setup;
pub mod uc1;
pub mod uc2;
