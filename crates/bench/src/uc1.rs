//! SolveDB+ implementations of UC1 (paper §5.3): the three
//! configurations S-3SS, S-shared and S-solvers, executed from the
//! checked-in SQL scripts (the same files the eLOC figures measure).

use baselines::PhaseTimes;
use obs::timed;
use solvedbplus_core::Session;
use sqlengine::error::Result;

pub const S_3SS_P1: &str = include_str!("../scripts/uc1/s_3ss_p1.sql");
pub const S_3SS_P2: &str = include_str!("../scripts/uc1/s_3ss_p2.sql");
pub const S_3SS_P3: &str = include_str!("../scripts/uc1/s_3ss_p3.sql");
pub const S_3SS_P4: &str = include_str!("../scripts/uc1/s_3ss_p4.sql");
pub const S_SHARED_MODEL: &str = include_str!("../scripts/uc1/s_shared_model.sql");
pub const S_SHARED_P3: &str = include_str!("../scripts/uc1/s_shared_p3.sql");
pub const S_SHARED_P4: &str = include_str!("../scripts/uc1/s_shared_p4.sql");
pub const S_SOLVERS: &str = include_str!("../scripts/uc1/s_solvers.sql");
pub const MATLAB_NATIVE_M: &str = include_str!("../scripts/uc1/matlab_native.m");
pub const MATLAB_YALMIP_M: &str = include_str!("../scripts/uc1/matlab_yalmip.m");
pub const MADLIB_PYTHON_PY: &str = include_str!("../scripts/uc1/madlib_python.py");

/// Run a script with an optional cap on P3 annealing iterations (the
/// scripts bake in 400; benches can scale it down).
fn run(s: &mut Session, script: &str, p3_iterations: Option<usize>) -> Result<()> {
    let sql = match p3_iterations {
        Some(n) => script.replace("iterations := 400", &format!("iterations := {n}")),
        None => script.to_string(),
    };
    s.execute_script(&sql)?;
    Ok(())
}

/// S-3SS: three independent SOLVESELECTs linked by temp tables.
pub fn run_s3ss(s: &mut Session, p3_iterations: Option<usize>) -> Result<PhaseTimes> {
    let (r, p1) = timed(|| run(s, S_3SS_P1, None));
    r?;
    let (r, p2) = timed(|| run(s, S_3SS_P2, None));
    r?;
    let (r, p3) = timed(|| run(s, S_3SS_P3, p3_iterations));
    r?;
    let (r, p4) = timed(|| run(s, S_3SS_P4, None));
    r?;
    Ok(PhaseTimes { p1, p2, p3, p4 })
}

/// S-shared: same pipeline, but P3/P4 reuse the stored LTI model.
/// Model installation counts into P3 (the paper splits the shared model
/// evenly between its users; attributing it to P3 keeps the comparison
/// conservative).
pub fn run_sshared(s: &mut Session, p3_iterations: Option<usize>) -> Result<PhaseTimes> {
    let (r, p1) = timed(|| run(s, S_3SS_P1, None));
    r?;
    let (r, p2) = timed(|| run(s, S_3SS_P2, None));
    r?;
    let (r, p3) = timed(|| {
        run(s, S_SHARED_MODEL, None)?;
        run(s, S_SHARED_P3, p3_iterations)
    });
    r?;
    let (r, p4) = timed(|| run(s, S_SHARED_P4, None));
    r?;
    Ok(PhaseTimes { p1, p2, p3, p4 })
}

/// S-solvers: one SOLVESELECT invoking the composite scheduler.
/// The composite does P2-P4 internally; its time is reported as P4 = 0
/// split: everything lands in one number, so we time the single call and
/// report it under p2..p4 proportionally measured inside? The paper
/// reports the whole composite call as "optimization"; we report the
/// single statement's time as p4 and the (trivial) setup as p1.
pub fn run_ssolvers(s: &mut Session, fit_iterations: usize) -> Result<PhaseTimes> {
    let sql = S_SOLVERS
        .replace("price := 0.12)", &format!("price := 0.12, fit_iterations := {fit_iterations})"));
    let (r, total) = timed(|| s.execute_script(&sql));
    r?;
    Ok(PhaseTimes {
        p1: std::time::Duration::ZERO,
        p2: std::time::Duration::ZERO,
        p3: std::time::Duration::ZERO,
        p4: total,
    })
}

/// Validate a produced plan: all horizon loads within limits.
pub fn validate_plan(s: &mut Session) -> Result<()> {
    let t = s.query("SELECT hload, intemp FROM plan")?;
    for row in &t.rows {
        if let Ok(h) = row[0].as_f64() {
            assert!((0.0..=17_000.0 + 1e-6).contains(&h), "load {h} out of range");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::uc1_session;

    #[test]
    fn s3ss_pipeline_runs_end_to_end() {
        let (mut s, _) = uc1_session(24 * 4, 12, 17);
        let times = run_s3ss(&mut s, Some(60)).unwrap();
        assert!(times.total().as_nanos() > 0);
        validate_plan(&mut s).unwrap();
        // Forecast exists for every horizon hour.
        assert_eq!(
            s.query_scalar("SELECT count(*) FROM pv_forecast").unwrap(),
            sqlengine::Value::Int(12)
        );
        // The comfort band held on all but the final state.
        let t = s.query("SELECT intemp FROM plan ORDER BY time").unwrap();
        for (i, row) in t.rows.iter().enumerate() {
            let x = row[0].as_f64().unwrap();
            let _ = i;
            assert!((20.0 - 1e-6..=25.0 + 1e-6).contains(&x), "intemp {x}");
        }
    }

    #[test]
    fn sshared_matches_s3ss_solution() {
        let (mut a, _) = uc1_session(24 * 4, 12, 17);
        run_s3ss(&mut a, Some(60)).unwrap();
        let plan_a = a.query("SELECT hload FROM plan ORDER BY time").unwrap();

        let (mut b, _) = uc1_session(24 * 4, 12, 17);
        run_sshared(&mut b, Some(60)).unwrap();
        let plan_b = b.query("SELECT hload FROM plan ORDER BY time").unwrap();

        assert_eq!(plan_a.num_rows(), plan_b.num_rows());
        // Same P3 seed and data → identical fitted params → identical LP.
        for (ra, rb) in plan_a.rows.iter().zip(&plan_b.rows) {
            let (x, y) = (ra[0].as_f64().unwrap(), rb[0].as_f64().unwrap());
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn ssolvers_produces_complete_plan() {
        let (mut s, _) = uc1_session(24 * 4, 12, 17);
        run_ssolvers(&mut s, 200).unwrap();
        let t = s.query("SELECT count(*) FROM plan").unwrap();
        assert_eq!(t.scalar().unwrap(), sqlengine::Value::Int(24 * 4 + 12));
    }
}
