//! Experiment setup: sessions with the datasets installed and the
//! composite solvers of the "S-solvers" configuration (paper §5.3).

use crate::OrDie;
use baselines::uc1::{p4_direct, Uc1Task};
use datagen::EnergyRow;
use forecast::{Forecaster, LinearRegression};
use solvedbplus_core::problem::ProblemInstance;
use solvedbplus_core::{Session, SolveContext, Solver};
use sqlengine::error::{Error, Result};
use sqlengine::types::timeval;
use sqlengine::{Table, Value};
use ssmodel::fit_hvac;
use std::sync::Arc;

/// Build a session with the UC1 planning table `input` installed
/// (history rows complete, horizon rows with forecast `outtemp` and NULL
/// decision cells) and the composite scheduler solver registered.
pub fn uc1_session(history: usize, horizon: usize, seed: u64) -> (Session, Vec<EnergyRow>) {
    let rows = datagen::energy_series(history + horizon, seed);
    let mut s = Session::new();
    s.db_mut().put_table("input", planning_table(&rows, history));
    s.install_solver(Arc::new(HvacScheduler::default()));
    // The hvac_sse UDF mirrors the P3 fitness for UDF-based variants.
    let u: Vec<Vec<f64>> = rows[..history].iter().map(|r| vec![r.out_temp, r.h_load]).collect();
    let measured: Vec<f64> = rows[..history].iter().map(|r| r.in_temp).collect();
    s.set_hvac_training(u, measured);
    (s, rows)
}

/// The UC1 planning table: first `history` rows complete, the rest with
/// NULL `intemp`/`hload`/`pvsupply` (Table 1's shape).
pub fn planning_table(rows: &[EnergyRow], history: usize) -> Table {
    let data: Vec<Vec<Value>> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if i < history {
                vec![
                    Value::Timestamp(r.time),
                    Value::Float(r.out_temp),
                    Value::Float(r.in_temp),
                    Value::Float(r.h_load),
                    Value::Float(r.pv_supply),
                ]
            } else {
                vec![
                    Value::Timestamp(r.time),
                    Value::Float(r.out_temp),
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ]
            }
        })
        .collect();
    let mut t = Table::from_rows(&["time", "outtemp", "intemp", "hload", "pvsupply"], data);
    for c in t.schema.columns.iter_mut() {
        c.ty = if c.name == "time" {
            sqlengine::DataType::Timestamp
        } else {
            sqlengine::DataType::Float
        };
    }
    t
}

/// The composite solver behind the `S-solvers` configuration: a single
/// `SOLVESELECT ... USING hvac_scheduler(...)` runs P2 (LR forecast),
/// P3 (LTI fit) and P4 (cost LP) internally and fills all decision
/// columns of the planning table.
#[derive(Debug, Default)]
pub struct HvacScheduler;

impl Solver for HvacScheduler {
    fn name(&self) -> &str {
        "hvac_scheduler"
    }

    fn solve(&self, _ctx: &SolveContext<'_>, prob: &ProblemInstance) -> Result<Table> {
        let rel = &prob.relations[0];
        let t = &rel.table;
        let col = |n: &str| -> Result<usize> {
            t.schema
                .index_of(n)
                .ok_or_else(|| Error::solver(format!("hvac_scheduler: missing column '{n}'")))
        };
        let (c_time, c_out, c_in, c_load, c_pv) =
            (col("time")?, col("outtemp")?, col("intemp")?, col("hload")?, col("pvsupply")?);
        let comfort = (
            prob.param_f64("comfort_low").transpose()?.unwrap_or(20.0),
            prob.param_f64("comfort_high").transpose()?.unwrap_or(25.0),
        );
        let power_max = prob.param_f64("power_max").transpose()?.unwrap_or(17_000.0);
        let price = prob.param_f64("price").transpose()?.unwrap_or(0.12);

        // Time-ordered split into history (pvsupply known) and horizon.
        let mut order: Vec<usize> = (0..t.num_rows()).collect();
        order.sort_by(|&a, &b| t.rows[a][c_time].cmp_total(&t.rows[b][c_time]));
        let (mut hist, mut plan) = (Vec::new(), Vec::new());
        for &r in &order {
            if t.rows[r][c_pv].is_null() {
                plan.push(r);
            } else {
                hist.push(r);
            }
        }
        if hist.is_empty() || plan.is_empty() {
            return Err(Error::solver(
                "hvac_scheduler: need both history rows and NULL planning rows",
            ));
        }
        let f = |r: usize, c: usize| t.rows[r][c].as_f64();

        // P2: LR forecast of PV supply from outtemp + hour-of-day.
        let y: Vec<f64> = hist.iter().map(|&r| f(r, c_pv)).collect::<Result<_>>()?;
        let hour_of = |r: usize| -> Result<f64> {
            match &t.rows[r][c_time] {
                Value::Timestamp(ts) => Ok(timeval::decompose(*ts).hour as f64),
                _ => Err(Error::solver("hvac_scheduler: time column must be timestamp")),
            }
        };
        let feats = vec![
            hist.iter().map(|&r| f(r, c_out)).collect::<Result<Vec<_>>>()?,
            hist.iter().map(|&r| hour_of(r)).collect::<Result<Vec<_>>>()?,
        ];
        let fut = vec![
            plan.iter().map(|&r| f(r, c_out)).collect::<Result<Vec<_>>>()?,
            plan.iter().map(|&r| hour_of(r)).collect::<Result<Vec<_>>>()?,
        ];
        let mut lr = LinearRegression::new();
        lr.fit(&y, &feats).map_err(Error::solver)?;
        let pv: Vec<f64> = lr
            .forecast(plan.len(), &fut)
            .map_err(Error::solver)?
            .into_iter()
            .map(|v| v.max(0.0))
            .collect();

        // P3: LTI fit on the history.
        let u: Vec<Vec<f64>> =
            hist.iter().map(|&r| Ok(vec![f(r, c_out)?, f(r, c_load)?])).collect::<Result<_>>()?;
        let measured: Vec<f64> = hist.iter().map(|&r| f(r, c_in)).collect::<Result<_>>()?;
        let iterations = prob.param_usize("fit_iterations").transpose()?.unwrap_or(400);
        let fit = fit_hvac(&u, &measured, ((0.0, 1.0), (0.0, 1.0), (0.0, 0.01)), iterations, 5);

        // P4: cost LP.
        let mut task = Uc1Task::new(vec![], fut[0].clone());
        task.comfort = comfort;
        task.power = (0.0, power_max);
        task.price = price;
        let x0 = *measured.last().or_die("non-empty history");
        let (hload, _) = p4_direct(&task, (fit.a1, fit.b1, fit.b2), &pv, x0);

        // Output: fill the horizon cells; simulate intemp for reporting.
        let mut out = t.clone();
        let model = ssmodel::Lti::hvac(fit.a1, fit.b1, fit.b2);
        let mut x = x0;
        for (k, &r) in plan.iter().enumerate() {
            out.rows[r][c_pv] = Value::Float(pv[k]);
            out.rows[r][c_load] = Value::Float(hload[k]);
            out.rows[r][c_in] = Value::Float(x);
            x = model.step(&[x], &[fut[0][k], hload[k]])[0];
        }
        for c in [c_pv, c_load, c_in] {
            if out.schema.columns[c].ty == sqlengine::DataType::Unknown {
                out.schema.columns[c].ty = sqlengine::DataType::Float;
            }
        }
        Ok(out)
    }
}

/// A session prepared for the feature scripts under `scripts/features`:
/// the UC1 pipeline through P3 plus the shared LTI model, and the
/// `lrdata`/`lrseries` tables the P2 variants train on.
pub fn feature_session() -> Result<Session> {
    let (mut s, data) = uc1_session(96, 12, 33);
    s.execute_script(crate::uc1::S_3SS_P1)?; // hist + horizon
    s.execute_script(crate::uc1::S_3SS_P2)?; // lr_pars + pv_forecast
    s.execute_script(&crate::uc1::S_3SS_P3.replace("iterations := 400", "iterations := 40"))?; // hvac_pars
    s.execute_script(crate::uc1::S_SHARED_MODEL)?; // model
                                                   // lrdata / lrseries for the P2 feature scripts.
    let lrdata: Vec<Vec<Value>> = data[..40]
        .iter()
        .enumerate()
        .map(|(i, r)| {
            vec![
                Value::Int(i as i64 + 1),
                Value::Float(r.out_temp),
                Value::Float(timeval::decompose(r.time).hour as f64),
                Value::Float(r.pv_supply),
            ]
        })
        .collect();
    s.db_mut().put_table("lrdata", Table::from_rows(&["rid", "outtemp", "hr", "pvsupply"], lrdata));
    let mut series = planning_table(&data[..52], 40);
    // lr_solver fills the single `y` decision column: rename pvsupply.
    let idx = series.schema.index_of("pvsupply").or_die("pvsupply column");
    series.schema.columns[idx].name = "y".into();
    s.db_mut().put_table("lrseries", series);
    Ok(s)
}

/// A session with the UC2 supply-chain tables installed.
pub fn uc2_session(n_items: usize, months: usize, seed: u64) -> (Session, Vec<datagen::ScItem>) {
    let items = datagen::supply_chain(n_items, months, seed);
    let mut s = Session::new();
    datagen::install_supply_chain(s.db_mut(), &items);
    (s, items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_scheduler_fills_all_decision_columns() {
        let (mut s, _) = uc1_session(24 * 5, 12, 42);
        let t = s
            .query(
                "SOLVESELECT t(intemp, hload, pvsupply) AS (SELECT * FROM input) \
                 USING hvac_scheduler(comfort_low := 20, comfort_high := 25, \
                                      power_max := 17000, price := 0.12, \
                                      fit_iterations := 200)",
            )
            .unwrap();
        assert_eq!(t.num_rows(), 24 * 5 + 12);
        for col in ["intemp", "hload", "pvsupply"] {
            assert!(
                t.column_values(col).unwrap().iter().all(|v| !v.is_null()),
                "column {col} still has NULLs"
            );
        }
        // Loads respect the power limit.
        for v in t.column_values("hload").unwrap() {
            let h = v.as_f64().unwrap();
            assert!((0.0..=17_000.0 + 1e-6).contains(&h));
        }
    }

    #[test]
    fn uc2_session_has_tables() {
        let (mut s, items) = uc2_session(5, 24, 1);
        assert_eq!(items.len(), 5);
        assert_eq!(s.query_scalar("SELECT count(*) FROM orders").unwrap(), Value::Int(5 * 24));
    }
}
