//! Static-analysis sweep over the checked-in benchmark scripts.
//!
//! Every `SOLVESELECT` in every script — top level, inside CTAS/INSERT,
//! or nested in a FROM subquery — is run through `EXPLAIN CHECK` and
//! `EXPLAIN PRESOLVE` in a session prepared the same way the benchmarks
//! prepare it (each script executes after being analyzed, so later
//! scripts see the tables earlier ones create). Every plain SELECT
//! statement is additionally run through `EXPLAIN SELECT`, exercising
//! the logical planner over the shipped scripts.
//!
//! Exit status is the CI contract:
//! - an analyzer **panic** fails the sweep,
//! - an **error-severity** finding on a shipped script fails the sweep
//!   (the examples are expected to stay clean),
//! - execution errors in the scripts themselves are tolerated and
//!   reported (some solves only compile mid-pipeline).
//!
//! Every script is additionally run through the whole-script dataflow
//! analyzer (`sqlengine::script`, SD013–SD018) against the session's
//! catalog at that point; error-severity findings fail the sweep.
//!
//! With `--persistent`, every sweep session runs durably (a throwaway
//! data directory per session, fsync `never`), so the whole script
//! corpus additionally exercises the WAL commit path.
//!
//! Positional arguments are script paths: `analyze a.sql b.sql` lints,
//! analyzes and executes just those files, in order, on one fresh
//! session — the same contract, scoped to the given scripts.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use bench::setup::{feature_session, uc1_session, uc2_session};
use bench::{figures, uc1, uc2, OrDie};
use solvedbplus_core::Session;
use sqlengine::ast::{ExplainMode, Query, SetExpr, SolveStmt, Statement, TableRef};
use sqlengine::diag::Severity;
use sqlengine::parser;
use sqlengine::script::{analyze_script, CatalogSnapshot};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use storage::{FsyncPolicy, StorageEngine};

/// Collect every `SOLVESELECT` reachable from a statement.
fn solves_in_statement(stmt: &Statement) -> Vec<&SolveStmt> {
    let mut out = Vec::new();
    match stmt {
        Statement::Solve(s) => out.push(s),
        Statement::Explain { stmt, .. } => out.push(stmt),
        Statement::Query(q) => solves_in_query(q, &mut out),
        Statement::Insert { source, .. } => solves_in_query(source, &mut out),
        Statement::CreateTable { as_query: Some(q), .. } => solves_in_query(q, &mut out),
        Statement::CreateView { query, .. } => solves_in_query(query, &mut out),
        _ => {}
    }
    out
}

/// The queries the planner sees: top-level SELECTs plus the sources of
/// INSERT … SELECT, CTAS and CREATE VIEW (model instantiation shapes).
fn queries_in_statement(stmt: &Statement) -> Vec<&Query> {
    match stmt {
        Statement::Query(q) => vec![q],
        Statement::Insert { source, .. } => vec![source],
        Statement::CreateTable { as_query: Some(q), .. } => vec![q],
        Statement::CreateView { query, .. } => vec![query],
        _ => vec![],
    }
}

fn solves_in_query<'a>(q: &'a Query, out: &mut Vec<&'a SolveStmt>) {
    for cte in &q.with {
        solves_in_query(&cte.query, out);
    }
    solves_in_set_expr(&q.body, out);
}

fn solves_in_set_expr<'a>(e: &'a SetExpr, out: &mut Vec<&'a SolveStmt>) {
    match e {
        SetExpr::Solve(s) => out.push(s),
        SetExpr::Query(q) => solves_in_query(q, out),
        SetExpr::SetOp { left, right, .. } => {
            solves_in_set_expr(left, out);
            solves_in_set_expr(right, out);
        }
        SetExpr::Select(sel) => {
            for t in &sel.from {
                solves_in_table_ref(t, out);
            }
        }
        SetExpr::Values(_) => {}
    }
}

fn solves_in_table_ref<'a>(t: &'a TableRef, out: &mut Vec<&'a SolveStmt>) {
    match t {
        TableRef::Named { .. } => {}
        TableRef::Subquery { query, .. } => solves_in_query(query, out),
        TableRef::Join { left, right, .. } => {
            solves_in_table_ref(left, out);
            solves_in_table_ref(right, out);
        }
    }
}

#[derive(Default)]
struct Sweep {
    scripts: usize,
    solves: usize,
    explains: usize,
    selects: usize,
    planned: usize,
    script_findings: usize,
    matrix_findings: usize,
    tolerated: Vec<String>,
    failures: Vec<String>,
}

impl Sweep {
    /// Run one EXPLAIN mode over a solve statement. Analyzer panics and
    /// error-severity findings are sweep failures; execution errors
    /// (e.g. a solve that only compiles mid-pipeline) are tolerated.
    fn explain(&mut self, s: &mut Session, name: &str, solve: &SolveStmt, mode: ExplainMode) {
        let label = match mode {
            ExplainMode::Check => "EXPLAIN CHECK",
            ExplainMode::Presolve => "EXPLAIN PRESOLVE",
            _ => "EXPLAIN",
        };
        let wrapped = Statement::Explain { mode, stmt: Box::new(solve.clone()) };
        let run = catch_unwind(AssertUnwindSafe(|| s.execute_statement(&wrapped)));
        self.explains += 1;
        match run {
            Err(_) => self.failures.push(format!("{name}: {label} PANICKED")),
            Ok(Err(e)) => self.tolerated.push(format!("{name}: {label}: {e}")),
            Ok(Ok(res)) => {
                if mode != ExplainMode::Check {
                    return;
                }
                let t = match res.into_table() {
                    Ok(t) => t,
                    Err(e) => {
                        self.tolerated.push(format!("{name}: {label} output: {e}"));
                        return;
                    }
                };
                for row in &t.rows {
                    let (code, sev, msg) = (&row[0], &row[1], &row[2]);
                    if code.as_str().is_ok_and(|c| ("SD020".."SD026").contains(&c)) {
                        self.matrix_findings += 1;
                    }
                    if sev.as_str() == Ok("error") {
                        self.failures.push(format!("{name}: {label}: {code} ({msg})"));
                    }
                }
            }
        }
    }

    /// `EXPLAIN SELECT` over a plain query statement: the planner must
    /// not panic, and must either print an optimized plan or name the
    /// reason it fell back to the row interpreter.
    fn explain_select(&mut self, s: &mut Session, name: &str, q: &Query) {
        let wrapped = Statement::ExplainQuery { analyze: false, query: Box::new(q.clone()) };
        let run = catch_unwind(AssertUnwindSafe(|| s.execute_statement(&wrapped)));
        self.selects += 1;
        match run {
            Err(_) => self.failures.push(format!("{name}: EXPLAIN SELECT PANICKED")),
            Ok(Err(e)) => self.tolerated.push(format!("{name}: EXPLAIN SELECT: {e}")),
            Ok(Ok(res)) => match res.into_table() {
                Ok(t) if t.rows.is_empty() => {
                    self.failures.push(format!("{name}: EXPLAIN SELECT produced no output"));
                }
                Ok(t) => {
                    if t.rows[0][0].as_str().is_ok_and(|l| !l.starts_with("row interpreter")) {
                        self.planned += 1;
                    }
                }
                Err(e) => self.tolerated.push(format!("{name}: EXPLAIN SELECT output: {e}")),
            },
        }
    }

    /// Whole-script dataflow lint (SD013–SD018) against the session's
    /// current catalog. Error-severity findings fail the sweep — the
    /// shipped scripts are expected to lint clean; warnings are printed
    /// as tolerated lines, notes (dead-table etc.) stay silent.
    fn scriptcheck(&mut self, s: &Session, name: &str, stmts: &[Statement]) {
        let snapshot = CatalogSnapshot::from_db(s.db());
        let analysis = analyze_script(stmts, &snapshot);
        self.script_findings += analysis.diagnostics.len();
        for f in &analysis.diagnostics {
            let line = format!(
                "{name}: statement {}: scriptcheck {}: {}",
                f.stmt + 1,
                f.diag.code,
                f.diag.message
            );
            match f.diag.severity {
                Severity::Error => self.failures.push(line),
                Severity::Warning => self.tolerated.push(line),
                Severity::Note => {}
            }
        }
    }

    /// Analyze then execute every statement of a script in order.
    fn script(&mut self, s: &mut Session, name: &str, sql: &str) {
        self.scripts += 1;
        let stmts = match parser::parse_statements(sql) {
            Ok(v) => v,
            Err(e) => {
                self.failures.push(format!("{name}: parse error: {e}"));
                return;
            }
        };
        self.scriptcheck(s, name, &stmts);
        for (i, stmt) in stmts.iter().enumerate() {
            for solve in solves_in_statement(stmt) {
                self.solves += 1;
                self.explain(s, name, solve, ExplainMode::Check);
                self.explain(s, name, solve, ExplainMode::Presolve);
            }
            for q in queries_in_statement(stmt) {
                self.explain_select(s, name, q);
            }
            if let Err(e) = s.execute_statement(stmt) {
                self.tolerated
                    .push(format!("{name}: statement {} failed ({e}); skipping rest", i + 1));
                return;
            }
        }
    }
}

/// Sweep sessions running durably (`--persistent`): each gets its own
/// throwaway data dir so the script corpus exercises the WAL path.
struct Persist {
    on: bool,
    dirs: Vec<PathBuf>,
}

impl Persist {
    fn attach(&mut self, s: &mut Session, tag: &str) {
        if !self.on {
            return;
        }
        let dir = std::env::temp_dir().join(format!("sdb-analyze-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = StorageEngine::open(&dir, FsyncPolicy::Never).or_die("analyze: open storage");
        s.attach_storage(Arc::new(engine)).or_die("analyze: attach storage");
        self.dirs.push(dir);
    }
}

impl Drop for Persist {
    fn drop(&mut self) {
        for dir in &self.dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

fn main() {
    let mut persistent = false;
    let mut paths: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        if a == "--persistent" {
            persistent = true;
        } else {
            paths.push(a);
        }
    }
    let mut persist = Persist { on: persistent, dirs: Vec::new() };
    let mut sweep = Sweep::default();

    // Explicit script paths: lint + analyze + execute just those, in
    // order, on one fresh session (so a multi-file pipeline sees the
    // tables earlier files create). With no paths, the full built-in
    // sweep over the checked-in benchmark corpus runs instead.
    if !paths.is_empty() {
        let mut s = Session::new();
        persist.attach(&mut s, "explicit");
        for path in &paths {
            match std::fs::read_to_string(path) {
                Ok(sql) => sweep.script(&mut s, path, &sql),
                Err(e) => sweep.failures.push(format!("{path}: cannot read: {e}")),
            }
        }
        let code = verdict(&sweep, persistent);
        drop(persist);
        std::process::exit(code);
    }

    // Annealing iteration counts are scaled down exactly like the quick
    // benches scale them — the analyzers don't depend on fit quality.
    let quick = |sql: &str| sql.replace("iterations := 400", "iterations := 40");

    // UC1: the full pipeline, phase by phase, then the shared-model and
    // composite-solver variants on top of the same session.
    let (mut s, _) = uc1_session(96, 12, 33);
    persist.attach(&mut s, "uc1");
    for (name, sql) in [
        ("uc1/s_3ss_p1.sql", uc1::S_3SS_P1),
        ("uc1/s_3ss_p2.sql", uc1::S_3SS_P2),
        ("uc1/s_3ss_p3.sql", uc1::S_3SS_P3),
        ("uc1/s_3ss_p4.sql", uc1::S_3SS_P4),
        ("uc1/s_shared_model.sql", uc1::S_SHARED_MODEL),
        ("uc1/s_shared_p3.sql", uc1::S_SHARED_P3),
        ("uc1/s_shared_p4.sql", uc1::S_SHARED_P4),
        ("uc1/s_indbms_p2.sql", include_str!("../../scripts/uc1/s_indbms_p2.sql")),
    ] {
        sweep.script(&mut s, name, &quick(sql));
    }
    let solvers = uc1::S_SOLVERS.replace("price := 0.12)", "price := 0.12, fit_iterations := 40)");
    sweep.script(&mut s, "uc1/s_solvers.sql", &solvers);

    // Feature scripts, on the session the feature benches use.
    match feature_session() {
        Ok(mut s) => {
            persist.attach(&mut s, "features");
            for (name, sql) in [
                ("features/p2_nocdte.sql", figures::P2_NOCDTE),
                ("features/p2_cdte.sql", figures::P2_CDTE),
                ("features/p2_wrapped.sql", figures::P2_WRAPPED),
                ("features/p3_nocdte.sql", figures::P3_NOCDTE),
                ("features/p3_cdte.sql", figures::P3_CDTE),
                ("features/p3_shared.sql", figures::P3_SHARED),
                ("features/p4_nocdte.sql", figures::P4_NOCDTE),
                ("features/p4_cdte.sql", figures::P4_CDTE),
                ("features/p4_shared.sql", figures::P4_SHARED),
            ] {
                sweep.script(&mut s, name, &quick(sql));
            }
        }
        Err(e) => sweep.failures.push(format!("feature session setup failed: {e}")),
    }

    // UC2: the script runs per item in the harness; one item id stands
    // in for the $ITEM placeholder here.
    let (mut s, items) = uc2_session(4, 24, 7);
    persist.attach(&mut s, "uc2");
    let uc2_sql = uc2::UC2_SQL.replace("$ITEM", &items[0].item_id.to_string());
    sweep.script(&mut s, "uc2/solvedb.sql", &uc2_sql);

    // The models of the runnable examples (examples/*.rs embed their
    // SQL in Rust, so the statements are mirrored here; the sudoku
    // one-hot MIP is the most constraint-heavy model in the repo).
    let mut s = Session::new();
    persist.attach(&mut s, "quickstart");
    sweep.script(
        &mut s,
        "examples/quickstart.rs",
        "CREATE TABLE products (name text, profit float8, hours float8, qty float8);
         INSERT INTO products VALUES ('a', 25, 2, NULL), ('b', 40, 4, NULL);
         SOLVESELECT p(qty) AS (SELECT * FROM products)
         MAXIMIZE (SELECT sum(profit * qty) FROM p)
         SUBJECTTO (SELECT sum(hours * qty) <= 120 FROM p),
                   (SELECT 0 <= qty <= 40 FROM p)
         USING solverlp();
         CREATE TABLE cargo (item text, value float8, weight float8, take int);
         INSERT INTO cargo VALUES
           ('laptop', 60, 10, NULL), ('camera', 100, 20, NULL),
           ('drone', 120, 30, NULL), ('books', 40, 25, NULL);
         SOLVESELECT c(take) AS (SELECT * FROM cargo)
         MAXIMIZE (SELECT sum(value * take) FROM c)
         SUBJECTTO (SELECT sum(weight * take) <= 50 FROM c),
                   (SELECT 0 <= take <= 1 FROM c)
         USING solverlp.cbc()",
    );

    let mut s = Session::new();
    persist.attach(&mut s, "sudoku");
    let mut sudoku_setup =
        String::from("CREATE TABLE cells (r int, c int, v int, box int, pick int);");
    for r in 1..=4 {
        for c in 1..=4 {
            let b = ((r - 1) / 2) * 2 + (c - 1) / 2 + 1;
            for v in 1..=4 {
                sudoku_setup.push_str(&format!("INSERT INTO cells VALUES ({r},{c},{v},{b},NULL);"));
            }
        }
    }
    sudoku_setup.push_str(
        "CREATE TABLE clues (r int, c int, v int);
         INSERT INTO clues VALUES (1,1,1), (1,2,2), (2,1,3), (2,3,1), (3,2,1), (4,4,1);
         SOLVESELECT g(pick) AS (SELECT * FROM cells)
         MAXIMIZE (SELECT sum(pick) FROM g)
         SUBJECTTO
           (SELECT sum(pick) = 1 FROM g GROUP BY r, c),
           (SELECT sum(pick) = 1 FROM g GROUP BY r, v),
           (SELECT sum(pick) = 1 FROM g GROUP BY c, v),
           (SELECT sum(pick) = 1 FROM g GROUP BY box, v),
           (SELECT pick = 1 FROM g JOIN clues ON g.r = clues.r
              AND g.c = clues.c AND g.v = clues.v),
           (SELECT 0 <= pick <= 1 FROM g)
         USING solverlp.cbc()",
    );
    sweep.script(&mut s, "examples/sudoku.rs", &sudoku_setup);

    // Crew rostering: the set-partitioning model (every coverage row is
    // a `sum(pick) = 1` over binaries), so this is the script on which
    // the matrix-classification diagnostics (SD020+) fire in the sweep.
    let mut s = Session::new();
    persist.attach(&mut s, "crew");
    let crew = format!("{};\n{}", bench::CREW_SETUP, bench::CREW_SOLVE);
    sweep.script(&mut s, "examples/crew_rostering.rs", &crew);

    if sweep.matrix_findings == 0 {
        sweep.failures.push(
            "matrix classification pass silent: no SD020+ finding on any shipped script \
             (the crew set-partitioning script alone should fire SD020)"
                .into(),
        );
    }
    let code = verdict(&sweep, persistent);
    drop(persist);
    std::process::exit(code);
}

/// Print the sweep summary and return the process exit code.
fn verdict(sweep: &Sweep, persistent: bool) -> i32 {
    println!(
        "analyze: {} script(s), {} solve statement(s), {} EXPLAIN run(s), \
         {} EXPLAIN SELECT run(s) ({} planned), {} scriptcheck finding(s), \
         {} matrix finding(s){}",
        sweep.scripts,
        sweep.solves,
        sweep.explains,
        sweep.selects,
        sweep.planned,
        sweep.script_findings,
        sweep.matrix_findings,
        if persistent { " [persistent mode: sessions WAL-committed]" } else { "" }
    );
    for t in &sweep.tolerated {
        println!("  tolerated: {t}");
    }
    if sweep.failures.is_empty() {
        println!("analyze: clean — no analyzer panics, no error-severity findings");
        0
    } else {
        for f in &sweep.failures {
            eprintln!("  FAILURE: {f}");
        }
        eprintln!("analyze: {} failure(s)", sweep.failures.len());
        1
    }
}
