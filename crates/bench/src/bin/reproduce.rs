//! Regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce [--quick] [--json[=DIR]]
//!           [all|table1|fig3a|fig3b|fig4a|fig4b|fig5|fig6|fig7|fig8|fig9|fig10|fig11|presolve|matrix|executor|storage|obs|summary]...
//! ```
//!
//! With no selector, everything runs. `--quick` shrinks workloads to
//! CI-friendly sizes. `--json` additionally writes each artifact as a
//! machine-readable `BENCH_<ID>.json` file (into DIR when given, the
//! current directory otherwise).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use bench::figures::{self, Config, Figure};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_dir: Option<PathBuf> = args.iter().find_map(|a| {
        if a == "--json" {
            Some(PathBuf::from("."))
        } else {
            a.strip_prefix("--json=").map(PathBuf::from)
        }
    });
    let cfg = if quick { Config::quick() } else { Config::full() };
    let mut wanted: Vec<String> = args.iter().filter(|a| !a.starts_with("--")).cloned().collect();
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = vec![
            "table1", "fig3a", "fig3b", "fig4a", "fig4b", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "presolve", "matrix", "executor", "storage", "obs", "summary",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }

    println!(
        "SolveDB+ reproduction — regenerating {} artifact(s){}",
        wanted.len(),
        if quick { " (quick sizes)" } else { "" }
    );
    println!();

    for w in &wanted {
        let fig: Figure = match w.as_str() {
            "table1" => figures::table1(cfg),
            "fig3a" => figures::fig3a(cfg),
            "fig3b" => figures::fig3b(cfg),
            "fig4a" => figures::fig4a(cfg),
            "fig4b" => figures::fig4b(cfg),
            "fig5" => figures::fig5(cfg),
            "fig6" => figures::fig6(cfg),
            "fig7" => figures::fig7(cfg),
            "fig8" => figures::fig8(cfg),
            "fig9" => figures::fig9(cfg),
            "fig10" => figures::fig10(cfg),
            "fig11" => figures::fig11(cfg),
            "presolve" => figures::presolve(cfg),
            "matrix" => figures::matrix(cfg),
            "executor" => figures::executor(cfg),
            "storage" => figures::storage_fig(cfg),
            "obs" => figures::obs_fig(cfg),
            "summary" => figures::summary(cfg),
            other => {
                eprintln!("unknown artifact '{other}' — skipping");
                continue;
            }
        };
        println!("{}", fig.render());
        if let Some(dir) = &json_dir {
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(fig.json_filename());
            match std::fs::write(&path, fig.to_json()) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("failed to write {}: {e}", path.display()),
            }
            println!();
        }
    }
}
