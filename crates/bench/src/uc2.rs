//! SolveDB+ implementation of UC2 (paper §5.4), driven by the
//! checked-in SQL script with per-item parameter substitution.

use crate::OrDie;
use baselines::PhaseTimes;
use obs::timed;
use solvedbplus_core::Session;
use sqlengine::error::Result;
use std::time::Duration;

pub const UC2_SQL: &str = include_str!("../scripts/uc2/solvedb.sql");
pub const R_CPLEX_R: &str = include_str!("../scripts/uc2/r_cplex.R");
pub const MADLIB_CPLEX_PY: &str = include_str!("../scripts/uc2/madlib_cplex.py");

/// Split the UC2 script into its three parts (P2 template, P3, P4) at
/// the `-- P3`/`-- P4` markers.
fn split_script() -> (String, String, String) {
    let p3_pos = UC2_SQL.find("-- P3:").or_die("script has P3 marker");
    let p4_pos = UC2_SQL.find("-- P4:").or_die("script has P4 marker");
    (
        UC2_SQL[..p3_pos].to_string(),
        UC2_SQL[p3_pos..p4_pos].to_string(),
        UC2_SQL[p4_pos..].to_string(),
    )
}

/// Run P2 (per-item ARIMA forecasts) and P3 (the `profit` table) only,
/// leaving the P4 knapsack to the caller. Returns the phase timings.
pub fn prepare_uc2_profit(s: &mut Session, item_ids: &[i64]) -> Result<(Duration, Duration)> {
    let (p2_tpl, p3_sql, _) = split_script();

    // The script's header (down to the first SOLVESELECT INSERT) sets up
    // the forecast table; split it from the per-item INSERT.
    let insert_pos = p2_tpl.find("INSERT INTO demand_forecast").or_die("insert marker");
    let (setup_sql, insert_tpl) = p2_tpl.split_at(insert_pos);

    let (r, p2) = timed(|| {
        s.execute_script(setup_sql)?;
        for &id in item_ids {
            let sql = insert_tpl.replace("$ITEM", &id.to_string());
            s.execute_script(&sql)?;
        }
        Ok::<_, sqlengine::error::Error>(())
    });
    r?;

    let (r, p3) = timed(|| s.execute_script(&p3_sql));
    r?;
    Ok((p2, p3))
}

/// The P4 knapsack `SOLVESELECT` on its own, extracted from the script
/// so benches can execute it directly (and keep the statement trace).
pub fn p4_solve_sql() -> String {
    let (_, _, p4_sql) = split_script();
    let start = p4_sql.find("SOLVESELECT").or_die("P4 solve statement");
    p4_sql[start..].trim().trim_end_matches(';').to_string()
}

/// Run the full UC2 workflow for the items already installed in the
/// session. The P2 part of the script runs once per item (one ARIMA
/// model per item, as the paper describes).
pub fn run_uc2(s: &mut Session, item_ids: &[i64]) -> Result<PhaseTimes> {
    let (_, _, p4_sql) = split_script();
    let (p2, p3) = prepare_uc2_profit(s, item_ids)?;

    let (r, p4) = timed(|| s.execute_script(&p4_sql));
    r?;

    Ok(PhaseTimes { p1: Duration::ZERO, p2, p3, p4 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::uc2_session;
    use sqlengine::Value;

    #[test]
    fn uc2_pipeline_runs() {
        let (mut s, items) = uc2_session(6, 30, 3);
        let ids: Vec<i64> = items.iter().map(|i| i.item_id).collect();
        let times = run_uc2(&mut s, &ids).unwrap();
        assert!(times.p2.as_nanos() > 0);
        // One forecast per item.
        assert_eq!(s.query_scalar("SELECT count(*) FROM demand_forecast").unwrap(), Value::Int(6));
        // Forecasts are finite.
        let t = s.query("SELECT qty FROM demand_forecast").unwrap();
        assert!(t.rows.iter().all(|r| r[0].as_f64().map(f64::is_finite).unwrap_or(false)));
        // Plan picks respect the capacity.
        let used = s
            .query_scalar("SELECT sum(p.volume * p.pick) FROM production_plan p")
            .unwrap()
            .as_f64()
            .unwrap();
        let cap = s.query_scalar("SELECT 0.4 * sum(volume) FROM profit").unwrap().as_f64().unwrap();
        assert!(used <= cap + 1e-6, "{used} > {cap}");
        let picks = s.query("SELECT pick FROM production_plan").unwrap();
        assert!(picks.rows.iter().all(|r| {
            let p = r[0].as_i64().unwrap();
            p == 0 || p == 1
        }));
        assert!(picks.rows.iter().any(|r| r[0].as_i64().unwrap() == 1));
    }
}
