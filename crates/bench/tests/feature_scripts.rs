//! Every feature script under scripts/features is executable and the
//! variants produce consistent solutions.

use bench::figures::{
    P2_CDTE, P2_NOCDTE, P2_WRAPPED, P3_CDTE, P3_NOCDTE, P3_SHARED, P4_CDTE, P4_NOCDTE, P4_SHARED,
};
use solvedbplus_core::Session;
use sqlengine::Table;

/// Prepare a session with all tables the feature scripts need.
fn prepared() -> Session {
    bench::setup::feature_session().expect("feature session")
}

fn floats(t: &Table, col: &str) -> Vec<f64> {
    t.column_values(col).unwrap().iter().map(|v| v.as_f64().unwrap()).collect()
}

#[test]
fn p2_variants_agree_on_coefficients() {
    let mut s = prepared();
    let nocdte = s.execute_script(P2_NOCDTE).unwrap().into_table().unwrap();
    let cdte = s.execute_script(P2_CDTE).unwrap().into_table().unwrap();
    // The no-CDTE output is the combined relation; compare its parameter
    // row against the CDTE output.
    let b1_cdte = cdte.value_by_name(0, "b1").unwrap().as_f64().unwrap();
    let b1_nocdte = nocdte
        .rows
        .iter()
        .find(|r| r[0].as_i64() == Ok(0))
        .map(|r| r[2].as_f64().unwrap())
        .expect("parameter row");
    assert!((b1_cdte - b1_nocdte).abs() < 1e-4, "b1: {b1_cdte} vs {b1_nocdte}");
    // The wrapped solver runs too and fills the series.
    let wrapped = s.execute_script(P2_WRAPPED).unwrap().into_table().unwrap();
    assert!(wrapped.column_values("y").unwrap().iter().all(|v| !v.is_null()));
}

#[test]
fn p3_variants_fit_the_generator() {
    let mut s = prepared();
    for (name, script) in [("nocdte", P3_NOCDTE), ("cdte", P3_CDTE), ("shared", P3_SHARED)] {
        let sql = script.replace("iterations := 400", "iterations := 60");
        let t = s.execute_script(&sql).unwrap().into_table().unwrap();
        let a1 = t.value_by_name(0, "a1").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&a1), "{name}: a1 = {a1}");
    }
}

#[test]
fn p4_variants_agree() {
    let mut s = prepared();
    let nocdte = s.execute_script(P4_NOCDTE).unwrap().into_table().unwrap();
    let cdte = s.execute_script(P4_CDTE).unwrap().into_table().unwrap();
    let shared = s.execute_script(P4_SHARED).unwrap().into_table().unwrap();
    let a = floats(&nocdte, "hload");
    let b = floats(&cdte, "hload");
    let c = floats(&shared, "hload");
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    for i in 0..a.len() {
        assert!((a[i] - b[i]).abs() < 1e-3, "step {i}: nocdte {} vs cdte {}", a[i], b[i]);
        assert!((b[i] - c[i]).abs() < 1e-3, "step {i}: cdte {} vs shared {}", b[i], c[i]);
    }
    // Comfort band holds everywhere.
    for x in floats(&cdte, "intemp") {
        assert!((20.0 - 1e-6..=25.0 + 1e-6).contains(&x), "intemp {x}");
    }
}
