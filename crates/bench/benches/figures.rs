//! Criterion benches for the evaluation's hot paths — one group per
//! paper artifact, so `cargo bench` re-times every figure's core
//! operation with statistical rigor. (The `reproduce` binary prints the
//! full series; these benches focus on per-point timing.)

use baselines::uc1::{
    madlib_python, matlab_native, matlab_yalmip, p4_direct, p4_symbolic, p4_symbolic_mpt, Uc1Task,
};
use baselines::uc2::{madlib_cplex, r_cplex};
use bench::setup::{uc1_session, uc2_session};
use bench::uc1 as sdb_uc1;
use bench::uc2::run_uc2;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn uc1_task(history: usize, horizon: usize) -> Uc1Task {
    let rows = datagen::energy_series(history + horizon, 2026);
    let mut t = Uc1Task::new(
        rows[..history].to_vec(),
        rows[history..].iter().map(|r| r.out_temp).collect(),
    );
    t.p3_evaluations = 60;
    t
}

/// Fig 3(b): full UC1 stacks.
fn bench_uc1_stacks(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3b_uc1_stacks");
    g.sample_size(10);
    let task = uc1_task(96, 24);
    g.bench_function("matlab_native", |b| b.iter(|| matlab_native(&task)));
    g.bench_function("matlab_yalmip", |b| b.iter(|| matlab_yalmip(&task)));
    g.bench_function("madlib_python", |b| b.iter(|| madlib_python(&task)));
    g.bench_function("solvedbplus_s3ss", |b| {
        b.iter(|| {
            let (mut s, _) = uc1_session(96, 24, 2026);
            sdb_uc1::run_s3ss(&mut s, Some(60)).unwrap()
        })
    });
    g.bench_function("solvedbplus_ssolvers", |b| {
        b.iter(|| {
            let (mut s, _) = uc1_session(96, 24, 2026);
            sdb_uc1::run_ssolvers(&mut s, 60).unwrap()
        })
    });
    g.finish();
}

/// Fig 5: P4 model generation + solve per stack and horizon.
fn bench_p4_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_p4_scaling");
    g.sample_size(10);
    for &horizon in &[24usize, 48, 96] {
        let task = uc1_task(48, horizon);
        let data = datagen::energy_series(48 + horizon, 55);
        let pv: Vec<f64> = data[48..].iter().map(|r| r.pv_supply).collect();
        let hvac = (datagen::TRUE_A1, datagen::TRUE_B1, datagen::TRUE_B2);
        g.bench_with_input(BenchmarkId::new("solvedbplus_direct", horizon), &horizon, |b, _| {
            b.iter(|| p4_direct(&task, hvac, &pv, 21.0))
        });
        g.bench_with_input(BenchmarkId::new("yalmip_symbolic", horizon), &horizon, |b, _| {
            b.iter(|| p4_symbolic(&task, hvac, &pv, 21.0))
        });
        g.bench_with_input(BenchmarkId::new("mpt_double_translate", horizon), &horizon, |b, _| {
            b.iter(|| p4_symbolic_mpt(&task, hvac, &pv, 21.0))
        });
    }
    g.finish();
}

/// Fig 9/10: UC2 stacks.
fn bench_uc2_stacks(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_uc2_stacks");
    g.sample_size(10);
    let items = datagen::supply_chain(10, 30, 9);
    g.bench_function("r_cplex", |b| b.iter(|| r_cplex(&items)));
    g.bench_function("madlib_cplex", |b| b.iter(|| madlib_cplex(&items)));
    g.bench_function("solvedbplus", |b| {
        b.iter(|| {
            let (mut s, items) = uc2_session(10, 30, 9);
            let ids: Vec<i64> = items.iter().map(|i| i.item_id).collect();
            run_uc2(&mut s, &ids).unwrap()
        })
    });
    g.finish();
}

/// Ablation: hash join vs nested loop in the engine.
fn bench_join_ablation(c: &mut Criterion) {
    use sqlengine::{execute_script, execute_sql, Database};
    let mut g = c.benchmark_group("ablation_joins");
    g.sample_size(10);
    let mut db = Database::new();
    execute_script(&mut db, "CREATE TABLE a (id int, x float8); CREATE TABLE b (id int, y float8)")
        .unwrap();
    for i in 0..2000 {
        execute_sql(&mut db, &format!("INSERT INTO a VALUES ({i}, {i})")).unwrap();
        execute_sql(&mut db, &format!("INSERT INTO b VALUES ({i}, {i})")).unwrap();
    }
    g.bench_function("hash_join_equi", |b| {
        b.iter(|| execute_sql(&mut db, "SELECT count(*) FROM a JOIN b ON a.id = b.id").unwrap())
    });
    g.bench_function("nested_loop_non_equi", |b| {
        b.iter(|| {
            execute_sql(
                &mut db,
                "SELECT count(*) FROM a JOIN b ON a.id = b.id AND a.x <= b.y + 0.5",
            )
            .unwrap()
        })
    });
    g.finish();
}

/// Ablation: native CDTE path vs the §4.3 c_mask rewrite.
fn bench_cdte_rewrite_ablation(c: &mut Criterion) {
    use solvedbplus_core::rewrite::solve_via_rewrite;
    use solvedbplus_core::Session;
    use sqlengine::ast::Statement;
    let mut g = c.benchmark_group("ablation_cdte_rewrite");
    g.sample_size(10);

    let setup = "CREATE TABLE pars (a float8); INSERT INTO pars VALUES (NULL);
         CREATE TABLE obs (x float8, y float8);";
    let mut s = Session::new();
    s.execute_script(setup).unwrap();
    for i in 0..200 {
        s.execute(&format!("INSERT INTO obs VALUES ({i}, {})", 2 * i)).unwrap();
    }
    let sql = "SOLVESELECT p(a) AS (SELECT * FROM pars) \
         WITH e(err) AS (SELECT x, y, NULL::float8 AS err FROM obs) \
         MINIMIZE (SELECT sum(err) FROM e) \
         SUBJECTTO (SELECT -1*err <= a * x - y <= err FROM e, p) \
         USING solverlp()";
    g.bench_function("native_cdte", |b| {
        b.iter(|| s.query(sql).unwrap());
    });
    let stmt = match sqlengine::parser::parse_statement(sql).unwrap() {
        Statement::Solve(sv) => sv,
        _ => unreachable!(),
    };
    g.bench_function("c_mask_rewrite", |b| {
        b.iter(|| solve_via_rewrite(s.db(), &sqlengine::Ctes::new(), &stmt).unwrap());
    });
    g.finish();
}

/// Ablation: prepared (AST-bound) fitness vs re-parsed SQL fitness — the
/// §5.3 "SwarmOPS vs pure Python" 1.7x.
fn bench_fitness_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fitness_eval");
    g.sample_size(10);
    let (mut s, _) = uc1_session(96, 8, 5);
    s.execute_script(sdb_uc1::S_3SS_P1).unwrap();
    // Prepared path: the whole annealing run re-evaluates the bound AST.
    g.bench_function("prepared_sql_fitness_30_iters", |b| {
        b.iter(|| {
            let sql = sdb_uc1::S_3SS_P3.replace("iterations := 400", "iterations := 30");
            s.execute_script(&sql).unwrap();
        })
    });
    // Re-parsed path: each iteration re-parses the query from text.
    g.bench_function("reparsed_sql_fitness_30_iters", |b| {
        b.iter(|| {
            let data = datagen::energy_series(96, 5);
            let mut task = Uc1Task::new(data, vec![8.0; 8]);
            task.p3_evaluations = 30;
            madlib_python(&task)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_uc1_stacks,
    bench_p4_scaling,
    bench_uc2_stacks,
    bench_join_ablation,
    bench_cdte_rewrite_ablation,
    bench_fitness_ablation
);
criterion_main!(benches);
