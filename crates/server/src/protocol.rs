//! The solvedbd wire protocol: framing, frame types and codecs.
//!
//! A connection is a sequence of *frames*, each a length-prefixed blob:
//!
//! ```text
//! frame := len:u32 (LE)  type:u8  payload[len - 1]
//! ```
//!
//! `len` counts the type byte plus the payload, so an empty frame has
//! `len == 1`. Values, schemas and tables inside payloads use the
//! compact binary encoding of [`sqlengine::wire`]. The full protocol —
//! handshake, request/response flow, error semantics — is documented in
//! `crates/server/PROTOCOL.md`.
//!
//! Decoding is defensive to the same standard as `sqlengine::wire`: a
//! malformed or hostile peer gets an error, never a panic or an
//! unbounded allocation.

use sqlengine::diag::Diagnostic;
use sqlengine::error::Error as EngineError;
use sqlengine::{wire, Table};
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol magic sent in the `Hello` frame.
pub const MAGIC: [u8; 4] = *b"SDBP";

/// Current protocol version. Bumped on incompatible changes; the server
/// accepts clients announcing any version in
/// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`] and echoes the
/// client's version back.
///
/// History: v1 — initial protocol; v2 — adds the `WARNING` frame
/// carrying pre-solve analyzer diagnostics before a statement's result;
/// v3 — adds the `STATS` frame carrying the statement's execution trace
/// (stage tree + solver telemetry) before its result; v4 — adds the
/// `PROGRESS` frame streaming live solver progress during a long solve,
/// and the `TIMEOUT` error kind for watchdog-killed solves.
pub const PROTOCOL_VERSION: u16 = 4;

/// Oldest protocol version the server still speaks. v3 clients are
/// accepted and simply never receive `PROGRESS` frames.
pub const MIN_PROTOCOL_VERSION: u16 = 3;

/// Upper bound for one frame (64 MiB + framing slack), matching the
/// string limit of the value codec.
pub const MAX_FRAME_LEN: u32 = (64 << 20) + 1024;

mod frame_type {
    pub const HELLO: u8 = 0x01;
    pub const QUERY: u8 = 0x02;
    pub const RESULT_TABLE: u8 = 0x03;
    pub const ROW_COUNT: u8 = 0x04;
    pub const DONE: u8 = 0x05;
    pub const ERROR: u8 = 0x06;
    pub const PING: u8 = 0x07;
    pub const PONG: u8 = 0x08;
    pub const BYE: u8 = 0x09;
    pub const END: u8 = 0x0A;
    pub const WARNING: u8 = 0x0B;
    pub const STATS: u8 = 0x0C;
    pub const PROGRESS: u8 = 0x0D;
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Handshake, sent by the client first and echoed by the server:
    /// magic `"SDBP"` + version.
    Hello { version: u16 },
    /// A SQL batch (one or more `;`-separated statements) to execute.
    Query(String),
    /// A statement produced a result set.
    ResultTable(Table),
    /// A statement reported an affected-row count.
    RowCount(u64),
    /// A statement completed without a result (DDL and friends).
    Done,
    /// A statement (or the protocol layer) failed: error category code
    /// plus human-readable message.
    Error { kind: u8, message: String },
    /// Liveness probe.
    Ping,
    /// Reply to [`Frame::Ping`].
    Pong,
    /// Client is closing the connection.
    Bye,
    /// Terminates the server's response to one `Query` batch.
    End,
    /// Advisory diagnostics from the pre-solve static analyzer,
    /// sent immediately before the result frame of the statement they
    /// belong to (protocol v2, see DIAGNOSTICS.md).
    Warning(Vec<Diagnostic>),
    /// The execution trace of a statement — stage tree with timings
    /// plus solver telemetry — sent immediately before the result frame
    /// of the statement it describes (protocol v3, see PROTOCOL.md).
    Stats(obs::QueryTrace),
    /// A live solver progress snapshot, streamed at bounded intervals
    /// while a solve statement is running (protocol v4). Zero or more
    /// may precede the statement's STATS/result frames; clients may
    /// ignore them freely.
    Progress(obs::ProgressEvent),
}

/// Errors arising while reading/writing frames: transport failures keep
/// the underlying `io::Error`; everything else is a malformed peer.
#[derive(Debug)]
pub enum ProtoError {
    Io(io::Error),
    Malformed(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> ProtoError {
    ProtoError::Malformed(msg.into())
}

// ---------------------------------------------------------------------------
// Engine-error <-> frame mapping
// ---------------------------------------------------------------------------

/// Error category codes carried in [`Frame::Error`]. Code `0` is
/// reserved for protocol-level errors raised by the server itself.
pub mod error_kind {
    pub const PROTOCOL: u8 = 0;
    pub const LEX: u8 = 1;
    pub const PARSE: u8 = 2;
    pub const BIND: u8 = 3;
    pub const CATALOG: u8 = 4;
    pub const EVAL: u8 = 5;
    pub const SOLVER: u8 = 6;
    pub const UNSUPPORTED: u8 = 7;
    pub const TIMEOUT: u8 = 8;
}

/// Encode an engine error as an error frame.
pub fn error_to_frame(e: &EngineError) -> Frame {
    let (kind, message) = match e {
        EngineError::Lex(m) => (error_kind::LEX, m),
        EngineError::Parse(m) => (error_kind::PARSE, m),
        EngineError::Bind(m) => (error_kind::BIND, m),
        EngineError::Catalog(m) => (error_kind::CATALOG, m),
        EngineError::Eval(m) => (error_kind::EVAL, m),
        EngineError::Solver(m) => (error_kind::SOLVER, m),
        EngineError::SolveTimeout(m) => (error_kind::TIMEOUT, m),
        EngineError::Unsupported(m) => (error_kind::UNSUPPORTED, m),
    };
    Frame::Error { kind, message: message.clone() }
}

/// Reconstruct an engine error from an error frame's fields, so remote
/// failures surface to client code with the same category they had on
/// the server. Unknown codes (from a newer server) degrade to `Eval`.
pub fn frame_to_error(kind: u8, message: &str) -> EngineError {
    match kind {
        error_kind::LEX => EngineError::lex(message),
        error_kind::PARSE => EngineError::parse(message),
        error_kind::BIND => EngineError::bind(message),
        error_kind::CATALOG => EngineError::catalog(message),
        error_kind::EVAL => EngineError::eval(message),
        error_kind::SOLVER => EngineError::solver(message),
        error_kind::TIMEOUT => EngineError::solve_timeout(message),
        error_kind::UNSUPPORTED => EngineError::unsupported(message),
        error_kind::PROTOCOL => EngineError::eval(format!("protocol error: {message}")),
        other => EngineError::eval(format!("remote error (kind {other}): {message}")),
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Encode a frame body (type byte + payload, without the length prefix).
fn encode_body(f: &Frame, out: &mut Vec<u8>) {
    match f {
        Frame::Hello { version } => {
            out.push(frame_type::HELLO);
            out.extend_from_slice(&MAGIC);
            out.extend_from_slice(&version.to_le_bytes());
        }
        Frame::Query(sql) => {
            out.push(frame_type::QUERY);
            out.extend_from_slice(sql.as_bytes());
        }
        Frame::ResultTable(t) => {
            out.push(frame_type::RESULT_TABLE);
            out.extend_from_slice(&wire::encode_table(t));
        }
        Frame::RowCount(n) => {
            out.push(frame_type::ROW_COUNT);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Frame::Done => out.push(frame_type::DONE),
        Frame::Error { kind, message } => {
            out.push(frame_type::ERROR);
            out.push(*kind);
            out.extend_from_slice(message.as_bytes());
        }
        Frame::Ping => out.push(frame_type::PING),
        Frame::Pong => out.push(frame_type::PONG),
        Frame::Bye => out.push(frame_type::BYE),
        Frame::End => out.push(frame_type::END),
        Frame::Warning(diags) => {
            out.push(frame_type::WARNING);
            wire::encode_diagnostics(diags, out);
        }
        Frame::Stats(trace) => {
            out.push(frame_type::STATS);
            wire::encode_trace(trace, out);
        }
        Frame::Progress(ev) => {
            out.push(frame_type::PROGRESS);
            wire::encode_progress(ev, out);
        }
    }
}

/// Encode a complete frame, length prefix included.
pub fn encode_frame(f: &Frame) -> Vec<u8> {
    let mut body = Vec::with_capacity(16);
    encode_body(f, &mut body);
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Write a frame to a stream.
pub fn write_frame<W: Write>(w: &mut W, f: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(f))?;
    w.flush()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Decode a frame body (type byte + payload, length prefix already
/// stripped).
pub fn decode_body(body: &[u8]) -> Result<Frame, ProtoError> {
    let (&ty, payload) = body.split_first().ok_or_else(|| malformed("empty frame (length 0)"))?;
    let frame = match ty {
        frame_type::HELLO => {
            if payload.len() != 6 {
                return Err(malformed(format!(
                    "HELLO payload must be 6 bytes, got {}",
                    payload.len()
                )));
            }
            if payload[..4] != MAGIC {
                return Err(malformed("HELLO magic mismatch (not a solvedbd peer?)"));
            }
            let version = u16::from_le_bytes([payload[4], payload[5]]);
            Frame::Hello { version }
        }
        frame_type::QUERY => {
            let sql = std::str::from_utf8(payload)
                .map_err(|_| malformed("QUERY payload is not valid UTF-8"))?;
            Frame::Query(sql.to_string())
        }
        frame_type::RESULT_TABLE => {
            let t = wire::decode_table(payload)
                .map_err(|e| malformed(format!("RESULT_TABLE payload: {e}")))?;
            Frame::ResultTable(t)
        }
        frame_type::ROW_COUNT => {
            let bytes: [u8; 8] =
                payload.try_into().map_err(|_| malformed("ROW_COUNT payload must be 8 bytes"))?;
            Frame::RowCount(u64::from_le_bytes(bytes))
        }
        frame_type::DONE => expect_empty(payload, "DONE", Frame::Done)?,
        frame_type::ERROR => {
            let (&kind, msg) = payload
                .split_first()
                .ok_or_else(|| malformed("ERROR payload missing kind byte"))?;
            let message = std::str::from_utf8(msg)
                .map_err(|_| malformed("ERROR message is not valid UTF-8"))?
                .to_string();
            Frame::Error { kind, message }
        }
        frame_type::PING => expect_empty(payload, "PING", Frame::Ping)?,
        frame_type::PONG => expect_empty(payload, "PONG", Frame::Pong)?,
        frame_type::BYE => expect_empty(payload, "BYE", Frame::Bye)?,
        frame_type::END => expect_empty(payload, "END", Frame::End)?,
        frame_type::WARNING => {
            let mut r = wire::Reader::new(payload);
            let diags = wire::decode_diagnostics(&mut r)
                .map_err(|e| malformed(format!("WARNING payload: {e}")))?;
            if !r.is_empty() {
                return Err(malformed("WARNING frame has trailing bytes"));
            }
            Frame::Warning(diags)
        }
        frame_type::STATS => {
            let mut r = wire::Reader::new(payload);
            let trace =
                wire::decode_trace(&mut r).map_err(|e| malformed(format!("STATS payload: {e}")))?;
            if !r.is_empty() {
                return Err(malformed("STATS frame has trailing bytes"));
            }
            Frame::Stats(trace)
        }
        frame_type::PROGRESS => {
            let mut r = wire::Reader::new(payload);
            let ev = wire::decode_progress(&mut r)
                .map_err(|e| malformed(format!("PROGRESS payload: {e}")))?;
            if !r.is_empty() {
                return Err(malformed("PROGRESS frame has trailing bytes"));
            }
            Frame::Progress(ev)
        }
        other => return Err(malformed(format!("unknown frame type 0x{other:02x}"))),
    };
    Ok(frame)
}

fn expect_empty(payload: &[u8], name: &str, frame: Frame) -> Result<Frame, ProtoError> {
    if payload.is_empty() {
        Ok(frame)
    } else {
        Err(malformed(format!("{name} frame must have an empty payload")))
    }
}

/// Read one frame from a blocking stream. Returns `Ok(None)` on clean
/// EOF at a frame boundary; EOF mid-frame is an error.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, ProtoError> {
    let mut len_buf = [0u8; 4];
    match read_full(r, &mut len_buf, || false)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Interrupted => unreachable!("stop callback is constant false"),
        ReadOutcome::Full => {}
    }
    read_frame_after_len(r, len_buf, || false)
}

/// Read one frame from a stream configured with a read timeout,
/// checking `stop` on every timeout tick. Returns `Ok(None)` on clean
/// EOF or when `stop` fires.
pub fn read_frame_interruptible<R: Read>(
    r: &mut R,
    stop: impl Fn() -> bool,
) -> Result<Option<Frame>, ProtoError> {
    let mut len_buf = [0u8; 4];
    match read_full(r, &mut len_buf, &stop)? {
        ReadOutcome::Eof | ReadOutcome::Interrupted => return Ok(None),
        ReadOutcome::Full => {}
    }
    read_frame_after_len(r, len_buf, &stop)
}

fn read_frame_after_len<R: Read>(
    r: &mut R,
    len_buf: [u8; 4],
    stop: impl Fn() -> bool,
) -> Result<Option<Frame>, ProtoError> {
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(malformed("empty frame (length 0)"));
    }
    if len > MAX_FRAME_LEN {
        return Err(malformed(format!("frame length {len} exceeds limit {MAX_FRAME_LEN}")));
    }
    let mut body = vec![0u8; len as usize];
    match read_full(r, &mut body, stop)? {
        ReadOutcome::Full => {}
        ReadOutcome::Eof => return Err(malformed("EOF in the middle of a frame")),
        ReadOutcome::Interrupted => return Ok(None),
    }
    decode_body(&body).map(Some)
}

enum ReadOutcome {
    /// Buffer completely filled.
    Full,
    /// EOF before the first byte of the buffer.
    Eof,
    /// `stop` fired while waiting.
    Interrupted,
}

/// `read_exact` that survives read-timeout ticks (`WouldBlock` /
/// `TimedOut`), polling `stop` on each one. Partial data already read
/// is kept across ticks, so timeouts never corrupt the frame stream.
fn read_full<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    stop: impl Fn() -> bool,
) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(ReadOutcome::Eof)
                } else {
                    Err(io::Error::new(io::ErrorKind::UnexpectedEof, "EOF mid-read"))
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if stop() {
                    return Ok(ReadOutcome::Interrupted);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::Value;

    fn roundtrip(f: Frame) {
        let enc = encode_frame(&f);
        let mut cursor = io::Cursor::new(enc);
        let got = read_frame(&mut cursor).expect("read").expect("frame");
        assert_eq!(got, f);
    }

    #[test]
    fn all_frame_types_roundtrip() {
        roundtrip(Frame::Hello { version: PROTOCOL_VERSION });
        roundtrip(Frame::Query("SELECT 1; SELECT 2".into()));
        roundtrip(Frame::ResultTable(Table::from_rows(
            &["a", "b"],
            vec![vec![Value::Int(1), Value::Null]],
        )));
        roundtrip(Frame::RowCount(u64::MAX));
        roundtrip(Frame::Done);
        roundtrip(Frame::Error { kind: error_kind::SOLVER, message: "no solution".into() });
        roundtrip(Frame::Ping);
        roundtrip(Frame::Pong);
        roundtrip(Frame::Bye);
        roundtrip(Frame::End);
        roundtrip(Frame::Warning(vec![]));
        roundtrip(Frame::Warning(vec![
            sqlengine::diag::Diagnostic::warning("SD001", "x is unbounded below"),
            sqlengine::diag::Diagnostic::note("SD005", "shadowed bound").with_detail("see x <= 4"),
        ]));
        roundtrip(Frame::Stats(obs::QueryTrace::default()));
        roundtrip(Frame::Stats(obs::QueryTrace {
            label: "SOLVESELECT".into(),
            total_nanos: 5_000_000,
            stages: vec![
                obs::Stage::leaf("parse", 1_000),
                obs::Stage {
                    name: "solve".into(),
                    nanos: 4_000_000,
                    rows: Some(3),
                    meta: vec![("solver".into(), "solverlp".into())],
                    children: vec![obs::Stage::leaf("compile", 2_000)],
                },
            ],
            solvers: vec![obs::SolverStats {
                solver: "solverlp".into(),
                method: "bb".into(),
                iterations: 9,
                nodes_explored: 4,
                nodes_pruned: 1,
                objective: Some(6.5),
                incumbents: vec![(1, 4.0), (3, 6.5)],
                ..obs::SolverStats::default()
            }],
        }));
    }

    #[test]
    fn progress_frame_roundtrips() {
        roundtrip(Frame::Progress(obs::ProgressEvent::default()));
        roundtrip(Frame::Progress(obs::ProgressEvent {
            solver: "solverlp".into(),
            method: "mip".into(),
            elapsed_nanos: 2_500_000_000,
            nodes: 640,
            iterations: 9_000,
            evaluations: 0,
            incumbent: Some(13.0),
            best_bound: Some(17.5),
        }));
    }

    #[test]
    fn progress_frame_rejects_trailing_bytes() {
        let mut enc = Vec::new();
        encode_body(&Frame::Progress(obs::ProgressEvent::default()), &mut enc);
        enc.push(0xFF);
        assert!(decode_body(&enc).is_err());
    }

    #[test]
    fn truncated_progress_frame_is_rejected() {
        let mut enc = Vec::new();
        encode_body(
            &Frame::Progress(obs::ProgressEvent {
                solver: "s".into(),
                method: "m".into(),
                incumbent: Some(1.0),
                ..obs::ProgressEvent::default()
            }),
            &mut enc,
        );
        for cut in 1..enc.len() {
            assert!(decode_body(&enc[..cut]).is_err(), "prefix of {cut} bytes decoded cleanly");
        }
    }

    #[test]
    fn stats_frame_rejects_trailing_bytes() {
        let mut enc = Vec::new();
        encode_body(&Frame::Stats(obs::QueryTrace::default()), &mut enc);
        enc.push(0xFF);
        assert!(decode_body(&enc).is_err());
    }

    #[test]
    fn warning_frame_rejects_trailing_bytes() {
        let mut enc = Vec::new();
        encode_body(&Frame::Warning(vec![]), &mut enc);
        enc.push(0xFF);
        assert!(decode_body(&enc).is_err());
    }

    #[test]
    fn clean_eof_is_none_and_midframe_eof_is_error() {
        let mut empty = io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut empty).unwrap().is_none());

        let enc = encode_frame(&Frame::Query("SELECT 1".into()));
        for cut in 1..enc.len() {
            let mut partial = io::Cursor::new(enc[..cut].to_vec());
            assert!(
                read_frame(&mut partial).is_err(),
                "prefix of {cut} bytes unexpectedly decoded"
            );
        }
    }

    #[test]
    fn oversized_and_zero_lengths_are_rejected() {
        let mut buf = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        buf.push(frame_type::PING);
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());

        let zero = 0u32.to_le_bytes().to_vec();
        assert!(read_frame(&mut io::Cursor::new(zero)).is_err());
    }

    #[test]
    fn hello_magic_and_shape_are_checked() {
        assert!(decode_body(&[frame_type::HELLO, b'X', b'X', b'X', b'X', 1, 0]).is_err());
        assert!(decode_body(&[frame_type::HELLO, b'S', b'D', b'B', b'P', 1]).is_err());
        assert_eq!(
            decode_body(&[frame_type::HELLO, b'S', b'D', b'B', b'P', 3, 0]).unwrap(),
            Frame::Hello { version: 3 }
        );
    }

    #[test]
    fn unknown_frame_type_is_rejected() {
        assert!(decode_body(&[0x7F]).is_err());
    }

    #[test]
    fn empty_payload_frames_reject_trailing_bytes() {
        assert!(decode_body(&[frame_type::PING, 0]).is_err());
        assert!(decode_body(&[frame_type::DONE, 0]).is_err());
        assert!(decode_body(&[frame_type::END, 0xAB]).is_err());
    }

    #[test]
    fn engine_errors_roundtrip_through_frames() {
        use sqlengine::error::Error as E;
        for e in [
            E::lex("a"),
            E::parse("b"),
            E::bind("c"),
            E::catalog("d"),
            E::eval("e"),
            E::solver("f"),
            E::solve_timeout("budget exhausted"),
            E::unsupported("g"),
        ] {
            let Frame::Error { kind, message } = error_to_frame(&e) else {
                panic!("not an error frame")
            };
            assert_eq!(frame_to_error(kind, &message), e);
        }
        // Unknown kinds degrade to Eval rather than failing.
        assert!(matches!(frame_to_error(99, "x"), sqlengine::Error::Eval(_)));
    }

    #[test]
    fn interruptible_read_stops_on_flag() {
        // A reader that always times out: stop should yield Ok(None).
        struct AlwaysTimeout;
        impl Read for AlwaysTimeout {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"))
            }
        }
        let got = read_frame_interruptible(&mut AlwaysTimeout, || true).unwrap();
        assert!(got.is_none());
    }
}
