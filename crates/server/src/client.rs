//! Blocking client library for solvedbd.
//!
//! A [`Client`] owns one TCP connection and therefore one server-side
//! session: tables created through it stay visible across calls and
//! invisible to other clients. Engine errors reported by the server are
//! reconstructed as [`sqlengine::Error`] values with their original
//! category, so remote execution is a drop-in for a local
//! `solvedbplus_core::Session` in most code.

use crate::protocol::{
    frame_to_error, read_frame, write_frame, Frame, ProtoError, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
use sqlengine::error::Error as EngineError;
use sqlengine::{ExecResult, Table, Value};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure: transport, protocol, or a server-reported
/// engine error.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed (refused, reset, EOF mid-response, ...).
    Io(io::Error),
    /// The peer violated the protocol (bad frame, wrong sequence, or a
    /// version mismatch reported during the handshake).
    Protocol(String),
    /// The server executed the request and reported an engine error.
    Engine(EngineError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(e) => ClientError::Io(e),
            ProtoError::Malformed(m) => ClientError::Protocol(m),
        }
    }
}

impl From<EngineError> for ClientError {
    fn from(e: EngineError) -> Self {
        ClientError::Engine(e)
    }
}

/// The per-statement outcome of a batch: an engine result or the
/// engine error that stopped the batch.
pub type StatementResult = Result<ExecResult, EngineError>;

/// A blocking connection to a solvedbd server.
pub struct Client {
    stream: TcpStream,
    /// The protocol version the server echoed during the handshake.
    version: u16,
}

impl Client {
    /// Connect and perform the protocol handshake. The client offers
    /// [`PROTOCOL_VERSION`] and accepts any echo the server supports
    /// down to [`MIN_PROTOCOL_VERSION`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        write_frame(&mut stream, &Frame::Hello { version: PROTOCOL_VERSION })?;
        match Self::read(&mut stream)? {
            Frame::Hello { version }
                if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) =>
            {
                Ok(Client { stream, version })
            }
            Frame::Hello { version } => Err(ClientError::Protocol(format!(
                "server speaks protocol version {version}, client speaks {PROTOCOL_VERSION}"
            ))),
            Frame::Error { message, .. } => Err(ClientError::Protocol(message)),
            other => {
                Err(ClientError::Protocol(format!("expected HELLO from server, got {other:?}")))
            }
        }
    }

    /// The protocol version negotiated during the handshake.
    pub fn protocol_version(&self) -> u16 {
        self.version
    }

    fn read(stream: &mut TcpStream) -> Result<Frame, ClientError> {
        match read_frame(stream)? {
            Some(f) => Ok(f),
            None => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }

    /// Execute a SQL batch (one or more `;`-separated statements) and
    /// return one result per executed statement, in order. If a
    /// statement fails, its reconstructed engine error is the last
    /// element (the server skips the rest of the batch). Analyzer
    /// warnings (WARNING frames, protocol v2) and execution traces
    /// (STATS frames, protocol v3) are attached to the result of the
    /// statement that produced them. Live solve-progress updates
    /// (PROGRESS frames, protocol v4) are discarded; use
    /// [`Client::execute_with_progress`] to observe them.
    pub fn execute(&mut self, sql: &str) -> Result<Vec<StatementResult>, ClientError> {
        self.execute_with_progress(sql, &mut |_| {})
    }

    /// Like [`Client::execute`], but invokes `on_progress` for every
    /// PROGRESS frame the server streams mid-solve (protocol v4; a v3
    /// server never sends any, so the callback simply stays silent).
    pub fn execute_with_progress(
        &mut self,
        sql: &str,
        on_progress: &mut dyn FnMut(&obs::ProgressEvent),
    ) -> Result<Vec<StatementResult>, ClientError> {
        write_frame(&mut self.stream, &Frame::Query(sql.to_string()))?;
        let mut results = Vec::new();
        // WARNING and STATS frames precede the result frame they belong
        // to, so buffer both until the next result arrives.
        let mut pending = Vec::new();
        let mut pending_trace = None;
        let attach = |r: ExecResult, pending: &mut Vec<_>, trace: &mut Option<_>| {
            let r = r.with_warnings(std::mem::take(pending));
            match trace.take() {
                Some(t) => r.with_trace(t),
                None => r,
            }
        };
        loop {
            match Self::read(&mut self.stream)? {
                Frame::Progress(ev) => on_progress(&ev),
                Frame::Warning(diags) => pending.extend(diags),
                Frame::Stats(trace) => pending_trace = Some(trace),
                Frame::ResultTable(t) => {
                    results.push(Ok(attach(
                        ExecResult::table(t),
                        &mut pending,
                        &mut pending_trace,
                    )));
                }
                Frame::RowCount(n) => {
                    results.push(Ok(attach(
                        ExecResult::count(n as usize),
                        &mut pending,
                        &mut pending_trace,
                    )));
                }
                Frame::Done => {
                    results.push(Ok(attach(ExecResult::done(), &mut pending, &mut pending_trace)));
                }
                Frame::Error { kind, message } => {
                    pending.clear();
                    pending_trace = None;
                    results.push(Err(frame_to_error(kind, &message)));
                }
                Frame::End => return Ok(results),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame in query response: {other:?}"
                    )))
                }
            }
        }
    }

    /// Execute a batch and return the last statement's result,
    /// propagating any failure — the remote analogue of
    /// `Session::execute_script`.
    pub fn execute_script(&mut self, sql: &str) -> Result<ExecResult, ClientError> {
        let mut results = self.execute(sql)?;
        match results.pop() {
            Some(Ok(r)) => Ok(r),
            Some(Err(e)) => Err(ClientError::Engine(e)),
            None => Ok(ExecResult::done()), // empty batch
        }
    }

    /// Execute a single statement and expect a result set.
    pub fn query(&mut self, sql: &str) -> Result<Table, ClientError> {
        Ok(self.execute_script(sql)?.into_table()?)
    }

    /// Execute a single statement and expect a single scalar.
    pub fn query_scalar(&mut self, sql: &str) -> Result<Value, ClientError> {
        Ok(self.query(sql)?.scalar()?)
    }

    /// Round-trip a PING frame; useful as a liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &Frame::Ping)?;
        match Self::read(&mut self.stream)? {
            Frame::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!("expected PONG, got {other:?}"))),
        }
    }

    /// Politely close the connection (sends BYE).
    pub fn close(mut self) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &Frame::Bye)?;
        Ok(())
    }
}
