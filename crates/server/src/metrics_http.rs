//! Prometheus text-format exposition over a minimal hand-rolled HTTP
//! endpoint (`solvedbd --metrics-addr`).
//!
//! One listener thread serves scrapes sequentially: a scrape is a
//! point-in-time read of the shared registries (no per-request state),
//! so there is nothing to parallelize and nothing to keep alive between
//! requests. Only `GET /metrics` exists; everything else is a 404. The
//! response format is the Prometheus text exposition format 0.0.4 —
//! counters, gauges, and log-bucketed histograms rendered cumulatively
//! with `+Inf`, `_sum` and `_count` series, all latencies in seconds.

use crate::manager::SessionManager;
use obs::Histogram;
use sqlengine::Value;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Accept-poll granularity while watching the shutdown flag.
const ACCEPT_TICK: Duration = Duration::from_millis(100);

/// Longest request head we bother reading before answering.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Serve scrapes until `stop` is set. The listener must already be
/// bound; it is switched to non-blocking so the loop can poll `stop`.
pub fn serve(listener: TcpListener, manager: Arc<SessionManager>, stop: Arc<AtomicBool>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => handle_request(stream, &manager),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Read one request head, answer, close. Any I/O failure just drops
/// the connection — scrapers retry.
fn handle_request(mut stream: TcpStream, manager: &Arc<SessionManager>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > MAX_REQUEST_BYTES {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request_line = match std::str::from_utf8(&head) {
        Ok(s) => s.lines().next().unwrap_or(""),
        Err(_) => "",
    };
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let response = if method == "GET" && (path == "/metrics" || path.starts_with("/metrics?")) {
        let body = render(manager);
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    } else {
        let body = "not found: only GET /metrics is served\n";
        format!(
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

fn seconds(nanos: u64) -> f64 {
    nanos as f64 / 1e9
}

/// Escape a label value per the exposition format.
fn escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Sanitize a dynamic name fragment into a metric-name-safe suffix.
fn metric_suffix(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Render one labeled histogram series set: cumulative buckets (upper
/// bounds in seconds), `+Inf`, `_sum`, `_count`.
fn histogram_series(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let mut cumulative = 0u64;
    for (upper, count) in h.nonzero_buckets() {
        cumulative += count;
        let le = seconds(upper);
        let _ = writeln!(out, "{name}_bucket{{{labels}le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{{labels}le=\"+Inf\"}} {}", h.count());
    let sum_labels = labels.trim_end_matches(',');
    let braces = |suffix: &str| {
        if sum_labels.is_empty() {
            suffix.to_string()
        } else {
            format!("{suffix}{{{sum_labels}}}")
        }
    };
    let _ = writeln!(out, "{} {}", braces(&format!("{name}_sum")), seconds(h.sum()));
    let _ = writeln!(out, "{} {}", braces(&format!("{name}_count")), h.count());
}

/// Build the whole exposition body from the server's registries.
pub fn render(manager: &Arc<SessionManager>) -> String {
    let mut out = String::new();
    let metrics = manager.solvers().metrics();

    // Sessions.
    gauge(
        &mut out,
        "sdb_sessions_active",
        "Connections currently being served.",
        manager.active() as f64,
    );
    counter(
        &mut out,
        "sdb_sessions_opened_total",
        "Sessions opened over the server's lifetime.",
        manager.total_opened() as u64,
    );
    let (mut queries, mut bytes_in, mut bytes_out) = (0u64, 0u64, 0u64);
    for s in manager.sessions().snapshot() {
        queries += s.queries;
        bytes_in += s.bytes_in;
        bytes_out += s.bytes_out;
    }
    gauge(
        &mut out,
        "sdb_sessions_queries",
        "Statements received by live sessions.",
        queries as f64,
    );
    gauge(&mut out, "sdb_sessions_bytes_in", "Bytes received from live sessions.", bytes_in as f64);
    gauge(&mut out, "sdb_sessions_bytes_out", "Bytes sent to live sessions.", bytes_out as f64);

    // Statements (aggregated over every shape).
    let statements = metrics.statements();
    let (mut calls, mut errors, mut rows, mut hits, mut misses) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for (_, s) in &statements {
        calls += s.calls;
        errors += s.errors;
        rows += s.rows;
        hits += s.cache_hits;
        misses += s.cache_misses;
    }
    counter(&mut out, "sdb_statements_total", "Statements executed.", calls);
    counter(&mut out, "sdb_statement_errors_total", "Statements that returned an error.", errors);
    counter(&mut out, "sdb_statement_rows_total", "Rows returned across all statements.", rows);
    counter(&mut out, "sdb_plan_cache_hits_total", "Executions served by the plan cache.", hits);
    counter(
        &mut out,
        "sdb_plan_cache_misses_total",
        "Cache-eligible executions that planned fresh.",
        misses,
    );
    let ratio = if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 };
    gauge(&mut out, "sdb_plan_cache_hit_ratio", "Plan-cache hit ratio since start.", ratio);

    // Pooled statement latency distribution.
    let pooled = metrics.statement_latency();
    let _ = writeln!(
        &mut out,
        "# HELP sdb_statement_latency_seconds Statement latency pooled over all shapes."
    );
    let _ = writeln!(&mut out, "# TYPE sdb_statement_latency_seconds histogram");
    histogram_series(&mut out, "sdb_statement_latency_seconds", "", &pooled);

    // Per-stage latency histograms (pipeline stages, wal.append/fsync).
    let stages = metrics.stages();
    if !stages.is_empty() {
        let _ =
            writeln!(&mut out, "# HELP sdb_stage_latency_seconds Latency per pipeline stage path.");
        let _ = writeln!(&mut out, "# TYPE sdb_stage_latency_seconds histogram");
        for (name, h) in &stages {
            let labels = format!("stage=\"{}\",", escape(name));
            histogram_series(&mut out, "sdb_stage_latency_seconds", &labels, h);
        }
    }

    // Solver telemetry, labeled by (solver, method).
    let solvers = metrics.solvers();
    if !solvers.is_empty() {
        for (metric, help, pick) in [
            (
                "sdb_solver_runs_total",
                "Solver invocations.",
                (|a| a.runs) as fn(&obs::SolverAgg) -> u64,
            ),
            ("sdb_solver_iterations_total", "Solver iterations (pivots, steps).", |a| a.iterations),
            ("sdb_solver_nodes_explored_total", "Branch-and-bound nodes explored.", |a| {
                a.nodes_explored
            }),
            ("sdb_solver_evaluations_total", "Black-box fitness evaluations.", |a| a.evaluations),
        ] {
            let _ = writeln!(&mut out, "# HELP {metric} {help}");
            let _ = writeln!(&mut out, "# TYPE {metric} counter");
            for ((solver, method), agg) in &solvers {
                let _ = writeln!(
                    &mut out,
                    "{metric}{{solver=\"{}\",method=\"{}\"}} {}",
                    escape(solver),
                    escape(method),
                    pick(agg)
                );
            }
        }
        let _ = writeln!(
            &mut out,
            "# HELP sdb_solver_time_seconds_total Wall-clock time spent inside solvers."
        );
        let _ = writeln!(&mut out, "# TYPE sdb_solver_time_seconds_total counter");
        for ((solver, method), agg) in &solvers {
            let _ = writeln!(
                &mut out,
                "sdb_solver_time_seconds_total{{solver=\"{}\",method=\"{}\"}} {}",
                escape(solver),
                escape(method),
                seconds(agg.total_nanos)
            );
        }
    }

    // Storage / WAL state: every numeric column of the status relation
    // becomes a gauge, so the exposition tracks the `sdb_storage`
    // virtual table without a second schema definition.
    if let Some(engine) = manager.storage() {
        let status = engine.status_table();
        if let Some(row) = status.rows.first() {
            for (col, value) in status.schema.columns.iter().zip(row) {
                let v = match value {
                    Value::Int(n) => *n as f64,
                    Value::Float(f) => *f,
                    _ => continue,
                };
                gauge(
                    &mut out,
                    &format!("sdb_storage_{}", metric_suffix(&col.name)),
                    &format!("Storage status column {}.", col.name),
                    v,
                );
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::SessionManager;

    #[test]
    fn render_includes_type_lines_and_histograms() {
        let manager = Arc::new(SessionManager::new());
        {
            let mut s = manager.open().unwrap();
            s.execute("CREATE TABLE t (x int)").unwrap();
            s.execute("INSERT INTO t VALUES (1)").unwrap();
            s.query("SELECT x FROM t").unwrap();
        }
        let body = render(&manager);
        assert!(body.contains("# TYPE sdb_statements_total counter"), "{body}");
        assert!(body.contains("# TYPE sdb_statement_latency_seconds histogram"), "{body}");
        assert!(body.contains("sdb_statement_latency_seconds_bucket"), "{body}");
        assert!(body.contains("le=\"+Inf\"} 3"), "{body}");
        assert!(body.contains("sdb_statement_latency_seconds_count 3"), "{body}");
        assert!(body.contains("sdb_sessions_opened_total 1"), "{body}");
        assert!(body.contains("sdb_plan_cache_hit_ratio"), "{body}");
    }

    #[test]
    fn bucket_counts_are_cumulative() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(10);
        h.record(1_000_000);
        let mut out = String::new();
        histogram_series(&mut out, "m", "", &h);
        let lines: Vec<&str> = out.lines().collect();
        // Two occupied buckets -> cumulative 2 then 3, then +Inf 3.
        assert!(lines[0].ends_with(" 2"), "{out}");
        assert!(lines[1].ends_with(" 3"), "{out}");
        assert!(lines[2].contains("+Inf") && lines[2].ends_with(" 3"), "{out}");
        assert!(lines.iter().any(|l| l.starts_with("m_count 3")), "{out}");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(metric_suffix("wal.append"), "wal_append");
    }
}
