//! # server — the solvedbd network subsystem
//!
//! SolveDB+ is deployed as a database *server*: analysts connect with a
//! client, issue `SOLVESELECT` queries and read back result tables.
//! This crate reproduces that deployment shape for the Rust engine:
//!
//! * [`protocol`] — a small length-prefixed frame protocol over TCP
//!   (documented in `PROTOCOL.md`), with result tables carried in the
//!   [`sqlengine::wire`] binary encoding;
//! * [`manager`] — per-connection sessions over a process-wide shared
//!   solver registry, mirroring PostgreSQL's backend-per-connection
//!   model;
//! * [`server`] — a multi-threaded TCP server with a bounded worker
//!   pool and graceful shutdown;
//! * [`client`] — a blocking client library used by the
//!   `solvedb --connect` CLI mode and the integration tests;
//! * [`metrics_http`] — the Prometheus text exposition served at
//!   `GET /metrics` when `solvedbd` runs with `--metrics-addr`.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod manager;
pub mod metrics_http;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, StatementResult};
pub use manager::{SessionHandle, SessionManager};
pub use protocol::{Frame, ProtoError, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig, ShutdownHandle};
