//! Per-connection session management.
//!
//! Mirrors the paper's deployment model: one PostgreSQL backend per
//! connection, all backends sharing the installed solver set. Here each
//! connection gets its own [`Session`] (private catalog, private UDF
//! training state) built over one process-wide [`SharedSolvers`]
//! (solver registry + Predictive Advisor model cache).

use obs::{SessionCounters, SessionRegistry};
use solvedbplus_core::{Session, SharedSolvers};
use sqlengine::error::Result;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use storage::StorageEngine;

/// Creates sessions for incoming connections and tracks how many are
/// live. Cheap to share: hand an `Arc<SessionManager>` to every worker.
pub struct SessionManager {
    shared: SharedSolvers,
    active: AtomicUsize,
    opened: AtomicUsize,
    /// Live per-session counters, published to every session through
    /// the `sdb_sessions` virtual table.
    sessions: Arc<SessionRegistry>,
    /// Durability engine every new session hydrates from and commits
    /// through (`solvedbd --data-dir`); `None` = ephemeral server.
    storage: Option<Arc<StorageEngine>>,
}

impl SessionManager {
    pub fn new() -> SessionManager {
        SessionManager::with_solvers(SharedSolvers::new())
    }

    /// Build a manager over pre-configured solver infrastructure (e.g.
    /// with extra solvers installed before the server starts).
    pub fn with_solvers(shared: SharedSolvers) -> SessionManager {
        SessionManager::with_storage(shared, None)
    }

    /// Build a manager whose sessions are durable: each new session is
    /// hydrated from the engine's recovered catalog and group-commits
    /// its statements to the engine's WAL.
    pub fn with_storage(
        shared: SharedSolvers,
        storage: Option<Arc<StorageEngine>>,
    ) -> SessionManager {
        SessionManager {
            shared,
            active: AtomicUsize::new(0),
            opened: AtomicUsize::new(0),
            sessions: Arc::new(SessionRegistry::new()),
            storage,
        }
    }

    /// The solver infrastructure shared by all sessions.
    pub fn solvers(&self) -> &SharedSolvers {
        &self.shared
    }

    /// The live-session registry backing `sdb_sessions`.
    pub fn sessions(&self) -> &Arc<SessionRegistry> {
        &self.sessions
    }

    /// The storage engine durable sessions share, if any.
    pub fn storage(&self) -> Option<&Arc<StorageEngine>> {
        self.storage.as_ref()
    }

    /// Open a session for a new connection. The returned handle derefs
    /// to [`Session`] and decrements the live count when dropped. Fails
    /// only when a durable session cannot hydrate from the recovered
    /// catalog.
    pub fn open(self: &Arc<Self>) -> Result<SessionHandle> {
        let mut session = Session::with_solvers(&self.shared);
        session.attach_session_registry(self.sessions.clone());
        if let Some(engine) = &self.storage {
            session.attach_storage(engine.clone())?;
        }
        self.active.fetch_add(1, Ordering::SeqCst);
        let id = self.opened.fetch_add(1, Ordering::SeqCst) as u64 + 1;
        let counters = self.sessions.open(id);
        // The session watches its own kill flag (set by `CANCEL <id>`
        // from any session) at solver progress points.
        session.attach_own_counters(counters.clone());
        Ok(SessionHandle { session, manager: Arc::clone(self), counters, id })
    }

    /// Number of currently live sessions.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Total sessions opened over the manager's lifetime.
    pub fn total_opened(&self) -> usize {
        self.opened.load(Ordering::SeqCst)
    }
}

impl Default for SessionManager {
    fn default() -> Self {
        Self::new()
    }
}

/// A live session tied back to its manager for liveness accounting.
pub struct SessionHandle {
    session: Session,
    manager: Arc<SessionManager>,
    counters: Arc<SessionCounters>,
    id: u64,
}

impl SessionHandle {
    /// This connection's live counters (queries, bytes in/out).
    pub fn counters(&self) -> &Arc<SessionCounters> {
        &self.counters
    }

    /// The server-assigned session id (1-based, monotonic).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Deref for SessionHandle {
    type Target = Session;
    fn deref(&self) -> &Session {
        &self.session
    }
}

impl DerefMut for SessionHandle {
    fn deref_mut(&mut self) -> &mut Session {
        &mut self.session
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        self.manager.sessions.close(self.id);
        self.manager.active.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::Value;

    #[test]
    fn handles_track_liveness() {
        let m = Arc::new(SessionManager::new());
        assert_eq!(m.active(), 0);
        let a = m.open().unwrap();
        let b = m.open().unwrap();
        assert_eq!(m.active(), 2);
        assert_eq!(m.total_opened(), 2);
        assert_eq!(m.sessions().len(), 2);
        drop(a);
        assert_eq!(m.active(), 1);
        assert_eq!(m.sessions().len(), 1);
        drop(b);
        assert_eq!(m.active(), 0);
        assert_eq!(m.total_opened(), 2);
        assert!(m.sessions().is_empty());
    }

    #[test]
    fn sessions_see_each_other_in_sdb_sessions() {
        let m = Arc::new(SessionManager::new());
        let mut a = m.open().unwrap();
        let _b = m.open().unwrap();
        a.counters().add_query();
        a.counters().add_bytes_in(10);
        let t = a.query("SELECT session_id, queries FROM sdb_sessions").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.rows[0][0], Value::Int(1));
        assert_eq!(t.rows[0][1], Value::Int(1));
        assert_eq!(t.rows[1][0], Value::Int(2));
    }

    #[test]
    fn sessions_are_namespaced_but_share_solvers() {
        let m = Arc::new(SessionManager::new());
        let mut a = m.open().unwrap();
        let mut b = m.open().unwrap();
        a.execute("CREATE TABLE t (x int)").unwrap();
        assert!(b.execute("SELECT * FROM t").is_err());
        b.execute_script("CREATE TABLE t (x int); INSERT INTO t VALUES (9)").unwrap();
        assert_eq!(b.query_scalar("SELECT x FROM t").unwrap(), Value::Int(9));
        // Both sessions see the same registry instance.
        assert_eq!(a.solver_names(), b.solver_names());
    }
}
