//! The solvedbd server: TCP accept loop, bounded worker pool, graceful
//! shutdown.
//!
//! Concurrency model: one accept thread feeds accepted connections into
//! a bounded crossbeam channel drained by a fixed pool of worker
//! threads; each worker serves one connection at a time, start to
//! finish, with its own [`crate::manager::SessionHandle`]. When all
//! workers are busy and the backlog is full, `accept` back-pressure is
//! applied at the channel (the accept thread blocks), bounding the
//! server's memory use under connection floods.
//!
//! Shutdown: any [`ShutdownHandle`] sets an atomic flag and then
//! self-connects to the listener to unblock `accept`. Workers poll the
//! flag on every read-timeout tick (250 ms), so live connections wind
//! down promptly and the listener socket is released when [`Server::run`]
//! returns.

use crate::manager::SessionManager;
use crate::protocol::{
    error_kind, error_to_frame, read_frame_interruptible, write_frame, Frame, ProtoError,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crossbeam::channel;
use solvedbplus_core::SharedSolvers;
use sqlengine::parser::split_statements;
use sqlengine::Outcome;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use storage::{FsyncPolicy, StorageEngine};

/// Poll granularity for shutdown checks on blocked reads.
const READ_TICK: Duration = Duration::from_millis(250);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (= maximum concurrent connections being served).
    pub workers: usize,
    /// Accepted-but-unserved connections to queue before `accept`
    /// blocks.
    pub backlog: usize,
    /// Statements slower than this many milliseconds are written to the
    /// slow-query log on stderr, with their stage breakdown. `None`
    /// disables the log.
    pub slow_query_ms: Option<u64>,
    /// Run durably: recover from (and WAL-commit to) this directory.
    /// `None` = in-memory server, state dies with the process.
    pub data_dir: Option<PathBuf>,
    /// When WAL appends reach stable storage (only meaningful with
    /// `data_dir`).
    pub fsync: FsyncPolicy,
    /// Serve the Prometheus text exposition (`GET /metrics`) on this
    /// address (e.g. `127.0.0.1:9187`; port 0 for ephemeral). `None`
    /// disables the endpoint.
    pub metrics_addr: Option<String>,
    /// Default solver wall-clock budget applied to every new session;
    /// sessions can override (or disable with 0) via
    /// `SET solver_timeout_ms`. `None` = no server-side budget.
    pub solver_timeout_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            backlog: 16,
            slow_query_ms: None,
            data_dir: None,
            fsync: FsyncPolicy::Always,
            metrics_addr: None,
            solver_timeout_ms: None,
        }
    }
}

/// A bound, not-yet-running server. Call [`Server::run`] to serve.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    manager: Arc<SessionManager>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
    /// Bound metrics listener when `config.metrics_addr` is set.
    metrics: Option<(TcpListener, SocketAddr)>,
}

/// Cheap cloneable handle that can stop a running [`Server`] from any
/// thread (including a signal context via a pre-created clone).
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Request shutdown: sets the flag and pokes the listener so the
    /// accept loop observes it immediately. Idempotent.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // Unblock a blocking accept() with a throwaway connection; if
        // the listener is already gone this simply fails, which is fine.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
    }

    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

impl Server {
    /// Bind with the default configuration.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Server> {
        Server::bind_with(addr, ServerConfig::default())
    }

    /// Bind a listener (use port 0 for an ephemeral port) without
    /// accepting yet.
    pub fn bind_with(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        if config.workers == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "workers must be >= 1"));
        }
        let storage = match &config.data_dir {
            Some(dir) => Some(Arc::new(
                StorageEngine::open(dir, config.fsync)
                    .map_err(|e| io::Error::other(format!("storage recovery failed: {e}")))?,
            )),
            None => None,
        };
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics = match &config.metrics_addr {
            Some(maddr) => {
                let l = TcpListener::bind(maddr.as_str())?;
                let bound = l.local_addr()?;
                Some((l, bound))
            }
            None => None,
        };
        Ok(Server {
            listener,
            addr,
            manager: Arc::new(SessionManager::with_storage(SharedSolvers::new(), storage)),
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
            metrics,
        })
    }

    /// The bound metrics-exposition address, when configured (resolves
    /// ephemeral ports).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(|(_, a)| *a)
    }

    /// The storage engine when running with `data_dir` (for recovery
    /// reporting at startup).
    pub fn storage(&self) -> Option<&Arc<StorageEngine>> {
        self.manager.storage()
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The session manager (inspect counters, pre-install solvers).
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.manager
    }

    /// A handle that can stop [`Server::run`] from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { flag: self.shutdown.clone(), addr: self.addr }
    }

    /// Serve until a [`ShutdownHandle`] fires. Consumes the server; on
    /// return all workers have exited and the port is released.
    pub fn run(self) -> io::Result<()> {
        let (tx, rx) = channel::bounded::<TcpStream>(self.config.backlog.max(1));
        let metrics_thread = match self.metrics {
            Some((listener, _)) => {
                let manager = self.manager.clone();
                let flag = self.shutdown.clone();
                Some(
                    std::thread::Builder::new()
                        .name("solvedbd-metrics".into())
                        .spawn(move || crate::metrics_http::serve(listener, manager, flag))?,
                )
            }
            None => None,
        };
        let mut workers = Vec::with_capacity(self.config.workers);
        for i in 0..self.config.workers {
            let rx = rx.clone();
            let manager = self.manager.clone();
            let flag = self.shutdown.clone();
            let config = self.config.clone();
            workers.push(std::thread::Builder::new().name(format!("solvedbd-worker-{i}")).spawn(
                move || {
                    while let Ok(stream) = rx.recv() {
                        serve_connection(stream, &manager, &flag, &config);
                        if flag.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                },
            )?);
        }
        drop(rx);

        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        // The shutdown self-connect (or a raced client);
                        // either way we are done accepting.
                        break;
                    }
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Listener failure: stop serving rather than spin.
                    self.shutdown.store(true, Ordering::SeqCst);
                    drop(tx);
                    for w in workers {
                        let _ = w.join();
                    }
                    if let Some(m) = metrics_thread {
                        let _ = m.join();
                    }
                    return Err(e);
                }
            }
        }

        drop(tx);
        self.shutdown.store(true, Ordering::SeqCst);
        for w in workers {
            let _ = w.join();
        }
        if let Some(m) = metrics_thread {
            let _ = m.join();
        }
        // `self.listener` drops here, releasing the port.
        Ok(())
    }
}

/// Serve one connection to completion: handshake, then a
/// query/response loop. All errors terminate just this connection.
fn serve_connection(
    mut stream: TcpStream,
    manager: &Arc<SessionManager>,
    stop: &AtomicBool,
    config: &ServerConfig,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let stopped = || stop.load(Ordering::SeqCst);

    // Handshake: the client speaks first. The server accepts any
    // version in [MIN_PROTOCOL_VERSION, PROTOCOL_VERSION] and echoes
    // the client's version back — the negotiated version then gates
    // v4-only frames (PROGRESS) for the rest of the conversation.
    let negotiated = match read_frame_interruptible(&mut stream, stopped) {
        Ok(Some(Frame::Hello { version }))
            if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) =>
        {
            if write_frame(&mut stream, &Frame::Hello { version }).is_err() {
                return;
            }
            version
        }
        Ok(Some(Frame::Hello { version })) => {
            let _ = write_frame(
                &mut stream,
                &Frame::Error {
                    kind: error_kind::PROTOCOL,
                    message: format!(
                        "unsupported protocol version {version} (server speaks \
                         {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
                    ),
                },
            );
            return;
        }
        Ok(Some(_)) => {
            let _ = write_frame(
                &mut stream,
                &Frame::Error {
                    kind: error_kind::PROTOCOL,
                    message: "expected HELLO as the first frame".into(),
                },
            );
            return;
        }
        Ok(None) => return,
        Err(_) => {
            let _ = write_frame(
                &mut stream,
                &Frame::Error { kind: error_kind::PROTOCOL, message: "malformed handshake".into() },
            );
            return;
        }
    };

    let mut session = match manager.open() {
        Ok(s) => s,
        Err(e) => {
            let _ = write_frame(&mut stream, &error_to_frame(&e));
            return;
        }
    };
    if config.solver_timeout_ms.is_some() {
        session.set_solver_timeout_ms(config.solver_timeout_ms);
    }
    // v4 peers get live PROGRESS frames streamed mid-solve. The sink
    // writes through a cloned handle of the same socket; the solve runs
    // synchronously on this worker thread, so progress frames never
    // interleave with response frames.
    if negotiated >= 4 {
        if let Ok(peer) = stream.try_clone() {
            let peer = std::sync::Mutex::new(peer);
            session.set_progress_sink(Arc::new(move |ev: &obs::ProgressEvent| {
                if let Ok(mut s) = peer.lock() {
                    let _ = write_frame(&mut *s, &Frame::Progress(ev.clone()));
                }
            }));
        }
    }
    let counters = session.counters().clone();
    // Everything after the handshake flows through the metering wrapper
    // so the session's byte counters cover the whole conversation.
    let mut stream = Metered { stream: &stream, counters: &counters };

    loop {
        let frame = match read_frame_interruptible(&mut stream, stopped) {
            Ok(Some(f)) => f,
            Ok(None) => return, // EOF or shutdown
            Err(ProtoError::Io(_)) => return,
            Err(ProtoError::Malformed(m)) => {
                let _ = write_frame(
                    &mut stream,
                    &Frame::Error { kind: error_kind::PROTOCOL, message: m },
                );
                return;
            }
        };
        match frame {
            Frame::Query(sql) => {
                if run_batch(&mut stream, &mut session, &sql, config).is_err() {
                    return;
                }
            }
            Frame::Ping => {
                if write_frame(&mut stream, &Frame::Pong).is_err() {
                    return;
                }
            }
            Frame::Bye => return,
            other => {
                let _ = write_frame(
                    &mut stream,
                    &Frame::Error {
                        kind: error_kind::PROTOCOL,
                        message: format!("unexpected client frame: {other:?}"),
                    },
                );
                return;
            }
        }
    }
}

/// [`Read`]/[`Write`] adaptor that folds transferred byte counts into a
/// session's counters (the `bytes_in`/`bytes_out` of `sdb_sessions`).
struct Metered<'a> {
    stream: &'a TcpStream,
    counters: &'a obs::SessionCounters,
}

impl io::Read for Metered<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = (&mut self.stream).read(buf)?;
        self.counters.add_bytes_in(n as u64);
        Ok(n)
    }
}

impl io::Write for Metered<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = (&mut self.stream).write(buf)?;
        self.counters.add_bytes_out(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        (&mut self.stream).flush()
    }
}

/// Execute one Query batch statement by statement, streaming one
/// response frame per statement and an END terminator. A statement
/// with analyzer warnings gets a WARNING frame immediately before its
/// result frame (protocol v2); a traced statement additionally gets a
/// STATS frame carrying its execution trace (protocol v3), after any
/// WARNING and still before the result. The batch stops at the first
/// failing statement (its error frame is the last response before END),
/// matching script-mode semantics in the CLI.
fn run_batch<W: io::Write>(
    stream: &mut W,
    session: &mut crate::manager::SessionHandle,
    sql: &str,
    config: &ServerConfig,
) -> io::Result<()> {
    let pieces = split_statements(sql);
    // Whole-script pre-flight: multi-statement batches run through the
    // dataflow analyzer (`sqlengine::script`, SD013–SD018) against the
    // session catalog, and each finding rides the WARNING frame of the
    // statement it annotates. Error-level findings are demoted to
    // warnings on the wire — the analyzer is advisory here; execution
    // reports the authoritative error when the statement actually runs.
    let mut script_warnings = match pieces.len() > 1 {
        true => session
            .check_script(sql)
            .ok()
            .filter(|a| a.statements.len() == pieces.len())
            .map(|a| a.by_statement(sqlengine::diag::Severity::Warning))
            .unwrap_or_default(),
        false => Default::default(),
    };
    for (idx, piece) in pieces.iter().enumerate() {
        session.counters().add_query();
        // `Session::execute` parses the piece itself so the measured
        // parse time lands in the trace's `parse` stage.
        let (outcome, elapsed) = obs::timed(|| session.execute(piece));
        if let Some(threshold) = config.slow_query_ms {
            let shape = sqlengine::parser::parse_statement(piece)
                .ok()
                .map(|s| sqlengine::statement_shape(&s));
            let line = obs::slow_query_line(
                threshold,
                elapsed,
                &obs::SlowQuery {
                    source: "solvedbd",
                    session: Some(session.id()),
                    sql: piece,
                    shape: shape.as_deref(),
                    trace: outcome.as_ref().ok().and_then(|r| r.trace.as_ref()),
                },
            );
            if let Some(line) = line {
                eprintln!("{line}");
            }
        }
        match outcome {
            Ok(r) => {
                let mut warnings: Vec<_> = script_warnings
                    .remove(&idx)
                    .unwrap_or_default()
                    .into_iter()
                    .map(|mut d| {
                        d.severity = d.severity.min(sqlengine::diag::Severity::Warning);
                        d
                    })
                    .collect();
                warnings.extend(r.warnings);
                if !warnings.is_empty() {
                    write_frame(stream, &Frame::Warning(warnings))?;
                }
                if let Some(trace) = r.trace {
                    write_frame(stream, &Frame::Stats(trace))?;
                }
                match r.outcome {
                    Outcome::Table(t) => write_frame(stream, &Frame::ResultTable(t))?,
                    Outcome::Count(n) => write_frame(stream, &Frame::RowCount(n as u64))?,
                    Outcome::Done => write_frame(stream, &Frame::Done)?,
                }
            }
            Err(e) => {
                write_frame(stream, &error_to_frame(&e))?;
                break;
            }
        }
    }
    write_frame(stream, &Frame::End)
}
