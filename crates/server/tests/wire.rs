//! Wire-protocol conformance tests: every frame type round-trips
//! byte-exactly, and malformed or truncated input is rejected without
//! panics — including property-based coverage over randomized tables.

use proptest::prelude::*;
use server::protocol::{
    decode_body, encode_frame, error_kind, read_frame, Frame, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use sqlengine::types::BitString;
use sqlengine::{Column, DataType, Schema, Table, Value};
use std::io::Cursor;

fn roundtrip(f: &Frame) -> Frame {
    let enc = encode_frame(f);
    read_frame(&mut Cursor::new(enc)).expect("read").expect("frame")
}

fn sample_table() -> Table {
    Table::with_rows(
        Schema::new(vec![
            Column::new("i", DataType::Int),
            Column::new("f", DataType::Float),
            Column::new("s", DataType::Text),
            Column::new("ts", DataType::Timestamp),
            Column::new("iv", DataType::Interval),
            Column::new("b", DataType::Bits),
        ]),
        vec![
            vec![
                Value::Int(-7),
                Value::Float(2.5),
                Value::text("héllo"),
                Value::Timestamp(1_616_500_496_000_000),
                Value::Interval(86_400_000_000),
                Value::Bits(BitString::parse("1010").unwrap()),
            ],
            vec![Value::Null; 6],
        ],
    )
}

#[test]
fn every_frame_type_roundtrips() {
    let frames = [
        Frame::Hello { version: PROTOCOL_VERSION },
        Frame::Hello { version: u16::MAX },
        Frame::Query(String::new()),
        Frame::Query("SOLVESELECT q(x) AS (SELECT * FROM t) USING solverlp()".into()),
        Frame::ResultTable(sample_table()),
        Frame::ResultTable(Table::default()),
        Frame::RowCount(0),
        Frame::RowCount(u64::MAX),
        Frame::Done,
        Frame::Error { kind: error_kind::SOLVER, message: "infeasible".into() },
        Frame::Error { kind: 0xFF, message: String::new() },
        Frame::Ping,
        Frame::Pong,
        Frame::Bye,
        Frame::End,
    ];
    for f in frames {
        assert_eq!(roundtrip(&f), f, "round-trip of {f:?}");
    }
}

#[test]
fn multi_kilobyte_result_table_roundtrips() {
    let rows: Vec<Vec<Value>> = (0..2000)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Timestamp(i * 60_000_000),
                Value::Interval(-i * 1_000),
                if i % 5 == 0 { Value::Null } else { Value::text(format!("name-{i}")) },
            ]
        })
        .collect();
    let t = Table::from_rows(&["id", "at", "lag", "name"], rows);
    let f = Frame::ResultTable(t);
    let enc = encode_frame(&f);
    assert!(enc.len() > 16 * 1024, "expected a multi-KB frame, got {} bytes", enc.len());
    assert_eq!(roundtrip(&f), f);
}

#[test]
fn truncated_frames_are_rejected_at_every_cut() {
    for f in [
        Frame::Query("SELECT 1".into()),
        Frame::ResultTable(sample_table()),
        Frame::Error { kind: 3, message: "boom".into() },
        Frame::Hello { version: 1 },
    ] {
        let enc = encode_frame(&f);
        for cut in 1..enc.len() {
            assert!(
                read_frame(&mut Cursor::new(enc[..cut].to_vec())).is_err(),
                "{f:?}: prefix of {cut}/{} bytes unexpectedly decoded",
                enc.len()
            );
        }
    }
}

#[test]
fn malformed_bodies_are_rejected() {
    // Unknown frame type.
    assert!(decode_body(&[0x66]).is_err());
    // HELLO with the wrong magic.
    assert!(decode_body(&[0x01, b'N', b'O', b'P', b'E', 1, 0]).is_err());
    // QUERY with invalid UTF-8.
    assert!(decode_body(&[0x02, 0xFF, 0xFE]).is_err());
    // ROW_COUNT with the wrong width.
    assert!(decode_body(&[0x04, 1, 2, 3]).is_err());
    // RESULT_TABLE with a garbage payload.
    assert!(decode_body(&[0x03, 0xDE, 0xAD]).is_err());
    // ERROR with no kind byte.
    assert!(decode_body(&[0x06]).is_err());
    // Frames that must be empty, carrying payload.
    for ty in [0x05u8, 0x07, 0x08, 0x09, 0x0A] {
        assert!(decode_body(&[ty, 0x00]).is_err(), "type 0x{ty:02x} accepted a payload");
    }
}

#[test]
fn absurd_frame_length_is_rejected_without_allocation() {
    let mut buf = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
    buf.push(0x07);
    assert!(read_frame(&mut Cursor::new(buf)).is_err());
    // Length zero (no type byte) is also malformed.
    assert!(read_frame(&mut Cursor::new(0u32.to_le_bytes().to_vec())).is_err());
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<i64>().prop_map(|b| Value::Float(f64::from_bits(b as u64))),
        "[a-z0-9]{0,12}".prop_map(Value::text),
        any::<i64>().prop_map(Value::Timestamp),
        any::<i64>().prop_map(Value::Interval),
    ]
}

proptest! {
    #[test]
    fn random_tables_roundtrip_through_result_frames(
        rows in proptest::collection::vec(
            proptest::collection::vec(arb_value(), 3),
            0..40,
        )
    ) {
        let t = Table::with_rows(
            Schema::from_names(&["a", "b", "c"]),
            rows,
        );
        let f = Frame::ResultTable(t);
        let enc = encode_frame(&f);
        let got = read_frame(&mut Cursor::new(enc)).unwrap().unwrap();
        // NaN floats break == on Table; compare via the stable debug
        // rendering, which prints NaN bit-for-bit the same way.
        prop_assert_eq!(format!("{:?}", got), format!("{:?}", f));
    }

    #[test]
    fn random_byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Whatever happens, decoding must return, not panic.
        let _ = read_frame(&mut Cursor::new(bytes.clone()));
        let _ = decode_body(&bytes);
    }
}
