//! Loopback integration tests: a real server on an ephemeral port, real
//! TCP clients, covering the handshake, remote SOLVESELECT parity with
//! a local session, batch error semantics, concurrent isolated
//! sessions, and graceful shutdown with port release.

use server::protocol::{read_frame, write_frame, Frame, PROTOCOL_VERSION};
use server::{Client, ClientError, Server, ServerConfig};
use solvedbplus_core::Session;
use sqlengine::{Outcome, Severity, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// Overall deadline for anything that could deadlock.
const TEST_TIMEOUT: Duration = Duration::from_secs(60);

struct TestServer {
    addr: SocketAddr,
    shutdown: server::ShutdownHandle,
    join: Option<thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn start(workers: usize) -> TestServer {
        TestServer::start_with(ServerConfig { workers, backlog: 16, ..ServerConfig::default() }).0
    }

    fn start_with(config: ServerConfig) -> (TestServer, Option<SocketAddr>) {
        let srv = Server::bind_with("127.0.0.1:0", config).expect("bind ephemeral port");
        let addr = srv.local_addr();
        let metrics_addr = srv.metrics_addr();
        let shutdown = srv.shutdown_handle();
        let join = thread::spawn(move || srv.run());
        (TestServer { addr, shutdown, join: Some(join) }, metrics_addr)
    }

    fn stop(mut self) {
        self.shutdown.shutdown();
        let join = self.join.take().unwrap();
        join.join().expect("server thread").expect("server run");
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            self.shutdown.shutdown();
            let _ = join.join();
        }
    }
}

const LP_SETUP: &str = "CREATE TABLE v (x float8, y float8); INSERT INTO v VALUES (NULL, NULL)";
const LP_SOLVE: &str = "SOLVESELECT q(x, y) AS (SELECT * FROM v) \
     MAXIMIZE (SELECT x + y FROM q) \
     SUBJECTTO (SELECT x <= 4, y <= 2.5, x >= 0, y >= 0 FROM q) \
     USING solverlp()";

#[test]
fn remote_solveselect_matches_local_session() {
    let local_rows = {
        let mut s = Session::new();
        s.execute_script(LP_SETUP).unwrap();
        s.query(LP_SOLVE).unwrap().rows
    };

    let ts = TestServer::start(2);
    let mut client = Client::connect(ts.addr).expect("connect");
    client.execute(LP_SETUP).expect("setup");
    let remote = client.query(LP_SOLVE).expect("remote solve");
    assert_eq!(remote.rows, local_rows);
    assert_eq!(remote.rows, vec![vec![Value::Float(4.0), Value::Float(2.5)]]);
    client.close().unwrap();
    ts.stop();
}

#[test]
fn batch_reports_every_statement_and_stops_at_first_error() {
    let ts = TestServer::start(2);
    let mut client = Client::connect(ts.addr).unwrap();
    let results = client
        .execute(
            "CREATE TABLE t (x int); \
             INSERT INTO t VALUES (1), (2), (3); \
             SELECT sum(x) FROM t; \
             SELECT * FROM missing_table; \
             SELECT 'never runs'",
        )
        .unwrap();
    assert_eq!(results.len(), 4, "three successes then the failing statement");
    assert!(matches!(results[0].as_ref().unwrap().outcome, Outcome::Done));
    assert!(matches!(results[1].as_ref().unwrap().outcome, Outcome::Count(3)));
    match &results[2].as_ref().unwrap().outcome {
        Outcome::Table(t) => assert_eq!(t.scalar().unwrap(), Value::Int(6)),
        other => panic!("expected table, got {other:?}"),
    }
    // The engine error arrives with its category reconstructed.
    assert!(matches!(&results[3], Err(sqlengine::Error::Catalog(_))));
    ts.stop();
}

#[test]
fn analyzer_warnings_survive_the_wire_roundtrip() {
    let ts = TestServer::start(2);
    let mut client = Client::connect(ts.addr).unwrap();
    client.execute_script("CREATE TABLE w (x float8); INSERT INTO w VALUES (NULL)").expect("setup");
    // x has an upper bound but the objective maximizes it with no lower
    // bound relevance — use a model with a decision variable missing the
    // bound the objective pushes toward: maximize x with only x >= 0.
    let results = client
        .execute(
            "SOLVESELECT q(x) AS (SELECT * FROM w) \
             MAXIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT x >= 0, x <= 10, x <= 20 FROM q) \
             USING solverlp()",
        )
        .expect("solve batch");
    assert_eq!(results.len(), 1);
    let r = results[0].as_ref().expect("solve succeeds");
    assert!(matches!(r.outcome, Outcome::Table(_)));
    // `x <= 20` is shadowed by `x <= 10` → SD005 note travels back.
    let sd005 = r
        .warnings
        .iter()
        .find(|d| d.code == "SD005")
        .unwrap_or_else(|| panic!("expected SD005 in warnings, got {:?}", r.warnings));
    assert_eq!(sd005.severity, Severity::Note);
    assert!(sd005.message.contains("shadowed"), "message: {}", sd005.message);
    client.close().unwrap();
    ts.stop();
}

#[test]
fn scriptcheck_findings_ride_the_warning_frames() {
    let ts = TestServer::start(2);
    let mut client = Client::connect(ts.addr).unwrap();
    // A multi-statement batch triggers the whole-script pre-flight:
    // replacing a never-read view fires SD016 on statement 2, attached
    // to that statement's result as a wire warning. Execution itself
    // succeeds throughout.
    let results = client
        .execute(
            "CREATE VIEW v AS SELECT 1 AS a; \
             CREATE OR REPLACE VIEW v AS SELECT 2 AS a; \
             SELECT * FROM v",
        )
        .expect("batch");
    assert_eq!(results.len(), 3);
    let first = results[0].as_ref().expect("create view succeeds");
    assert!(
        !first.warnings.iter().any(|d| d.code == "SD016"),
        "SD016 annotates the replacing statement, not the original: {:?}",
        first.warnings
    );
    let second = results[1].as_ref().expect("replace succeeds");
    let sd016 = second
        .warnings
        .iter()
        .find(|d| d.code == "SD016")
        .unwrap_or_else(|| panic!("expected SD016 in warnings, got {:?}", second.warnings));
    assert_eq!(sd016.severity, Severity::Warning);
    assert!(sd016.message.contains("replaced"), "message: {}", sd016.message);
    match &results[2].as_ref().expect("select succeeds").outcome {
        Outcome::Table(t) => assert_eq!(t.scalar().unwrap(), Value::Int(2)),
        other => panic!("expected table, got {other:?}"),
    }
    client.close().unwrap();
    ts.stop();
}

#[test]
fn presolve_warnings_survive_the_wire_roundtrip() {
    let ts = TestServer::start(2);
    let mut client = Client::connect(ts.addr).unwrap();
    client
        .execute_script("CREATE TABLE p (x float8, y float8); INSERT INTO p VALUES (NULL, NULL)")
        .expect("setup");
    // Coefficients spanning 12 orders of magnitude on a solvable model:
    // the presolve analyzer's SD012 warning must come back over SDBP.
    let results = client
        .execute(
            "SOLVESELECT q(x, y) AS (SELECT * FROM p) \
             MINIMIZE (SELECT sum(x + y) FROM q) \
             SUBJECTTO (SELECT 1000000000.0 * x + 0.001 * y <= 5, \
                        0 <= x <= 1, 0 <= y <= 1 FROM q) \
             USING solverlp()",
        )
        .expect("solve batch");
    assert_eq!(results.len(), 1);
    let r = results[0].as_ref().expect("solve succeeds");
    assert!(matches!(r.outcome, Outcome::Table(_)));
    let sd012 = r
        .warnings
        .iter()
        .find(|d| d.code == "SD012")
        .unwrap_or_else(|| panic!("expected SD012 in warnings, got {:?}", r.warnings));
    assert_eq!(sd012.severity, Severity::Warning);
    assert!(sd012.message.contains("orders of magnitude"), "message: {}", sd012.message);
    // The presolve counters ride along in the STATS frame.
    let trace = r.trace.as_ref().expect("trace travels with the result");
    let st = trace.solvers.first().expect("solver stats");
    assert!(st.presolve_bounds > 0, "presolve counters lost on the wire: {st:?}");
    client.close().unwrap();
    ts.stop();
}

#[test]
fn stats_frame_carries_the_execution_trace_over_the_wire() {
    let ts = TestServer::start(2);
    let mut client = Client::connect(ts.addr).unwrap();
    client.execute_script(LP_SETUP).expect("setup");
    let results = client.execute(LP_SOLVE).expect("solve batch");
    assert_eq!(results.len(), 1);
    let r = results[0].as_ref().expect("solve succeeds");
    let trace = r.trace.as_ref().expect("SOLVESELECT results carry a trace (protocol v3)");
    assert_eq!(trace.label, "SOLVESELECT");

    // Stage tree sanity: nonzero stage durations summing to at most the
    // total, and the canonical stages present.
    assert!(!trace.stages.is_empty());
    assert!(trace.stages.iter().all(|s| s.nanos >= 1), "zero-duration stage in {trace:?}");
    let root_sum: u64 = trace.stages.iter().map(|s| s.nanos).sum();
    assert!(
        root_sum <= trace.total_nanos,
        "stage sum {root_sum} exceeds total {}",
        trace.total_nanos
    );
    let names: Vec<&str> = trace.stages.iter().map(|s| s.name.as_str()).collect();
    for expected in ["plan", "check", "solve"] {
        assert!(names.contains(&expected), "missing stage {expected} in {names:?}");
    }

    // Solver telemetry survived the round-trip.
    assert_eq!(trace.solvers.len(), 1);
    let st = &trace.solvers[0];
    assert_eq!(st.solver, "solverlp");
    assert!(st.iterations > 0);
    assert_eq!(st.objective, Some(6.5));

    // Plain SQL is not traced: no STATS frame, no attached trace.
    let plain = client.execute("SELECT 1").unwrap();
    assert!(plain[0].as_ref().unwrap().trace.is_none());

    // The server-side metrics tables saw this connection's statements.
    let t = client.query("SELECT queries FROM sdb_sessions").unwrap();
    assert_eq!(t.num_rows(), 1, "one live session");
    assert!(t.rows[0][0].as_i64().unwrap() >= 3);
    let solver_runs = client.query_scalar("SELECT runs FROM sdb_solver_stats").unwrap();
    assert_eq!(solver_runs, Value::Int(1));
    client.close().unwrap();
    ts.stop();
}

#[test]
fn ping_and_session_state_persist_across_calls() {
    let ts = TestServer::start(2);
    let mut client = Client::connect(ts.addr).unwrap();
    client.ping().unwrap();
    client.execute_script("CREATE TABLE acc (x int); INSERT INTO acc VALUES (41)").unwrap();
    client.execute("INSERT INTO acc VALUES (1)").unwrap();
    assert_eq!(
        client.query_scalar("SELECT sum(x) FROM acc").unwrap(),
        Value::Int(42),
        "tables created earlier on this connection stay visible"
    );
    client.ping().unwrap();
    ts.stop();
}

#[test]
fn sessions_of_different_clients_are_isolated() {
    let ts = TestServer::start(4);
    let mut a = Client::connect(ts.addr).unwrap();
    let mut b = Client::connect(ts.addr).unwrap();
    a.execute("CREATE TABLE private_a (x int)").unwrap();
    let res = b.execute("SELECT * FROM private_a").unwrap();
    assert!(
        matches!(res.last(), Some(Err(sqlengine::Error::Catalog(_)))),
        "client B must not see client A's tables, got {res:?}"
    );
    ts.stop();
}

#[test]
fn unknown_protocol_version_is_rejected() {
    let ts = TestServer::start(1);
    let mut raw = TcpStream::connect(ts.addr).unwrap();
    write_frame(&mut raw, &Frame::Hello { version: PROTOCOL_VERSION + 41 }).unwrap();
    match read_frame(&mut raw).unwrap() {
        Some(Frame::Error { message, .. }) => {
            assert!(
                message.contains("version"),
                "error should mention the version mismatch: {message}"
            );
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    // The server must hang up after rejecting the handshake.
    assert!(read_frame(&mut raw).unwrap().is_none(), "connection should be closed");

    // And the Client constructor surfaces the same failure cleanly.
    let mut bad = TcpStream::connect(ts.addr).unwrap();
    write_frame(&mut bad, &Frame::Query("sneaking past the handshake".into())).unwrap();
    match read_frame(&mut bad).unwrap() {
        Some(Frame::Error { .. }) => {}
        other => panic!("expected an error frame for a missing HELLO, got {other:?}"),
    }
    ts.stop();
}

#[test]
fn malformed_frames_get_an_error_not_a_hang() {
    let ts = TestServer::start(1);
    let mut raw = TcpStream::connect(ts.addr).unwrap();
    write_frame(&mut raw, &Frame::Hello { version: PROTOCOL_VERSION }).unwrap();
    assert!(matches!(read_frame(&mut raw).unwrap(), Some(Frame::Hello { .. })));
    // A frame with an unknown type byte.
    use std::io::Write;
    raw.write_all(&2u32.to_le_bytes()).unwrap();
    raw.write_all(&[0x7E, 0x00]).unwrap();
    raw.flush().unwrap();
    raw.set_read_timeout(Some(TEST_TIMEOUT)).unwrap();
    match read_frame(&mut raw).unwrap() {
        Some(Frame::Error { .. }) => {}
        other => panic!("expected a protocol error frame, got {other:?}"),
    }
    ts.stop();
}

#[test]
fn eight_concurrent_clients_run_isolated_lp_problems() {
    let ts = TestServer::start(8);
    let addr = ts.addr;
    let (tx, rx) = mpsc::channel::<(usize, Result<Value, String>)>();

    for i in 0..8usize {
        let tx = tx.clone();
        thread::spawn(move || {
            let run = || -> Result<Value, ClientError> {
                let mut c = Client::connect(addr)?;
                // Every client gets its own namespace: same table name,
                // different bound, so cross-talk would be visible.
                let bound = (i + 1) as f64;
                c.execute_script("CREATE TABLE work (x float8); INSERT INTO work VALUES (NULL)")?;
                let v = c.query_scalar(&format!(
                    "SOLVESELECT q(x) AS (SELECT * FROM work) \
                     MAXIMIZE (SELECT x FROM q) \
                     SUBJECTTO (SELECT x <= {bound}, x >= 0 FROM q) \
                     USING solverlp()"
                ))?;
                c.close()?;
                Ok(v)
            };
            let _ = tx.send((i, run().map_err(|e| e.to_string())));
        });
    }
    drop(tx);

    let mut seen = [false; 8];
    for _ in 0..8 {
        let (i, outcome) = rx.recv_timeout(TEST_TIMEOUT).expect("a client deadlocked or timed out");
        let v = outcome.unwrap_or_else(|e| panic!("client {i} failed: {e}"));
        assert_eq!(v.as_f64().unwrap(), (i + 1) as f64, "client {i} read someone else's optimum");
        seen[i] = true;
    }
    assert!(seen.iter().all(|&s| s), "every client must report back");
    ts.stop();
}

#[test]
fn graceful_shutdown_releases_the_port() {
    let ts = TestServer::start(2);
    let addr = ts.addr;
    // Leave a live connection open to prove shutdown doesn't hang on it.
    let mut lingering = Client::connect(addr).unwrap();
    lingering.ping().unwrap();
    ts.stop();

    // The port must be immediately rebindable after run() returns.
    let again =
        Server::bind_with(addr, ServerConfig { workers: 1, backlog: 4, ..ServerConfig::default() })
            .expect("rebinding the released port");
    drop(again);

    // And new connections to the stopped server must fail.
    assert!(Client::connect(addr).is_err());
}

/// A solve that cannot finish on its own within test time: PSO with an
/// absurd iteration budget, so only the watchdog (budget or CANCEL)
/// ends it. Progress points fire every iteration.
const LONG_SOLVE_SETUP: &str = "CREATE TABLE bb (x float8); INSERT INTO bb VALUES (NULL)";
const LONG_SOLVE: &str = "SOLVESELECT q(x) AS (SELECT * FROM bb) \
     MINIMIZE (SELECT (x - 3) * (x - 3) FROM q) \
     SUBJECTTO (SELECT x >= -10, x <= 10 FROM q) \
     USING swarmops.pso(iterations := 100000000)";

#[test]
fn v4_clients_stream_progress_and_timeouts_are_clean() {
    let (ts, _) = TestServer::start_with(ServerConfig {
        workers: 2,
        solver_timeout_ms: Some(700),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(ts.addr).unwrap();
    assert_eq!(client.protocol_version(), PROTOCOL_VERSION);
    client.execute_script(LONG_SOLVE_SETUP).unwrap();
    let mut events = Vec::new();
    let results = client
        .execute_with_progress(LONG_SOLVE, &mut |ev| events.push(ev.clone()))
        .expect("transport survives the timeout");
    // The server-side default budget kills the solve cleanly.
    assert_eq!(results.len(), 1);
    match &results[0] {
        Err(sqlengine::Error::SolveTimeout(m)) => {
            assert!(m.contains("budget"), "timeout message: {m}");
            assert!(m.contains("incumbent"), "trajectory missing: {m}");
        }
        other => panic!("expected SolveTimeout, got {other:?}"),
    }
    // Live progress arrived mid-solve (first frame after the 100 ms
    // emit throttle, well inside the 700 ms budget).
    assert!(!events.is_empty(), "no PROGRESS frames for a 700 ms solve");
    assert!(events.iter().all(|e| e.solver == "swarmops" && e.method == "pso"));
    assert!(events.last().unwrap().evaluations > 0);
    // The session survives: same connection keeps working, and the
    // per-session override can lift the server default.
    assert_eq!(client.query_scalar("SELECT 1 + 1").unwrap(), Value::Int(2));
    client.execute("SET solver_timeout_ms = 0").unwrap();
    client.close().unwrap();
    ts.stop();
}

#[test]
fn cancel_from_another_session_kills_a_running_solve() {
    let ts = TestServer::start(2);
    let addr = ts.addr;
    let (started_tx, started_rx) = mpsc::channel::<u64>();
    let victim = thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.execute_script(LONG_SOLVE_SETUP).unwrap();
        let id = c.query_scalar("SELECT session_id FROM sdb_sessions").unwrap();
        started_tx.send(id.as_i64().unwrap() as u64).unwrap();
        let results = c.execute(LONG_SOLVE).expect("transport survives the cancel");
        let _ = c.close();
        results
    });
    let victim_id = started_rx.recv_timeout(TEST_TIMEOUT).expect("victim started");
    // Give the victim a moment to be inside the solve; even if CANCEL
    // lands first, the pending kill aborts the next solve anyway.
    thread::sleep(Duration::from_millis(300));
    let mut killer = Client::connect(addr).unwrap();
    killer.execute(&format!("CANCEL {victim_id}")).expect("CANCEL executes");
    let results = victim.join().expect("victim thread");
    match results.last() {
        Some(Err(sqlengine::Error::SolveTimeout(m))) => {
            assert!(m.contains("cancelled"), "cancel message: {m}");
        }
        other => panic!("expected a cancelled SolveTimeout, got {other:?}"),
    }
    // Cancelling a dead session reports cleanly.
    let miss = killer.execute("CANCEL 9999").unwrap();
    assert!(matches!(miss.last(), Some(Err(_))), "CANCEL of unknown session should error");
    killer.close().unwrap();
    ts.stop();
}

#[test]
fn v3_clients_still_connect_and_never_see_progress_frames() {
    let ts = TestServer::start(1);
    let mut raw = TcpStream::connect(ts.addr).unwrap();
    raw.set_read_timeout(Some(TEST_TIMEOUT)).unwrap();
    write_frame(&mut raw, &Frame::Hello { version: 3 }).unwrap();
    match read_frame(&mut raw).unwrap() {
        Some(Frame::Hello { version }) => assert_eq!(version, 3, "server echoes the old version"),
        other => panic!("expected HELLO echo, got {other:?}"),
    }
    // Run a budgeted long solve on the v3 connection: the watchdog
    // still applies, but no PROGRESS frame may reach a v3 peer.
    write_frame(
        &mut raw,
        &Frame::Query(format!("{LONG_SOLVE_SETUP}; SET solver_timeout_ms = 400; {LONG_SOLVE}")),
    )
    .unwrap();
    let mut saw_timeout = false;
    loop {
        match read_frame(&mut raw).unwrap() {
            Some(Frame::Progress(ev)) => panic!("v3 peer received PROGRESS: {ev:?}"),
            Some(Frame::Error { message, .. }) => {
                assert!(message.contains("budget"), "expected the watchdog error: {message}");
                saw_timeout = true;
            }
            Some(Frame::End) => break,
            Some(_) => {}
            None => panic!("server hung up mid-batch"),
        }
    }
    assert!(saw_timeout, "the budget must fire on v3 connections too");
    write_frame(&mut raw, &Frame::Bye).unwrap();
    ts.stop();
}

#[test]
fn metrics_endpoint_serves_prometheus_text() {
    let (ts, metrics_addr) = TestServer::start_with(ServerConfig {
        workers: 2,
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    });
    let metrics_addr = metrics_addr.expect("metrics listener bound");

    // Generate some traffic so histograms are non-empty.
    let mut client = Client::connect(ts.addr).unwrap();
    client.execute_script(LP_SETUP).unwrap();
    client.query(LP_SOLVE).unwrap();

    let scrape = |path: &str| -> String {
        let mut s = TcpStream::connect(metrics_addr).unwrap();
        s.set_read_timeout(Some(TEST_TIMEOUT)).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
        let mut body = String::new();
        s.read_to_string(&mut body).unwrap();
        body
    };
    let response = scrape("/metrics");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("# TYPE sdb_statements_total counter"), "{response}");
    assert!(response.contains("# TYPE sdb_statement_latency_seconds histogram"), "{response}");
    assert!(response.contains("sdb_statement_latency_seconds_bucket"), "{response}");
    assert!(response.contains("sdb_stage_latency_seconds_bucket{stage=\"solve\","), "{response}");
    assert!(response.contains("sdb_solver_runs_total{solver=\"solverlp\""), "{response}");
    assert!(response.contains("sdb_sessions_active 1"), "{response}");

    let missing = scrape("/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    client.close().unwrap();
    ts.stop();
}

#[test]
fn accept_backlog_does_not_lose_connections() {
    // More clients than workers: the bounded pool must serve them all
    // eventually rather than dropping or deadlocking.
    let ts = TestServer::start(2);
    let addr = ts.addr;
    let (tx, rx) = mpsc::channel();
    for i in 0..6 {
        let tx = tx.clone();
        thread::spawn(move || {
            let ok = (|| -> Result<bool, ClientError> {
                let mut c = Client::connect(addr)?;
                let v = c.query_scalar(&format!("SELECT {i} * 2"))?;
                Ok(v == Value::Int(i * 2))
            })();
            let _ = tx.send(ok.unwrap_or(false));
        });
    }
    drop(tx);
    for _ in 0..6 {
        assert!(rx.recv_timeout(TEST_TIMEOUT).expect("client timed out"));
    }
    ts.stop();
}
