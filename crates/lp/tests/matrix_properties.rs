//! Soundness of the matrix classification pass, checked against
//! brute-force oracles:
//!
//! - every claimed total-unimodularity certificate is re-verified by
//!   enumerating ALL square submatrices and computing their exact
//!   integer determinants (the definition of TU);
//! - every claimed row class is re-checked against the raw constraint
//!   coefficients, independently of the classifier's own
//!   normalization;
//! - every claimed implied-integral relaxation is validated end to end:
//!   branch-and-bound on the relaxed problem must produce the same
//!   objective as on the original, with the declared integer variables
//!   still integral.

use lp::matrix::{self, RowClass};
use lp::{mip, Problem, Rel, Status};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dense integer copy of the constraint matrix (rows × num_vars),
/// duplicates summed — the ground truth the oracles work from. Returns
/// `None` when any merged coefficient is not an integer (the TU oracle
/// only runs on integer matrices).
fn dense_int_matrix(p: &Problem) -> Option<Vec<Vec<i64>>> {
    let mut m = Vec::with_capacity(p.constraints.len());
    for c in &p.constraints {
        let mut row = vec![0.0f64; p.num_vars];
        for &(j, a) in &c.coeffs {
            row[j] += a;
        }
        let mut irow = Vec::with_capacity(p.num_vars);
        for v in row {
            if (v - v.round()).abs() > 1e-9 {
                return None;
            }
            irow.push(v.round() as i64);
        }
        m.push(irow);
    }
    Some(m)
}

/// Exact integer determinant by cofactor expansion (k ≤ 6 here).
fn det(m: &[Vec<i64>]) -> i64 {
    let k = m.len();
    if k == 0 {
        return 1;
    }
    if k == 1 {
        return m[0][0];
    }
    let mut sum = 0i64;
    for (col, &a) in m[0].iter().enumerate() {
        if a == 0 {
            continue;
        }
        let minor: Vec<Vec<i64>> = m[1..]
            .iter()
            .map(|row| row.iter().enumerate().filter(|&(c, _)| c != col).map(|(_, &v)| v).collect())
            .collect();
        let sign = if col % 2 == 0 { 1 } else { -1 };
        sum += sign * a * det(&minor);
    }
    sum
}

/// Brute-force TU check: every square submatrix has determinant in
/// {-1, 0, 1}. Exponential — fine for the ≤ 6×6 matrices used here.
fn is_totally_unimodular(m: &[Vec<i64>]) -> bool {
    let rows = m.len();
    let cols = if rows == 0 { 0 } else { m[0].len() };
    let max_k = rows.min(cols);
    for k in 1..=max_k {
        let row_sets = subsets(rows, k);
        let col_sets = subsets(cols, k);
        for rs in &row_sets {
            for cs in &col_sets {
                let sub: Vec<Vec<i64>> =
                    rs.iter().map(|&r| cs.iter().map(|&c| m[r][c]).collect()).collect();
                if det(&sub).abs() > 1 {
                    return false;
                }
            }
        }
    }
    true
}

/// All k-element subsets of 0..n.
fn subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    rec(0, n, k, &mut cur, &mut out);
    out
}

/// Random small MIP-ish problem: n vars, some binary, some general
/// integer, some continuous; m rows drawn from shapes that exercise
/// every branch of the classifier (set rows, knapsacks, flow rows,
/// variable bounds, junk rows, duplicate coefficients).
fn random_problem(seed: u64, n: usize, m: usize) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Problem::maximize(n);
    for j in 0..n {
        match rng.gen_range(0..3) {
            0 => {
                p.set_bounds(j, 0.0, 1.0);
                p.integer[j] = true;
            }
            1 => {
                p.set_bounds(j, 0.0, rng.gen_range(1..6) as f64);
                p.integer[j] = true;
            }
            _ => p.set_bounds(j, 0.0, 10.0),
        }
    }
    p.set_objective((0..n).map(|j| (j, rng.gen_range(-3i32..=3) as f64)).collect());
    for _ in 0..m {
        let kind = rng.gen_range(0..5);
        let nnz = rng.gen_range(1..=n);
        let mut vars: Vec<usize> = (0..n).collect();
        for i in (1..vars.len()).rev() {
            vars.swap(i, rng.gen_range(0..=i));
        }
        vars.truncate(nnz);
        let rel = match rng.gen_range(0..3) {
            0 => Rel::Le,
            1 => Rel::Ge,
            _ => Rel::Eq,
        };
        let mut coeffs: Vec<(usize, f64)> = match kind {
            // All-ones (set / cardinality shapes).
            0 => vars.iter().map(|&j| (j, 1.0)).collect(),
            // ±1 (flow shapes).
            1 => vars.iter().map(|&j| (j, if rng.gen_bool(0.5) { 1.0 } else { -1.0 })).collect(),
            // Positive weights (knapsack shapes).
            2 => vars.iter().map(|&j| (j, rng.gen_range(1..5) as f64)).collect(),
            // Anything.
            _ => vars.iter().map(|&j| (j, rng.gen_range(-4i32..=4) as f64)).collect(),
        };
        // Occasionally split a coefficient into duplicate entries to
        // exercise the classifier's merging.
        if rng.gen_bool(0.2) {
            if let Some(&(j, a)) = coeffs.first() {
                coeffs[0] = (j, a / 2.0);
                coeffs.push((j, a / 2.0));
            }
        }
        let rhs = rng.gen_range(-2i32..=8) as f64;
        p.add_constraint(coeffs, rel, rhs);
    }
    p
}

/// Merged (deduplicated, zero-dropped) view of a row's coefficients.
fn merged(p: &Problem, i: usize) -> Vec<(usize, f64)> {
    let mut dense = vec![0.0f64; p.num_vars];
    for &(j, a) in &p.constraints[i].coeffs {
        dense[j] += a;
    }
    dense.iter().enumerate().filter(|&(_, &a)| a != 0.0).map(|(j, &a)| (j, a)).collect()
}

fn is_binary(p: &Problem, j: usize) -> bool {
    p.integer[j] && p.lower[j] == 0.0 && p.upper[j] == 1.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Claimed TU certificates survive brute-force subdeterminant
    /// enumeration — the definition of total unimodularity.
    #[test]
    fn tu_certificates_are_sound(seed in 0u64..20_000, n in 2usize..6, m in 1usize..6) {
        let p = random_problem(seed, n, m);
        let a = matrix::analyze(&p);
        if a.tu.is_some() {
            let dense = dense_int_matrix(&p);
            prop_assert!(dense.is_some(), "TU claimed on a non-integer matrix");
            if let Some(d) = dense {
                prop_assert!(
                    is_totally_unimodular(&d),
                    "claimed {:?} refuted by brute force on {:?}", a.tu, d
                );
            }
        }
    }

    /// Row-class claims hold against the raw coefficients: each class's
    /// defining invariants are re-checked from the constraint as
    /// written, independent of the classifier's normalization.
    #[test]
    fn row_classes_are_sound(seed in 0u64..20_000, n in 2usize..6, m in 1usize..6) {
        let p = random_problem(seed, n, m);
        let a = matrix::analyze(&p);
        prop_assert_eq!(a.row_classes.len(), p.constraints.len());
        for (i, &class) in a.row_classes.iter().enumerate() {
            let mut terms = merged(&p, i);
            let mut rel = p.constraints[i].rel;
            let mut rhs = p.constraints[i].rhs;
            // The classifier's single normalization, applied here too:
            // an all-negative row is flipped back to positive form.
            // Negation preserves the feasible set, so the invariants
            // below describe the same constraint either way.
            if !terms.is_empty() && terms.iter().all(|&(_, c)| c < 0.0) {
                for t in &mut terms {
                    t.1 = -t.1;
                }
                rel = match rel {
                    Rel::Le => Rel::Ge,
                    Rel::Ge => Rel::Le,
                    Rel::Eq => Rel::Eq,
                };
                rhs = -rhs;
            }
            let all_ones = terms.iter().all(|&(_, c)| c == 1.0);
            let all_binary = terms.iter().all(|&(j, _)| is_binary(&p, j));
            match class {
                RowClass::SetPartitioning => prop_assert!(
                    all_ones && all_binary && rel == Rel::Eq && rhs == 1.0 && terms.len() >= 2),
                RowClass::SetPacking => prop_assert!(
                    all_ones && all_binary && rel == Rel::Le && rhs == 1.0 && terms.len() >= 2),
                RowClass::SetCovering => prop_assert!(
                    all_ones && all_binary && rel == Rel::Ge && rhs == 1.0 && terms.len() >= 2),
                RowClass::Cardinality => prop_assert!(
                    all_ones && all_binary && rhs >= 2.0 && rhs.fract() == 0.0),
                RowClass::VariableBound => {
                    prop_assert!(terms.len() == 2 && rel != Rel::Eq);
                    prop_assert!(terms.iter().any(|&(j, _)| is_binary(&p, j)));
                    prop_assert!(terms.iter().any(|&(j, _)| !is_binary(&p, j)));
                }
                RowClass::Knapsack => prop_assert!(
                    rel == Rel::Le && rhs > 0.0 && !(all_ones && all_binary)
                        && terms.iter().all(|&(j, c)| c > 0.0 && p.integer[j])),
                RowClass::Cover => prop_assert!(
                    rel == Rel::Ge && rhs > 0.0 && !(all_ones && all_binary)
                        && terms.iter().all(|&(j, c)| c > 0.0 && p.integer[j])),
                RowClass::FlowBalance => prop_assert!(
                    rel == Rel::Eq && terms.len() >= 2
                        && terms.iter().all(|&(_, c)| c == 1.0 || c == -1.0)),
                RowClass::General => {}
            }
        }
    }

    /// Acting on implied integrality is safe: relaxing the claimed
    /// variables changes neither the optimal objective nor the
    /// integrality of any declared-integer variable.
    #[test]
    fn implied_integrality_is_sound(seed in 0u64..10_000, n in 2usize..5, m in 1usize..5) {
        let p = random_problem(seed, n, m);
        let a = matrix::analyze(&p);
        if a.relaxable.is_empty() || !p.has_integers() {
            return Ok(());
        }
        let mut relaxed = p.clone();
        for &j in &a.relaxable {
            relaxed.integer[j] = false;
        }
        let full = mip::branch_and_bound(&p, mip::MipOptions::default());
        let shortcut = mip::branch_and_bound(&relaxed, mip::MipOptions::default());
        prop_assert_eq!(full.status, shortcut.status, "status diverged under relaxation");
        if full.status == Status::Optimal {
            prop_assert!(
                (full.objective - shortcut.objective).abs() <= 1e-6 * (1.0 + full.objective.abs()),
                "objective changed: full {} vs relaxed {}", full.objective, shortcut.objective
            );
            for j in 0..p.num_vars {
                if p.integer[j] {
                    prop_assert!(
                        (shortcut.x[j] - shortcut.x[j].round()).abs() <= 1e-6,
                        "declared-integer x[{}] = {} fractional under relaxation",
                        j, shortcut.x[j]
                    );
                }
            }
        }
    }

    /// A full TU certificate over integral data really does make the LP
    /// relaxation exact: solving with all integrality dropped yields an
    /// integral optimum at the branch-and-bound objective.
    #[test]
    fn tu_shortcut_matches_bb(seed in 0u64..20_000, n in 2usize..6, m in 1usize..6) {
        let p = random_problem(seed, n, m);
        let a = matrix::analyze(&p);
        if a.exactness_proof().is_none() || !p.has_integers() {
            return Ok(());
        }
        let mut relaxed = p.clone();
        relaxed.integer.iter_mut().for_each(|b| *b = false);
        let lp_sol = lp::simplex::solve_lp(&relaxed);
        let bb = mip::branch_and_bound(&p, mip::MipOptions::default());
        prop_assert_eq!(lp_sol.status, bb.status, "status diverged under TU shortcut");
        if bb.status == Status::Optimal {
            prop_assert!(
                (lp_sol.objective - bb.objective).abs() <= 1e-6 * (1.0 + bb.objective.abs()),
                "TU shortcut objective {} vs bb {}", lp_sol.objective, bb.objective
            );
            for j in 0..p.num_vars {
                if p.integer[j] {
                    prop_assert!(
                        (lp_sol.x[j] - lp_sol.x[j].round()).abs() <= 1e-6,
                        "TU-exact vertex has fractional x[{}] = {}", j, lp_sol.x[j]
                    );
                }
            }
        }
    }
}

/// The random corpus is not vacuous: over a fixed seed range, every
/// oracle path (TU claims, special row classes, relaxable variables)
/// is actually exercised.
#[test]
fn corpus_exercises_every_oracle() {
    let (mut tu, mut special, mut relaxable) = (0usize, 0usize, 0usize);
    for seed in 0..2000u64 {
        let p = random_problem(seed, 2 + (seed % 4) as usize, 1 + (seed % 5) as usize);
        let a = matrix::analyze(&p);
        tu += usize::from(a.tu.is_some());
        special += usize::from(a.special_rows() > 0);
        relaxable += usize::from(!a.relaxable.is_empty());
    }
    assert!(tu >= 20, "only {tu} TU claims in 2000 problems");
    assert!(special >= 200, "only {special} problems with special rows");
    assert!(relaxable >= 20, "only {relaxable} problems with relaxable vars");
}
