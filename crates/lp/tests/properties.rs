//! Property-based checks of the simplex and branch-and-bound against
//! sampling and exhaustive oracles.

use lp::{mip, simplex::solve_lp, Problem, Rel, Status};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a random bounded LP: n vars in [0, 10], m constraints
/// `a'x <= b` with coefficients in [-3, 3] and rhs chosen so the origin
/// region stays feasible reasonably often.
fn random_lp(seed: u64, n: usize, m: usize) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Problem::minimize(n);
    for j in 0..n {
        p.set_bounds(j, 0.0, 10.0);
    }
    p.set_objective((0..n).map(|j| (j, rng.gen_range(-5.0..5.0))).collect());
    for _ in 0..m {
        let coeffs: Vec<(usize, f64)> =
            (0..n).map(|j| (j, (rng.gen_range(-3i32..=3)) as f64)).collect();
        let rhs = rng.gen_range(0.0..30.0);
        let rel = if rng.gen_bool(0.7) { Rel::Le } else { Rel::Ge };
        p.add_constraint(coeffs, rel, if rel == Rel::Ge { -rhs } else { rhs });
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Simplex optimal solutions are feasible and no sampled feasible
    /// point beats them.
    #[test]
    fn simplex_not_beaten_by_sampling(seed in 0u64..5000, n in 1usize..5, m in 1usize..5) {
        let p = random_lp(seed, n, m);
        let sol = solve_lp(&p);
        match sol.status {
            Status::Optimal => {
                prop_assert!(p.is_feasible(&sol.x, 1e-5), "optimal point infeasible");
                // Sample candidates; none may be better than optimal.
                let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
                for _ in 0..300 {
                    let x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
                    if p.is_feasible(&x, 1e-9) {
                        let v = p.objective_value(&x);
                        prop_assert!(
                            v >= sol.objective - 1e-5,
                            "sampled point beats simplex: {} < {}", v, sol.objective
                        );
                    }
                }
            }
            Status::Infeasible => {
                // No sampled point may be feasible.
                let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
                for _ in 0..300 {
                    let x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
                    prop_assert!(!p.is_feasible(&x, 1e-9), "feasible point exists: {:?}", x);
                }
            }
            Status::Unbounded => {
                // Bounded box + bounded objective means this can't happen.
                prop_assert!(false, "bounded LP reported unbounded");
            }
            Status::NodeLimit => prop_assert!(false, "LP reported node limit"),
            Status::Interrupted => {
                // No callback installed here, so the search can never
                // be interrupted.
                prop_assert!(false, "LP reported interrupted without a callback");
            }
        }
    }

    /// Branch-and-bound equals exhaustive enumeration on small integer
    /// boxes.
    #[test]
    fn mip_matches_exhaustive(seed in 0u64..2000, n in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = Problem::maximize(n);
        for j in 0..n {
            p.set_bounds(j, 0.0, 4.0);
            p.integer[j] = true;
        }
        p.set_objective((0..n).map(|j| (j, rng.gen_range(-5.0..5.0))).collect());
        let coeffs: Vec<(usize, f64)> = (0..n).map(|j| (j, rng.gen_range(0.5..3.0))).collect();
        let cap = rng.gen_range(2.0..10.0);
        p.add_constraint(coeffs.clone(), Rel::Le, cap);

        // Exhaustive oracle over the 5^n lattice.
        let mut best: Option<f64> = None;
        let mut idx = vec![0usize; n];
        loop {
            let x: Vec<f64> = idx.iter().map(|&v| v as f64).collect();
            if p.is_feasible(&x, 1e-9) {
                let v = p.objective_value(&x);
                best = Some(best.map_or(v, |b: f64| b.max(v)));
            }
            // Increment the mixed-radix counter.
            let mut k = 0;
            loop {
                if k == n {
                    break;
                }
                idx[k] += 1;
                if idx[k] <= 4 {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
            if k == n {
                break;
            }
        }

        let sol = mip::branch_and_bound(&p, mip::MipOptions::default());
        match best {
            None => prop_assert_eq!(sol.status, Status::Infeasible),
            Some(b) => {
                prop_assert_eq!(sol.status, Status::Optimal);
                prop_assert!((sol.objective - b).abs() < 1e-6,
                    "bb {} vs exhaustive {}", sol.objective, b);
            }
        }
    }

    /// Equality-constrained systems: simplex solutions satisfy Ax = b.
    #[test]
    fn equality_constraints_hold(seed in 0u64..2000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 3;
        let mut p = Problem::minimize(n);
        for j in 0..n {
            p.set_bounds(j, -5.0, 5.0);
        }
        p.set_objective(vec![(0, 1.0), (1, 1.0), (2, 1.0)]);
        let coeffs: Vec<(usize, f64)> = (0..n).map(|j| (j, rng.gen_range(1.0..3.0))).collect();
        let rhs = rng.gen_range(-5.0..5.0);
        p.add_constraint(coeffs.clone(), Rel::Eq, rhs);
        let sol = solve_lp(&p);
        if sol.status == Status::Optimal {
            let lhs: f64 = coeffs.iter().map(|&(j, a)| a * sol.x[j]).sum();
            prop_assert!((lhs - rhs).abs() < 1e-6, "Ax = {} vs b = {}", lhs, rhs);
        }
    }
}
