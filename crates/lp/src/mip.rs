//! Branch-and-bound mixed-integer programming on top of the simplex.
//!
//! Best-first search on the LP relaxation bound, most-fractional
//! branching, with an optional node limit. This replaces the CBC/GLPK
//! MIP solvers used by the paper's `solverlp`.

use crate::simplex::solve_lp;
use crate::{Problem, Solution, Status};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

const INT_TOL: f64 = 1e-6;

/// Branch-and-bound options.
#[derive(Debug, Clone, Copy)]
pub struct MipOptions {
    /// Maximum number of explored nodes before giving up with the best
    /// incumbent found so far.
    pub node_limit: usize,
    /// Relative optimality gap at which search stops.
    pub gap: f64,
}

impl Default for MipOptions {
    fn default() -> Self {
        MipOptions { node_limit: 100_000, gap: 1e-9 }
    }
}

struct Node {
    /// Bound changes relative to the root problem: (var, lower, upper).
    changes: Vec<(usize, f64, f64)>,
    /// LP relaxation bound of the parent (minimization sense).
    bound: f64,
    depth: usize,
}

/// Best-first: smaller bound (for minimization-sense values) explored
/// first.
impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for best (smallest) first.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then(other.depth.cmp(&self.depth))
    }
}

/// Pick the most fractional integer variable of a relaxation solution.
fn pick_branch_var(p: &Problem, x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64, f64)> = None; // (var, value, frac-dist)
    for j in 0..p.num_vars {
        if p.integer[j] {
            let f = x[j] - x[j].floor();
            let dist = (f - 0.5).abs();
            if f > INT_TOL && f < 1.0 - INT_TOL {
                match best {
                    None => best = Some((j, x[j], dist)),
                    Some((_, _, d)) if dist < d => best = Some((j, x[j], dist)),
                    _ => {}
                }
            }
        }
    }
    best.map(|(j, v, _)| (j, v))
}

/// Search telemetry from one branch-and-bound run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MipStats {
    /// Nodes whose LP relaxation was solved.
    pub nodes_explored: usize,
    /// Nodes discarded by bound or by an infeasible relaxation before
    /// branching.
    pub nodes_pruned: usize,
    /// Simplex iterations summed over every LP relaxation solved.
    pub simplex_iterations: usize,
    /// Incumbent trajectory: (nodes explored when found, objective in
    /// the problem's own sense).
    pub incumbents: Vec<(usize, f64)>,
}

/// A point-in-time snapshot of a running branch-and-bound search,
/// handed to the progress callback of [`branch_and_bound_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MipProgress {
    /// Nodes whose LP relaxation has been solved so far.
    pub nodes: usize,
    /// Simplex pivots summed over all relaxations so far.
    pub pivots: usize,
    /// Best feasible objective found so far, in the problem's own
    /// optimization sense.
    pub incumbent: Option<f64>,
    /// Relaxation bound of the node being explored, in the problem's
    /// own sense.
    pub best_bound: Option<f64>,
}

/// The progress callback fires at least once every this many nodes (and
/// additionally on every new incumbent), bounding both its overhead and
/// the watchdog's reaction latency.
pub const PROGRESS_NODE_INTERVAL: usize = 32;

/// Solve a MIP by branch-and-bound.
pub fn branch_and_bound(root: &Problem, opts: MipOptions) -> Solution {
    branch_and_bound_stats(root, opts).0
}

/// Solve a MIP by branch-and-bound, also reporting search telemetry.
pub fn branch_and_bound_stats(root: &Problem, opts: MipOptions) -> (Solution, MipStats) {
    branch_and_bound_with(root, opts, &mut |_| true)
}

/// Solve a MIP by branch-and-bound with a progress callback. The
/// callback runs every [`PROGRESS_NODE_INTERVAL`] nodes and on every
/// new incumbent; returning `false` stops the search cooperatively with
/// [`Status::Interrupted`], keeping the best incumbent found so far.
pub fn branch_and_bound_with(
    root: &Problem,
    opts: MipOptions,
    on_progress: &mut dyn FnMut(&MipProgress) -> bool,
) -> (Solution, MipStats) {
    // Work in minimization sense internally.
    let sense = if root.minimize { 1.0 } else { -1.0 };
    let mut stats = MipStats::default();

    let root_lp = solve_lp(root);
    stats.simplex_iterations += root_lp.iterations;
    match root_lp.status {
        Status::Infeasible => return (Solution::infeasible(), stats),
        Status::Unbounded => return (Solution::unbounded(), stats),
        _ => {}
    }
    if pick_branch_var(root, &root_lp.x).is_none() {
        // Relaxation is already integral.
        let mut s = root_lp;
        s.x.iter_mut().zip(&root.integer).for_each(|(v, &is_int)| {
            if is_int {
                *v = v.round();
            }
        });
        s.objective = root.objective_value(&s.x);
        stats.incumbents.push((0, s.objective));
        return (s, stats);
    }

    let mut heap = BinaryHeap::new();
    heap.push(Node { changes: vec![], bound: sense * root_lp.objective, depth: 0 });

    let mut incumbent: Option<(f64, Vec<f64>)> = None; // (sense-adjusted obj, x)
    let mut nodes = 0usize;
    let mut hit_limit = false;
    let mut interrupted = false;

    while let Some(node) = heap.pop() {
        // Bound pruning.
        if let Some((inc, _)) = &incumbent {
            if node.bound >= *inc - opts.gap * (1.0 + inc.abs()) {
                stats.nodes_pruned += 1;
                continue;
            }
        }
        nodes += 1;
        if nodes > opts.node_limit {
            hit_limit = true;
            break;
        }
        // `u64::is_multiple_of` would read better but needs Rust 1.87;
        // the workspace MSRV is 1.75.
        #[allow(clippy::manual_is_multiple_of)]
        if nodes % PROGRESS_NODE_INTERVAL == 0
            && !on_progress(&MipProgress {
                nodes,
                pivots: stats.simplex_iterations,
                incumbent: incumbent.as_ref().map(|(o, _)| sense * *o),
                best_bound: Some(sense * node.bound),
            })
        {
            interrupted = true;
            break;
        }
        // Materialize the subproblem.
        let mut sub = root.clone();
        for &(j, lo, hi) in &node.changes {
            sub.tighten(j, lo, hi);
        }
        let lp = solve_lp(&sub);
        stats.simplex_iterations += lp.iterations;
        if lp.status != Status::Optimal {
            stats.nodes_pruned += 1;
            continue;
        }
        let bound = sense * lp.objective;
        if let Some((inc, _)) = &incumbent {
            if bound >= *inc - opts.gap * (1.0 + inc.abs()) {
                stats.nodes_pruned += 1;
                continue;
            }
        }
        match pick_branch_var(root, &lp.x) {
            None => {
                // Integral: candidate incumbent.
                let mut x = lp.x.clone();
                for j in 0..root.num_vars {
                    if root.integer[j] {
                        x[j] = x[j].round();
                    }
                }
                if root.is_feasible(&x, 1e-5) {
                    let obj = sense * root.objective_value(&x);
                    if incumbent.as_ref().map_or(true, |(inc, _)| obj < *inc) {
                        stats.incumbents.push((nodes, sense * obj));
                        incumbent = Some((obj, x));
                        if !on_progress(&MipProgress {
                            nodes,
                            pivots: stats.simplex_iterations,
                            incumbent: Some(sense * obj),
                            best_bound: Some(sense * node.bound),
                        }) {
                            interrupted = true;
                            break;
                        }
                    }
                }
            }
            Some((j, v)) => {
                let mut down = node.changes.clone();
                down.push((j, f64::NEG_INFINITY, v.floor()));
                heap.push(Node { changes: down, bound, depth: node.depth + 1 });
                let mut up = node.changes.clone();
                up.push((j, v.ceil(), f64::INFINITY));
                heap.push(Node { changes: up, bound, depth: node.depth + 1 });
            }
        }
    }

    stats.nodes_explored = nodes;
    let solution = match incumbent {
        None => {
            if interrupted || hit_limit {
                Solution {
                    status: if interrupted { Status::Interrupted } else { Status::NodeLimit },
                    x: vec![],
                    objective: f64::NAN,
                    iterations: stats.simplex_iterations,
                    nodes,
                }
            } else {
                Solution { iterations: stats.simplex_iterations, nodes, ..Solution::infeasible() }
            }
        }
        Some((obj, x)) => Solution {
            status: if interrupted {
                Status::Interrupted
            } else if hit_limit {
                Status::NodeLimit
            } else {
                Status::Optimal
            },
            objective: sense * obj,
            x,
            iterations: stats.simplex_iterations,
            nodes,
        },
    };
    (solution, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rel;

    fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> Solution {
        let n = values.len();
        let mut p = Problem::maximize(n);
        for j in 0..n {
            p.set_bounds(j, 0.0, 1.0);
            p.integer[j] = true;
        }
        p.set_objective(values.iter().copied().enumerate().collect());
        p.add_constraint(weights.iter().copied().enumerate().collect(), Rel::Le, cap);
        branch_and_bound(&p, MipOptions::default())
    }

    #[test]
    fn knapsack_small() {
        // Items: (v, w): (60,10) (100,20) (120,30), cap 50 → 220.
        let s = knapsack(&[60.0, 100.0, 120.0], &[10.0, 20.0, 30.0], 50.0);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 220.0).abs() < 1e-6);
        assert_eq!(s.x.iter().map(|v| v.round() as i64).collect::<Vec<_>>(), vec![0, 1, 1]);
    }

    #[test]
    fn knapsack_matches_dp_oracle() {
        // Deterministic pseudo-random instance, checked against DP.
        let n = 18;
        let mut seed = 42u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) % 100) as f64 + 1.0
        };
        let values: Vec<f64> = (0..n).map(|_| next()).collect();
        let weights: Vec<f64> = (0..n).map(|_| next()).collect();
        let cap = weights.iter().sum::<f64>() * 0.4;

        // DP over integer weights.
        let wi: Vec<usize> = weights.iter().map(|&w| w as usize).collect();
        let c = cap as usize;
        let mut dp = vec![0.0f64; c + 1];
        for i in 0..n {
            for w in (wi[i]..=c).rev() {
                dp[w] = dp[w].max(dp[w - wi[i]] + values[i]);
            }
        }
        let best = dp[c];

        let s = knapsack(&values, &weights, c as f64);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - best).abs() < 1e-6, "bb={} dp={}", s.objective, best);
    }

    #[test]
    fn integer_equality_rounding() {
        // min x + y, x + y = 3, both integer ≥ 0 → objective 3.
        let mut p = Problem::minimize(2);
        p.set_bounds(0, 0.0, 10.0);
        p.set_bounds(1, 0.0, 10.0);
        p.integer = vec![true, true];
        p.set_objective(vec![(0, 1.0), (1, 1.0)]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Rel::Eq, 3.0);
        let s = branch_and_bound(&p, MipOptions::default());
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_mip() {
        // x integer, 0.2 <= x <= 0.8.
        let mut p = Problem::minimize(1);
        p.set_bounds(0, 0.2, 0.8);
        p.integer = vec![true];
        p.add_constraint(vec![(0, 1.0)], Rel::Ge, 0.0);
        let s = branch_and_bound(&p, MipOptions::default());
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2x + y; x integer in [0,5], y in [0, 2.5], x + y <= 6.2.
        let mut p = Problem::maximize(2);
        p.set_bounds(0, 0.0, 5.0);
        p.set_bounds(1, 0.0, 2.5);
        p.integer = vec![true, false];
        p.set_objective(vec![(0, 2.0), (1, 1.0)]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Rel::Le, 6.2);
        let s = branch_and_bound(&p, MipOptions::default());
        assert_eq!(s.status, Status::Optimal);
        assert!((s.x[0] - 5.0).abs() < 1e-6);
        assert!((s.x[1] - 1.2).abs() < 1e-6);
        assert!((s.objective - 11.2).abs() < 1e-6);
    }

    #[test]
    fn stats_separate_simplex_iterations_from_nodes() {
        let n = 10;
        let values: Vec<f64> = (0..n).map(|i| (i * 7 % 13) as f64 + 1.0).collect();
        let weights: Vec<f64> = (0..n).map(|i| (i * 5 % 11) as f64 + 1.0).collect();
        let mut p = Problem::maximize(n);
        for j in 0..n {
            p.set_bounds(j, 0.0, 1.0);
            p.integer[j] = true;
        }
        p.set_objective(values.into_iter().enumerate().collect());
        p.add_constraint(weights.into_iter().enumerate().collect(), Rel::Le, 17.0);
        let (s, st) = branch_and_bound_stats(&p, MipOptions::default());
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(s.nodes, st.nodes_explored);
        assert_eq!(s.iterations, st.simplex_iterations);
        assert!(st.nodes_explored >= 1);
        // A branching search solves at least one LP pivot per node on
        // this instance, so the two counters must genuinely differ.
        assert!(
            st.simplex_iterations > st.nodes_explored,
            "iterations ({}) should count pivots, not nodes ({})",
            st.simplex_iterations,
            st.nodes_explored
        );
        assert!(!st.incumbents.is_empty());
        // Maximization: incumbents improve monotonically upward.
        for w in st.incumbents.windows(2) {
            assert!(w[1].1 > w[0].1, "incumbent trajectory must improve: {:?}", st.incumbents);
        }
        assert!((st.incumbents.last().unwrap().1 - s.objective).abs() < 1e-9);
    }

    fn hard_knapsack(n: usize) -> Problem {
        let values: Vec<f64> = (0..n).map(|i| (i * 7 % 13) as f64 + 1.0).collect();
        let weights: Vec<f64> = (0..n).map(|i| (i * 5 % 11) as f64 + 1.0).collect();
        let cap = weights.iter().sum::<f64>() * 0.45;
        let mut p = Problem::maximize(n);
        for j in 0..n {
            p.set_bounds(j, 0.0, 1.0);
            p.integer[j] = true;
        }
        p.set_objective(values.into_iter().enumerate().collect());
        p.add_constraint(weights.into_iter().enumerate().collect(), Rel::Le, cap);
        p
    }

    #[test]
    fn progress_callback_observes_the_search() {
        let p = hard_knapsack(14);
        let mut events: Vec<MipProgress> = Vec::new();
        let (s, st) = branch_and_bound_with(&p, MipOptions::default(), &mut |ev| {
            events.push(*ev);
            true
        });
        assert_eq!(s.status, Status::Optimal);
        // Every new incumbent fires the callback, so at least the
        // incumbent trajectory is visible.
        assert!(events.len() >= st.incumbents.len());
        // Node counts are monotone non-decreasing across events.
        for w in events.windows(2) {
            assert!(w[1].nodes >= w[0].nodes);
        }
        let final_inc =
            events.iter().rev().find_map(|e| e.incumbent).expect("some event carries an incumbent");
        assert!((final_inc - s.objective).abs() < 1e-9);
    }

    #[test]
    fn callback_false_interrupts_with_incumbent() {
        let p = hard_knapsack(16);
        // Stop as soon as any incumbent exists.
        let (s, st) =
            branch_and_bound_with(&p, MipOptions::default(), &mut |ev| ev.incumbent.is_none());
        assert_eq!(s.status, Status::Interrupted);
        assert!(!st.incumbents.is_empty());
        assert!(!s.x.is_empty(), "interrupted solve keeps the incumbent point");
        assert!(s.objective.is_finite());
        // And the full search would have kept going.
        let full = branch_and_bound(&p, MipOptions::default());
        assert_eq!(full.status, Status::Optimal);
        assert!(full.objective >= s.objective - 1e-9);
    }

    #[test]
    fn immediate_interrupt_without_incumbent() {
        let p = hard_knapsack(16);
        let (s, _) = branch_and_bound_with(&p, MipOptions::default(), &mut |_| false);
        // Either the root relaxation was integral (unlikely here) or we
        // stopped before any incumbent.
        assert!(matches!(s.status, Status::Interrupted | Status::Optimal));
        if s.status == Status::Interrupted {
            assert!(s.x.is_empty() || s.objective.is_finite());
        }
    }

    #[test]
    fn node_limit_returns_incumbent_or_limit_status() {
        let n = 12;
        let values: Vec<f64> = (0..n).map(|i| (i * 7 % 13) as f64 + 1.0).collect();
        let weights: Vec<f64> = (0..n).map(|i| (i * 5 % 11) as f64 + 1.0).collect();
        let mut p = Problem::maximize(n);
        for j in 0..n {
            p.set_bounds(j, 0.0, 1.0);
            p.integer[j] = true;
        }
        p.set_objective(values.into_iter().enumerate().collect());
        p.add_constraint(weights.into_iter().enumerate().collect(), Rel::Le, 20.0);
        let s = branch_and_bound(&p, MipOptions { node_limit: 3, gap: 1e-9 });
        assert!(matches!(s.status, Status::NodeLimit | Status::Optimal));
    }
}
