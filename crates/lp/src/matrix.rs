//! Constraint-matrix classification: row taxonomy, total-unimodularity
//! certificates, and per-variable implied integrality.
//!
//! A MIP engine that can *see* the constraint matrix can prove facts a
//! generic branch-and-bound never exploits: a set-partitioning row is a
//! future cut separator's raw material, an interval or network matrix
//! makes the LP relaxation exact (every vertex is integral), and a
//! variable whose integrality is implied by an equality over other
//! integer variables never needs to be branched on. This module is that
//! eye: [`analyze`] runs a static pass over a [`Problem`] and returns a
//! [`MatrixAnalysis`] whose claims downstream code *acts on* — the
//! `solverlp` driver skips branch-and-bound outright on a full
//! integrality certificate and relaxes implied-integral variables
//! otherwise, and classified rows are recorded on the problem
//! ([`Problem::row_classes`]) as the registration point for knapsack /
//! clique cut separation.
//!
//! Everything here is a *certificate*, not a heuristic: each claim is
//! checkable (the proptest harness re-verifies TU claims by brute-force
//! subdeterminant enumeration), and the solver additionally verifies
//! the integrality of any shortcut solution before accepting it, so an
//! unsound claim can cost time but never correctness.

use crate::{Constraint, Problem, Rel};

/// Tolerance for "this floating-point value is an integer".
const INT_EPS: f64 = 1e-9;

/// Structural class of one constraint row.
///
/// Classification is mutually exclusive with a fixed precedence (the
/// most specific class wins); rows that match nothing are `General`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowClass {
    /// `sum(x_B) = 1` over binary variables.
    SetPartitioning,
    /// `sum(x_B) <= 1` over binary variables.
    SetPacking,
    /// `sum(x_B) >= 1` over binary variables.
    SetCovering,
    /// `sum(x_B) ⋈ k` over binaries with integral `k >= 2`.
    Cardinality,
    /// Two-term inequality linking a variable to a binary indicator
    /// (e.g. `x - U*y <= 0`).
    VariableBound,
    /// Positive coefficients (not all 1) over integer variables,
    /// `<= b` with `b > 0` — the knapsack shape cut separators feed on.
    Knapsack,
    /// The `>= b` mirror of a knapsack (covering) row.
    Cover,
    /// All coefficients ±1 in an equality — a flow-conservation shape.
    FlowBalance,
    /// No special structure detected.
    General,
}

impl RowClass {
    /// Short stable label used in telemetry and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            RowClass::SetPartitioning => "setpart",
            RowClass::SetPacking => "setpack",
            RowClass::SetCovering => "setcover",
            RowClass::Cardinality => "card",
            RowClass::VariableBound => "varbound",
            RowClass::Knapsack => "knapsack",
            RowClass::Cover => "cover",
            RowClass::FlowBalance => "flow",
            RowClass::General => "general",
        }
    }

    /// All classes, in census/display order.
    pub const ALL: [RowClass; 9] = [
        RowClass::SetPartitioning,
        RowClass::SetPacking,
        RowClass::SetCovering,
        RowClass::Cardinality,
        RowClass::VariableBound,
        RowClass::Knapsack,
        RowClass::Cover,
        RowClass::FlowBalance,
        RowClass::General,
    ];
}

/// A whole-matrix total-unimodularity certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuCertificate {
    /// 0/1 matrix with consecutive ones in every row (under the given
    /// column order) — an interval matrix, TU by the classical result.
    Interval,
    /// ±1 entries, at most two nonzeros per column, and the rows admit
    /// a Heller–Tompkins bipartition (two same-sign entries of a column
    /// in different parts, opposite-sign in the same part).
    Network,
}

impl TuCertificate {
    pub fn label(self) -> &'static str {
        match self {
            TuCertificate::Interval => "interval-tu",
            TuCertificate::Network => "network-tu",
        }
    }
}

/// Result of the classification pass.
#[derive(Debug, Clone, Default)]
pub struct MatrixAnalysis {
    /// Per-row class, parallel to `Problem::constraints`.
    pub row_classes: Vec<RowClass>,
    /// Whole-matrix TU certificate, when one of the recognizers fires.
    pub tu: Option<TuCertificate>,
    /// Every constraint rhs and every finite variable bound is integral
    /// (the data-side requirement for TU ⇒ integral vertices).
    pub integral_data: bool,
    /// Per-variable: integrality of this variable is implied — by the
    /// whole-matrix certificate, or by an equality row of ±1 coefficient
    /// on the variable, integral data, and otherwise integer terms.
    pub implied_integral: Vec<bool>,
    /// Indices of *declared-integer* variables whose declaration is
    /// implied and can be relaxed without changing the solved set.
    pub relaxable: Vec<usize>,
}

impl MatrixAnalysis {
    /// Number of rows classified into something other than `General`.
    pub fn special_rows(&self) -> usize {
        self.row_classes.iter().filter(|c| **c != RowClass::General).count()
    }

    /// `(class, count)` census over the non-`General` classes, in
    /// display order, zero-count classes omitted.
    pub fn census(&self) -> Vec<(RowClass, usize)> {
        RowClass::ALL
            .iter()
            .filter(|c| **c != RowClass::General)
            .map(|&c| (c, self.row_classes.iter().filter(|r| **r == c).count()))
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    /// Compact census string for telemetry, e.g. `"setpart:8 varbound:4"`.
    /// Empty when no row has special structure.
    pub fn census_label(&self) -> String {
        self.census()
            .iter()
            .map(|&(c, n)| format!("{}:{n}", c.label()))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The integrality proof that lets a solver skip branch-and-bound
    /// for the whole model: a TU certificate over integral data. The
    /// LP relaxation then has integral optimal vertices, so a vertex
    /// solver (simplex) solves the MIP exactly.
    pub fn exactness_proof(&self) -> Option<TuCertificate> {
        if self.integral_data {
            self.tu
        } else {
            None
        }
    }

    /// Stable label of the strongest integrality fact, for telemetry:
    /// the TU proof when exact, `"implied"` when some declared-integer
    /// variables are relaxable, empty otherwise.
    pub fn proof_label(&self, p: &Problem) -> String {
        if let Some(tu) = self.exactness_proof() {
            if p.has_integers() {
                return tu.label().to_string();
            }
        }
        if !self.relaxable.is_empty() {
            return "implied".to_string();
        }
        String::new()
    }
}

fn is_integral(v: f64) -> bool {
    v.is_finite() && (v - v.round()).abs() <= INT_EPS
}

/// A variable is *binary* when declared integer with bounds [0, 1].
fn is_binary(p: &Problem, j: usize) -> bool {
    p.integer[j] && p.lower[j] == 0.0 && p.upper[j] == 1.0
}

/// The relation of a row multiplied by -1.
fn flip(rel: Rel) -> Rel {
    match rel {
        Rel::Le => Rel::Ge,
        Rel::Ge => Rel::Le,
        Rel::Eq => Rel::Eq,
    }
}

/// Merge duplicate variables and drop zero coefficients, preserving
/// ascending variable order.
fn merged(c: &Constraint) -> Vec<(usize, f64)> {
    let mut terms: Vec<(usize, f64)> = c.coeffs.clone();
    terms.sort_unstable_by_key(|&(j, _)| j);
    let mut out: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
    for (j, a) in terms {
        match out.last_mut() {
            Some((pj, pa)) if *pj == j => *pa += a,
            _ => out.push((j, a)),
        }
    }
    out.retain(|&(_, a)| a != 0.0);
    out
}

/// Classify one row. `terms` is the merged, sorted coefficient list.
fn classify_row(p: &Problem, terms: &[(usize, f64)], rel: Rel, rhs: f64) -> RowClass {
    if terms.is_empty() {
        return RowClass::General;
    }
    // An all-negative row is a negated row (presolve folds Ge into Le
    // that way); flip it back — multiplying a row by -1 changes neither
    // its feasible set nor its combinatorial class.
    if terms.iter().all(|&(_, a)| a < 0.0) {
        let flipped: Vec<(usize, f64)> = terms.iter().map(|&(j, a)| (j, -a)).collect();
        return classify_row(p, &flipped, flip(rel), -rhs);
    }
    let all_binary = terms.iter().all(|&(j, _)| is_binary(p, j));
    let all_ones = terms.iter().all(|&(_, a)| a == 1.0);
    let all_pm1 = terms.iter().all(|&(_, a)| a == 1.0 || a == -1.0);

    if all_binary && all_ones && terms.len() >= 2 {
        if rhs == 1.0 {
            return match rel {
                Rel::Eq => RowClass::SetPartitioning,
                Rel::Le => RowClass::SetPacking,
                Rel::Ge => RowClass::SetCovering,
            };
        }
        if is_integral(rhs) && rhs >= 2.0 {
            return RowClass::Cardinality;
        }
    }
    if terms.len() == 2
        && rel != Rel::Eq
        && terms.iter().any(|&(j, _)| is_binary(p, j))
        && terms.iter().any(|&(j, _)| !is_binary(p, j))
    {
        return RowClass::VariableBound;
    }
    if all_pm1 && rel == Rel::Eq && terms.len() >= 2 {
        return RowClass::FlowBalance;
    }
    let all_pos = terms.iter().all(|&(_, a)| a > 0.0);
    let all_int_vars = terms.iter().all(|&(j, _)| p.integer[j]);
    // Unit weights only disqualify a knapsack/cover when the variables
    // are binary (there the all-ones shapes are the set classes above).
    if all_pos && all_int_vars && !(all_ones && all_binary) && terms.len() >= 2 {
        if rel == Rel::Le && rhs > 0.0 {
            return RowClass::Knapsack;
        }
        if rel == Rel::Ge && rhs > 0.0 {
            return RowClass::Cover;
        }
    }
    RowClass::General
}

/// Interval-matrix recognizer: every row all-ones (or all-minus-ones —
/// a negated row, as presolve emits for Ge rows) over a contiguous run
/// of the *used* column list (columns referenced by at least one row,
/// in index order). Box bounds live outside the row matrix and — being
/// identity rows — never break total unimodularity.
fn interval_certificate(rows: &[Vec<(usize, f64)>]) -> bool {
    if rows.iter().all(|r| r.is_empty()) {
        return false;
    }
    // Rank of each used column among the used columns.
    let mut used: Vec<usize> = rows.iter().flatten().map(|&(j, _)| j).collect();
    used.sort_unstable();
    used.dedup();
    let rank = |j: usize| used.binary_search(&j).unwrap_or(usize::MAX);
    for r in rows {
        // All-ones or all-minus-ones: a negated interval row is still an
        // interval row (row negation preserves total unimodularity).
        if r.iter().any(|&(_, a)| a != 1.0) && r.iter().any(|&(_, a)| a != -1.0) {
            return false;
        }
        // Terms are sorted by column; consecutive ranks required.
        for w in r.windows(2) {
            if rank(w[1].0) != rank(w[0].0) + 1 {
                return false;
            }
        }
    }
    true
}

/// Heller–Tompkins network recognizer: entries ±1, at most two nonzeros
/// per column, and the rows 2-color such that a column's two same-sign
/// entries land in different parts and opposite-sign entries in the
/// same part. Implemented as a parity union-find over rows.
fn network_certificate(rows: &[Vec<(usize, f64)>], num_vars: usize) -> bool {
    if rows.iter().all(|r| r.is_empty()) {
        return false;
    }
    let mut col_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); num_vars];
    for (i, r) in rows.iter().enumerate() {
        for &(j, a) in r {
            if a != 1.0 && a != -1.0 {
                return false;
            }
            col_rows[j].push((i, a));
            if col_rows[j].len() > 2 {
                return false;
            }
        }
    }
    // Parity union-find: parity 1 = "rows must be in different parts".
    let mut parent: Vec<usize> = (0..rows.len()).collect();
    let mut parity: Vec<u8> = vec![0; rows.len()];
    fn find(parent: &mut [usize], parity: &mut [u8], x: usize) -> (usize, u8) {
        if parent[x] == x {
            return (x, 0);
        }
        let (root, par) = find(parent, parity, parent[x]);
        parent[x] = root;
        parity[x] ^= par;
        (root, parity[x])
    }
    for pair in &col_rows {
        if let [(r1, a1), (r2, a2)] = pair[..] {
            let want = u8::from(a1 == a2); // same sign → different parts
            let (root1, p1) = find(&mut parent, &mut parity, r1);
            let (root2, p2) = find(&mut parent, &mut parity, r2);
            if root1 == root2 {
                if p1 ^ p2 != want {
                    return false;
                }
            } else {
                parent[root1] = root2;
                parity[root1] = p1 ^ p2 ^ want;
            }
        }
    }
    true
}

/// Relaxable declared-integer variables: greedily prove, one variable at
/// a time, that an equality row pins the variable to an integral affine
/// combination of *kept* integer variables — ±1 coefficient on the
/// variable, integral coefficients on the others, integral rhs, every
/// other variable integer-declared and not itself already relaxed. Such
/// a variable is integral in any solution where the kept integers are,
/// so branch-and-bound never needs to branch on it.
fn relaxable_integers(p: &Problem, rows: &[(Vec<(usize, f64)>, Rel, f64)]) -> Vec<usize> {
    let mut relaxed = vec![false; p.num_vars];
    loop {
        let mut progressed = false;
        for (terms, rel, rhs) in rows {
            if *rel != Rel::Eq || !is_integral(*rhs) {
                continue;
            }
            // A row proves one variable at a time; find a candidate.
            for &(j, a) in terms {
                if !p.integer[j] || relaxed[j] || (a != 1.0 && a != -1.0) {
                    continue;
                }
                let others_ok = terms
                    .iter()
                    .all(|&(k, b)| k == j || (p.integer[k] && !relaxed[k] && is_integral(b)));
                if others_ok {
                    relaxed[j] = true;
                    progressed = true;
                    break; // one proof per row per round keeps this acyclic
                }
            }
        }
        if !progressed {
            break;
        }
    }
    (0..p.num_vars).filter(|&j| relaxed[j]).collect()
}

/// Number of independent variable blocks of the constraint matrix: the
/// connected components, under "appears in the same row", of the
/// variables referenced by at least one constraint. Zero when no row
/// references a variable. This is the lp-level mirror of the SD019
/// block detection that runs over the symbolic model.
pub fn block_count(p: &Problem) -> usize {
    let mut parent: Vec<usize> = (0..p.num_vars).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut used = vec![false; p.num_vars];
    for c in &p.constraints {
        let mut first: Option<usize> = None;
        for &(j, a) in &c.coeffs {
            if a == 0.0 || j >= p.num_vars {
                continue;
            }
            used[j] = true;
            match first {
                None => first = Some(j),
                Some(f) => {
                    let (ra, rb) = (find(&mut parent, f), find(&mut parent, j));
                    if ra != rb {
                        parent[ra] = rb;
                    }
                }
            }
        }
    }
    let mut roots: Vec<usize> =
        (0..p.num_vars).filter(|&j| used[j]).map(|j| find(&mut parent, j)).collect();
    roots.sort_unstable();
    roots.dedup();
    roots.len()
}

/// Run the classification pass over a problem.
pub fn analyze(p: &Problem) -> MatrixAnalysis {
    // Normalize every row once: merged sorted terms, Ge folded into Le
    // only where a check wants it (classification keeps the raw rel).
    let rows: Vec<(Vec<(usize, f64)>, Rel, f64)> =
        p.constraints.iter().map(|c| (merged(c), c.rel, c.rhs)).collect();

    let row_classes: Vec<RowClass> =
        rows.iter().map(|(t, rel, rhs)| classify_row(p, t, *rel, *rhs)).collect();

    let integral_data = rows.iter().all(|(_, _, rhs)| is_integral(*rhs))
        && (0..p.num_vars).all(|j| {
            (p.lower[j].is_infinite() || is_integral(p.lower[j]))
                && (p.upper[j].is_infinite() || is_integral(p.upper[j]))
        });

    // TU recognizers run on the coefficient lists only (relations and
    // rhs don't affect unimodularity of the matrix).
    let coeff_rows: Vec<Vec<(usize, f64)>> = rows.iter().map(|(t, _, _)| t.clone()).collect();
    let tu = if interval_certificate(&coeff_rows) {
        Some(TuCertificate::Interval)
    } else if network_certificate(&coeff_rows, p.num_vars) {
        Some(TuCertificate::Network)
    } else {
        None
    };

    let mut implied_integral = vec![false; p.num_vars];
    if tu.is_some() && integral_data {
        implied_integral.iter_mut().for_each(|b| *b = true);
    } else {
        // Column never referenced by a row, integral (or infinite)
        // bounds: a vertex solver leaves it at a bound.
        let mut in_rows = vec![false; p.num_vars];
        for (t, _, _) in &rows {
            for &(j, _) in t {
                in_rows[j] = true;
            }
        }
        for j in 0..p.num_vars {
            if !in_rows[j]
                && (p.lower[j].is_infinite() || is_integral(p.lower[j]))
                && (p.upper[j].is_infinite() || is_integral(p.upper[j]))
            {
                implied_integral[j] = true;
            }
        }
        for j in relaxable_integers(p, &rows) {
            implied_integral[j] = true;
        }
    }

    let relaxable: Vec<usize> =
        (0..p.num_vars).filter(|&j| p.integer[j] && implied_integral[j]).collect();

    MatrixAnalysis { row_classes, tu, integral_data, implied_integral, relaxable }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary_problem(n: usize) -> Problem {
        let mut p = Problem::maximize(n);
        for j in 0..n {
            p.set_bounds(j, 0.0, 1.0);
            p.integer[j] = true;
        }
        p
    }

    #[test]
    fn classifies_set_rows() {
        let mut p = binary_problem(4);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Rel::Eq, 1.0);
        p.add_constraint(vec![(1, 1.0), (2, 1.0)], Rel::Le, 1.0);
        p.add_constraint(vec![(2, 1.0), (3, 1.0)], Rel::Ge, 1.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Rel::Le, 2.0);
        let a = analyze(&p);
        assert_eq!(
            a.row_classes,
            vec![
                RowClass::SetPartitioning,
                RowClass::SetPacking,
                RowClass::SetCovering,
                RowClass::Cardinality
            ]
        );
        assert_eq!(a.census_label(), "setpart:1 setpack:1 setcover:1 card:1");
    }

    #[test]
    fn classifies_knapsack_and_cover() {
        let mut p = binary_problem(3);
        p.add_constraint(vec![(0, 3.0), (1, 5.0), (2, 4.0)], Rel::Le, 10.0);
        p.add_constraint(vec![(0, 3.0), (1, 5.0)], Rel::Ge, 2.0);
        let a = analyze(&p);
        assert_eq!(a.row_classes, vec![RowClass::Knapsack, RowClass::Cover]);
    }

    #[test]
    fn classifies_variable_bound_and_flow() {
        let mut p = Problem::minimize(3);
        p.set_bounds(0, 0.0, 1.0);
        p.integer[0] = true;
        p.set_bounds(1, 0.0, 100.0);
        p.set_bounds(2, 0.0, 100.0);
        p.add_constraint(vec![(1, 1.0), (0, -50.0)], Rel::Le, 0.0);
        p.add_constraint(vec![(1, 1.0), (2, -1.0)], Rel::Eq, 0.0);
        let a = analyze(&p);
        assert_eq!(a.row_classes, vec![RowClass::VariableBound, RowClass::FlowBalance]);
    }

    #[test]
    fn assignment_matrix_is_network_tu() {
        // 3×3 assignment: rows i: sum_j x[i][j] = 1; cols j: sum_i = 1.
        let n = 3;
        let mut p = binary_problem(n * n);
        for i in 0..n {
            p.add_constraint((0..n).map(|j| (i * n + j, 1.0)).collect(), Rel::Eq, 1.0);
        }
        for j in 0..n {
            p.add_constraint((0..n).map(|i| (i * n + j, 1.0)).collect(), Rel::Eq, 1.0);
        }
        let a = analyze(&p);
        assert_eq!(a.tu, Some(TuCertificate::Network));
        assert!(a.integral_data);
        assert_eq!(a.exactness_proof(), Some(TuCertificate::Network));
        assert!(a.implied_integral.iter().all(|&b| b));
        assert_eq!(a.relaxable.len(), n * n);
    }

    #[test]
    fn consecutive_ones_matrix_is_interval_tu() {
        // Staffing-style coverage: shifts cover contiguous hour windows.
        let mut p = Problem::minimize(4);
        for j in 0..4 {
            p.set_bounds(j, 0.0, 10.0);
            p.integer[j] = true;
        }
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Rel::Ge, 2.0);
        p.add_constraint(vec![(1, 1.0), (2, 1.0), (3, 1.0)], Rel::Ge, 3.0);
        p.add_constraint(vec![(2, 1.0), (3, 1.0)], Rel::Ge, 1.0);
        let a = analyze(&p);
        assert_eq!(a.tu, Some(TuCertificate::Interval));
        assert!(a.integral_data);
    }

    #[test]
    fn gap_in_ones_defeats_interval_but_may_still_be_network() {
        let mut p = binary_problem(3);
        // Row references columns 0 and 2 while column 1 is also used —
        // not contiguous; but ≤2 nonzeros per column keeps it network.
        p.add_constraint(vec![(0, 1.0), (2, 1.0)], Rel::Eq, 1.0);
        p.add_constraint(vec![(1, 1.0), (2, 1.0)], Rel::Eq, 1.0);
        let a = analyze(&p);
        assert_ne!(a.tu, Some(TuCertificate::Interval));
    }

    #[test]
    fn odd_cycle_defeats_network() {
        // Each column has two +1 entries; the row conflict graph is an
        // odd cycle → no Heller–Tompkins bipartition. This matrix has a
        // 3×3 submatrix with determinant ±2 (not TU).
        let mut p = binary_problem(3);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Rel::Le, 1.0);
        p.add_constraint(vec![(1, 1.0), (2, 1.0)], Rel::Le, 1.0);
        p.add_constraint(vec![(0, 1.0), (2, 1.0)], Rel::Le, 1.0);
        let a = analyze(&p);
        assert_eq!(a.tu, None);
    }

    #[test]
    fn fractional_data_blocks_the_exactness_proof() {
        let mut p = binary_problem(2);
        p.add_constraint(vec![(0, 1.0), (1, -1.0)], Rel::Eq, 0.5);
        let a = analyze(&p);
        assert!(!a.integral_data);
        assert_eq!(a.exactness_proof(), None);
    }

    #[test]
    fn aggregate_integer_is_relaxable() {
        // w = 3 z0 + 5 z1 with z binary, w declared integer: w's
        // integrality is implied, the z's are not relaxable through the
        // same row (their coefficients are not ±1... z0 is ±1? 3 and 5
        // are not ±1, so neither z qualifies via this row).
        let mut p = Problem::maximize(3);
        p.set_bounds(0, 0.0, 1.0);
        p.integer[0] = true;
        p.set_bounds(1, 0.0, 1.0);
        p.integer[1] = true;
        p.set_bounds(2, 0.0, 8.0);
        p.integer[2] = true;
        p.add_constraint(vec![(2, 1.0), (0, -3.0), (1, -5.0)], Rel::Eq, 0.0);
        let a = analyze(&p);
        assert_eq!(a.relaxable, vec![2]);
        assert!(a.implied_integral[2]);
        assert!(!a.implied_integral[0]);
    }

    #[test]
    fn continuous_term_blocks_relaxation() {
        let mut p = Problem::maximize(2);
        p.set_bounds(0, 0.0, 1.0); // continuous
        p.set_bounds(1, 0.0, 8.0);
        p.integer[1] = true;
        p.add_constraint(vec![(1, 1.0), (0, -3.0)], Rel::Eq, 0.0);
        let a = analyze(&p);
        assert!(a.relaxable.is_empty());
    }

    #[test]
    fn duplicate_coefficients_merge_before_classification() {
        let mut p = binary_problem(2);
        // 0.5 x0 + 0.5 x0 + x1 = 1 is an all-ones set-partitioning row.
        p.constraints.push(Constraint::new(vec![(0, 0.5), (0, 0.5), (1, 1.0)], Rel::Eq, 1.0));
        let a = analyze(&p);
        assert_eq!(a.row_classes, vec![RowClass::SetPartitioning]);
    }

    #[test]
    fn block_count_counts_components() {
        let mut p = Problem::minimize(5);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Rel::Le, 1.0);
        p.add_constraint(vec![(2, 1.0), (3, 1.0)], Rel::Le, 1.0);
        assert_eq!(block_count(&p), 2); // var 4 unreferenced
        p.add_constraint(vec![(1, 1.0), (2, 1.0)], Rel::Le, 1.0);
        assert_eq!(block_count(&p), 1);
        assert_eq!(block_count(&Problem::minimize(3)), 0);
    }

    #[test]
    fn negated_rows_classify_and_certify_like_their_originals() {
        // Presolve folds `x + y >= 1` into `-x - y <= -1`; the class and
        // the interval-TU certificate must survive the negation.
        let mut p = binary_problem(3);
        p.add_constraint(vec![(0, -1.0), (1, -1.0)], Rel::Le, -1.0);
        p.add_constraint(vec![(1, -1.0), (2, -1.0)], Rel::Le, -1.0);
        let a = analyze(&p);
        assert_eq!(a.row_classes, vec![RowClass::SetCovering, RowClass::SetCovering]);
        assert_eq!(a.tu, Some(TuCertificate::Interval));
    }

    #[test]
    fn unit_weight_rows_over_general_integers_are_covers() {
        // All-ones only means "set row" over binaries; over wider
        // integer ranges the same shape is a cover/knapsack.
        let mut p = Problem::minimize(3);
        for j in 0..3 {
            p.integer[j] = true;
            p.lower[j] = 0.0;
            p.upper[j] = 10.0;
        }
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Rel::Ge, 3.0);
        p.add_constraint(vec![(1, 1.0), (2, 1.0)], Rel::Le, 5.0);
        let a = analyze(&p);
        assert_eq!(a.row_classes, vec![RowClass::Cover, RowClass::Knapsack]);
    }

    #[test]
    fn empty_matrix_claims_nothing() {
        let p = binary_problem(3);
        let a = analyze(&p);
        assert!(a.row_classes.is_empty());
        assert_eq!(a.tu, None);
        assert_eq!(a.census_label(), "");
        // With no rows, every integral-bounded column is implied.
        assert_eq!(a.relaxable, vec![0, 1, 2]);
    }
}
