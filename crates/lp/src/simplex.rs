//! Bounded-variable revised simplex with a two-phase (artificial
//! variable) start, Dantzig pricing with a Bland anti-cycling fallback,
//! explicit dense basis inverse with periodic refactorization.
//!
//! The bounded-variable formulation keeps the basis dimension equal to
//! the number of *constraints* (not variables), which is what makes the
//! knapsack-style problems of the paper's UC2 (thousands of variables,
//! one capacity row) cheap.

use crate::{Problem, Rel, Solution, Status};

const TOL: f64 = 1e-9;
const PIVOT_TOL: f64 = 1e-10;
/// Refactorize the basis inverse after this many pivots.
const REFACTOR_EVERY: usize = 128;
/// Switch to Bland's rule after this many consecutive degenerate pivots.
const DEGENERATE_LIMIT: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq)]
enum VarStatus {
    Basic(usize),
    AtLower,
    AtUpper,
    /// Nonbasic free variable (value 0).
    FreeZero,
}

struct Tableau {
    m: usize,
    /// Total variable count: structural + slacks + artificials.
    n_total: usize,
    n_structural: usize,
    /// Sparse columns (row, coefficient).
    cols: Vec<Vec<(usize, f64)>>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    cost: Vec<f64>,
    b: Vec<f64>,
    status: Vec<VarStatus>,
    basis: Vec<usize>,
    /// Dense row-major m×m basis inverse.
    binv: Vec<f64>,
    /// Basic variable values, aligned with `basis`.
    xb: Vec<f64>,
}

impl Tableau {
    fn nb_value(&self, j: usize) -> f64 {
        match self.status[j] {
            VarStatus::AtLower => self.lower[j],
            VarStatus::AtUpper => self.upper[j],
            VarStatus::FreeZero => 0.0,
            VarStatus::Basic(r) => self.xb[r],
        }
    }

    /// w = B⁻¹ · A_j for a sparse column.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let mut w = vec![0.0; self.m];
        for &(r, a) in &self.cols[j] {
            for i in 0..self.m {
                w[i] += self.binv[i * self.m + r] * a;
            }
        }
        w
    }

    /// y' = c_B' · B⁻¹.
    fn btran_costs(&self) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        for (k, &bv) in self.basis.iter().enumerate() {
            let c = self.cost[bv];
            if c != 0.0 {
                for i in 0..self.m {
                    y[i] += c * self.binv[k * self.m + i];
                }
            }
        }
        y
    }

    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        let mut d = self.cost[j];
        for &(r, a) in &self.cols[j] {
            d -= y[r] * a;
        }
        d
    }

    /// Recompute B⁻¹ by Gaussian elimination and x_B from scratch.
    /// Returns false if the basis matrix is singular.
    fn refactorize(&mut self) -> bool {
        let m = self.m;
        // Build the dense basis matrix augmented with identity.
        let mut mat = vec![0.0; m * m];
        for (k, &j) in self.basis.iter().enumerate() {
            for &(r, a) in &self.cols[j] {
                mat[r * m + k] = a;
            }
        }
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        // Gauss-Jordan with partial pivoting.
        for col in 0..m {
            let mut piv = col;
            let mut best = mat[col * m + col].abs();
            for r in (col + 1)..m {
                let v = mat[r * m + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-12 {
                return false;
            }
            if piv != col {
                for c in 0..m {
                    mat.swap(col * m + c, piv * m + c);
                    inv.swap(col * m + c, piv * m + c);
                }
            }
            let d = mat[col * m + col];
            for c in 0..m {
                mat[col * m + c] /= d;
                inv[col * m + c] /= d;
            }
            for r in 0..m {
                if r != col {
                    let f = mat[r * m + col];
                    if f != 0.0 {
                        for c in 0..m {
                            mat[r * m + c] -= f * mat[col * m + c];
                            inv[r * m + c] -= f * inv[col * m + c];
                        }
                    }
                }
            }
        }
        self.binv = inv;
        self.recompute_xb();
        true
    }

    /// x_B = B⁻¹ (b − A_N x_N).
    fn recompute_xb(&mut self) {
        let mut rhs = self.b.clone();
        for j in 0..self.n_total {
            if !matches!(self.status[j], VarStatus::Basic(_)) {
                let v = self.nb_value(j);
                if v != 0.0 {
                    for &(r, a) in &self.cols[j] {
                        rhs[r] -= a * v;
                    }
                }
            }
        }
        let m = self.m;
        let mut xb = vec![0.0; m];
        for i in 0..m {
            let mut s = 0.0;
            for r in 0..m {
                s += self.binv[i * m + r] * rhs[r];
            }
            xb[i] = s;
        }
        self.xb = xb;
    }

    /// One simplex phase (min c'x). Returns Optimal or Unbounded.
    fn optimize(&mut self, max_iter: usize) -> (Status, usize) {
        let mut iterations = 0usize;
        let mut degenerate_run = 0usize;
        let mut since_refactor = 0usize;
        loop {
            iterations += 1;
            if iterations > max_iter {
                // Treat as converged to avoid infinite loops; callers
                // validate the solution anyway.
                return (Status::Optimal, iterations);
            }
            let y = self.btran_costs();
            let bland = degenerate_run > DEGENERATE_LIMIT;

            // Pricing.
            let mut entering: Option<(usize, bool)> = None; // (var, increasing)
            let mut best = TOL;
            for j in 0..self.n_total {
                let (eligible, increasing, viol) = match self.status[j] {
                    VarStatus::Basic(_) => (false, false, 0.0),
                    VarStatus::AtLower => {
                        let d = self.reduced_cost(j, &y);
                        (d < -TOL, true, -d)
                    }
                    VarStatus::AtUpper => {
                        let d = self.reduced_cost(j, &y);
                        (d > TOL, false, d)
                    }
                    VarStatus::FreeZero => {
                        let d = self.reduced_cost(j, &y);
                        if d < -TOL {
                            (true, true, -d)
                        } else if d > TOL {
                            (true, false, d)
                        } else {
                            (false, false, 0.0)
                        }
                    }
                };
                if eligible {
                    if bland {
                        entering = Some((j, increasing));
                        break;
                    }
                    if viol > best {
                        best = viol;
                        entering = Some((j, increasing));
                    }
                }
            }
            let Some((j, increasing)) = entering else {
                return (Status::Optimal, iterations);
            };
            let sigma = if increasing { 1.0 } else { -1.0 };
            let w = self.ftran(j);

            // Ratio test: how far can x_j move?
            // x_B changes by -sigma * t * w.
            let mut t_max = f64::INFINITY;
            let mut leave: Option<(usize, bool)> = None; // (row, leaves-at-lower)
            for i in 0..self.m {
                let delta = -sigma * w[i];
                if delta < -PIVOT_TOL {
                    // Basic value decreases toward its lower bound.
                    let lb = self.lower[self.basis[i]];
                    if lb > f64::NEG_INFINITY {
                        let t = (self.xb[i] - lb) / (-delta);
                        if t < t_max - TOL || (t < t_max + TOL && leave.is_none()) {
                            t_max = t.max(0.0);
                            leave = Some((i, true));
                        }
                    }
                } else if delta > PIVOT_TOL {
                    // Basic value increases toward its upper bound.
                    let ub = self.upper[self.basis[i]];
                    if ub < f64::INFINITY {
                        let t = (ub - self.xb[i]) / delta;
                        if t < t_max - TOL || (t < t_max + TOL && leave.is_none()) {
                            t_max = t.max(0.0);
                            leave = Some((i, false));
                        }
                    }
                }
            }
            // Bound flip of the entering variable itself.
            let span = self.upper[j] - self.lower[j];
            let flip_possible = span.is_finite();
            if flip_possible && span < t_max {
                t_max = span;
                leave = None;
            }

            if t_max.is_infinite() {
                return (Status::Unbounded, iterations);
            }
            if t_max < TOL {
                degenerate_run += 1;
            } else {
                degenerate_run = 0;
            }

            match leave {
                None => {
                    // Bound flip.
                    self.status[j] = match self.status[j] {
                        VarStatus::AtLower => VarStatus::AtUpper,
                        VarStatus::AtUpper => VarStatus::AtLower,
                        other => other,
                    };
                    for i in 0..self.m {
                        self.xb[i] -= sigma * t_max * w[i];
                    }
                }
                Some((r, at_lower)) => {
                    let leaving = self.basis[r];
                    let pivot = w[r];
                    if pivot.abs() < PIVOT_TOL {
                        // Numerically unusable pivot: refactorize and retry.
                        if !self.refactorize() {
                            return (Status::Optimal, iterations);
                        }
                        continue;
                    }
                    // New value of the entering variable.
                    let enter_val = self.nb_value(j) + sigma * t_max;
                    // Update basic values.
                    for i in 0..self.m {
                        if i != r {
                            self.xb[i] -= sigma * t_max * w[i];
                        }
                    }
                    self.xb[r] = enter_val;
                    // Update statuses.
                    self.status[leaving] =
                        if at_lower { VarStatus::AtLower } else { VarStatus::AtUpper };
                    self.status[j] = VarStatus::Basic(r);
                    self.basis[r] = j;
                    // Elementary update of B⁻¹.
                    let m = self.m;
                    let wr = pivot;
                    let pivot_row: Vec<f64> = (0..m).map(|c| self.binv[r * m + c] / wr).collect();
                    for i in 0..m {
                        if i != r {
                            let f = w[i];
                            if f != 0.0 {
                                for c in 0..m {
                                    self.binv[i * m + c] -= f * pivot_row[c];
                                }
                            }
                        }
                    }
                    for c in 0..m {
                        self.binv[r * m + c] = pivot_row[c];
                    }
                    since_refactor += 1;
                    if since_refactor >= REFACTOR_EVERY {
                        since_refactor = 0;
                        if !self.refactorize() {
                            return (Status::Optimal, iterations);
                        }
                    }
                }
            }
        }
    }
}

/// Solve an LP (integrality flags ignored).
pub fn solve_lp(p: &Problem) -> Solution {
    let m = p.constraints.len();
    let n = p.num_vars;
    // Crossed bounds are trivially infeasible (branch-and-bound produces
    // these routinely).
    for j in 0..n {
        if p.lower[j] > p.upper[j] + TOL {
            return Solution::infeasible();
        }
    }
    let sign = if p.minimize { 1.0 } else { -1.0 };

    // Build columns: structural, slack, artificial.
    let n_total = n + m + m;
    let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_total];
    let mut b = vec![0.0; m];
    for (i, c) in p.constraints.iter().enumerate() {
        b[i] = c.rhs;
        for &(j, a) in &c.coeffs {
            if j >= n {
                // Malformed constraint; treat defensively.
                continue;
            }
            cols[j].push((i, a));
        }
    }
    // Merge duplicate entries per column.
    for col in cols.iter_mut().take(n) {
        col.sort_by_key(|&(r, _)| r);
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(col.len());
        for &(r, a) in col.iter() {
            if let Some(last) = merged.last_mut() {
                if last.0 == r {
                    last.1 += a;
                    continue;
                }
            }
            merged.push((r, a));
        }
        *col = merged;
    }

    let mut lower = vec![0.0; n_total];
    let mut upper = vec![0.0; n_total];
    lower[..n].copy_from_slice(&p.lower);
    upper[..n].copy_from_slice(&p.upper);
    // Slack s_i: row coefficient +1; bounds encode the relation.
    for i in 0..m {
        let j = n + i;
        cols[j].push((i, 1.0));
        match p.constraints[i].rel {
            Rel::Le => {
                lower[j] = 0.0;
                upper[j] = f64::INFINITY;
            }
            Rel::Ge => {
                lower[j] = f64::NEG_INFINITY;
                upper[j] = 0.0;
            }
            Rel::Eq => {
                lower[j] = 0.0;
                upper[j] = 0.0;
            }
        }
    }

    // Initial nonbasic status: nonbasic variables must sit at a bound
    // (or at zero when free). Prefer the lower bound when finite.
    let nb0 = |l: f64, u: f64| -> (f64, VarStatus) {
        if l.is_finite() {
            (l, VarStatus::AtLower)
        } else if u.is_finite() {
            (u, VarStatus::AtUpper)
        } else {
            (0.0, VarStatus::FreeZero)
        }
    };
    let mut x0 = vec![0.0; n + m];
    let mut status = Vec::with_capacity(n_total);
    for j in 0..(n + m) {
        let (v, st) = nb0(lower[j], upper[j]);
        x0[j] = v;
        status.push(st);
    }
    // Residual r = b - A x0 determines the artificial columns.
    let mut resid = b.clone();
    for j in 0..(n + m) {
        if x0[j] != 0.0 {
            for &(r, a) in &cols[j] {
                resid[r] -= a * x0[j];
            }
        }
    }
    let mut cost = vec![0.0; n_total];
    for i in 0..m {
        let j = n + m + i;
        let s = if resid[i] >= 0.0 { 1.0 } else { -1.0 };
        cols[j].push((i, s));
        lower[j] = 0.0;
        upper[j] = f64::INFINITY;
        cost[j] = 1.0; // phase-1 cost
    }

    let mut basis = Vec::with_capacity(m);
    let mut xb = Vec::with_capacity(m);
    for i in 0..m {
        let j = n + m + i;
        status.push(VarStatus::Basic(i));
        basis.push(j);
        xb.push(resid[i].abs());
    }
    let mut binv = vec![0.0; m * m];
    for i in 0..m {
        // Artificial column is ±e_i, so B⁻¹ starts as the matching signs.
        let s = if resid[i] >= 0.0 { 1.0 } else { -1.0 };
        binv[i * m + i] = s;
    }

    let mut t = Tableau {
        m,
        n_total,
        n_structural: n,
        cols,
        lower,
        upper,
        cost,
        b,
        status,
        basis,
        binv,
        xb,
    };

    let max_iter = 20_000 + 50 * (n + m);

    // Phase 1.
    let mut total_iters = 0usize;
    let needs_phase1 = t.xb.iter().any(|&v| v > TOL);
    if needs_phase1 {
        let (st, it) = t.optimize(max_iter);
        total_iters += it;
        if st == Status::Unbounded {
            // Phase-1 objective is bounded below by 0; this is numeric noise.
            return Solution::infeasible();
        }
        let p1_obj: f64 = t.basis.iter().enumerate().map(|(i, &j)| t.cost[j] * t.xb[i]).sum();
        if p1_obj > 1e-6 {
            return Solution::infeasible();
        }
    }
    // Fix artificials at zero and install the real objective.
    for i in 0..m {
        let j = n + m + i;
        t.lower[j] = 0.0;
        t.upper[j] = 0.0;
        t.cost[j] = 0.0;
        if !matches!(t.status[j], VarStatus::Basic(_)) {
            t.status[j] = VarStatus::AtLower;
        }
    }
    for c in t.cost.iter_mut().take(n + m) {
        *c = 0.0;
    }
    for &(j, cj) in &p.objective {
        if j < n {
            t.cost[j] += sign * cj;
        }
    }
    t.recompute_xb();

    // Phase 2.
    let (st, it) = t.optimize(max_iter);
    total_iters += it;
    if st == Status::Unbounded {
        return Solution::unbounded();
    }

    // Extract the structural solution.
    let mut x = vec![0.0; n];
    for j in 0..n {
        x[j] = t.nb_value(j);
        if !x[j].is_finite() {
            x[j] = 0.0;
        }
    }
    let _ = t.n_structural;
    let raw_obj = p.objective_value(&x);
    Solution { status: Status::Optimal, x, objective: raw_obj, iterations: total_iters, nodes: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Problem;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic)
        let mut p = Problem::maximize(2);
        p.set_bounds(0, 0.0, f64::INFINITY);
        p.set_bounds(1, 0.0, f64::INFINITY);
        p.set_objective(vec![(0, 3.0), (1, 5.0)]);
        p.add_constraint(vec![(0, 1.0)], Rel::Le, 4.0);
        p.add_constraint(vec![(1, 2.0)], Rel::Le, 12.0);
        p.add_constraint(vec![(0, 3.0), (1, 2.0)], Rel::Le, 18.0);
        let s = solve_lp(&p);
        assert!(s.is_optimal());
        assert_close(s.objective, 36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y s.t. x + y >= 10, x >= 0, y >= 0.
        let mut p = Problem::minimize(2);
        p.set_bounds(0, 0.0, f64::INFINITY);
        p.set_bounds(1, 0.0, f64::INFINITY);
        p.set_objective(vec![(0, 2.0), (1, 3.0)]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Rel::Ge, 10.0);
        let s = solve_lp(&p);
        assert!(s.is_optimal());
        assert_close(s.objective, 20.0);
        assert_close(s.x[0], 10.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1.
        let mut p = Problem::minimize(2);
        p.set_objective(vec![(0, 1.0), (1, 1.0)]);
        p.add_constraint(vec![(0, 1.0), (1, 2.0)], Rel::Eq, 4.0);
        p.add_constraint(vec![(0, 1.0), (1, -1.0)], Rel::Eq, 1.0);
        let s = solve_lp(&p);
        assert!(s.is_optimal());
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 1.0);
    }

    #[test]
    fn free_variables() {
        // min x s.t. x + y = 3, y <= 1, y >= 0; x free → x = 2.
        let mut p = Problem::minimize(2);
        p.set_bounds(1, 0.0, 1.0);
        p.set_objective(vec![(0, 1.0)]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Rel::Eq, 3.0);
        let s = solve_lp(&p);
        assert!(s.is_optimal());
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 1.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::minimize(1);
        p.set_bounds(0, 0.0, 1.0);
        p.add_constraint(vec![(0, 1.0)], Rel::Ge, 2.0);
        assert_eq!(solve_lp(&p).status, Status::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::minimize(1);
        p.set_objective(vec![(0, 1.0)]); // min x, x free, no constraints... need m>=1
        p.add_constraint(vec![(0, 0.0)], Rel::Le, 1.0);
        assert_eq!(solve_lp(&p).status, Status::Unbounded);
    }

    #[test]
    fn bound_flips() {
        // max x + y with box bounds only (one trivial constraint).
        let mut p = Problem::maximize(2);
        p.set_bounds(0, -1.0, 2.0);
        p.set_bounds(1, -1.0, 3.0);
        p.set_objective(vec![(0, 1.0), (1, 1.0)]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Rel::Le, 100.0);
        let s = solve_lp(&p);
        assert!(s.is_optimal());
        assert_close(s.objective, 5.0);
    }

    #[test]
    fn negative_rhs_rows() {
        // min x s.t. -x <= -5  (i.e. x >= 5).
        let mut p = Problem::minimize(1);
        p.set_bounds(0, 0.0, f64::INFINITY);
        p.set_objective(vec![(0, 1.0)]);
        p.add_constraint(vec![(0, -1.0)], Rel::Le, -5.0);
        let s = solve_lp(&p);
        assert!(s.is_optimal());
        assert_close(s.x[0], 5.0);
    }

    #[test]
    fn duplicate_coefficients_are_summed() {
        // x + x <= 4 → x <= 2.
        let mut p = Problem::maximize(1);
        p.set_bounds(0, 0.0, f64::INFINITY);
        p.set_objective(vec![(0, 1.0)]);
        p.add_constraint(vec![(0, 1.0), (0, 1.0)], Rel::Le, 4.0);
        let s = solve_lp(&p);
        assert_close(s.x[0], 2.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Many redundant constraints through the same vertex.
        let mut p = Problem::maximize(2);
        p.set_bounds(0, 0.0, f64::INFINITY);
        p.set_bounds(1, 0.0, f64::INFINITY);
        p.set_objective(vec![(0, 1.0), (1, 1.0)]);
        for k in 1..=10 {
            p.add_constraint(vec![(0, k as f64), (1, k as f64)], Rel::Le, 2.0 * k as f64);
        }
        let s = solve_lp(&p);
        assert!(s.is_optimal());
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn larger_transportation_problem() {
        // 3 plants, 4 markets; classic transportation LP.
        let supply = [35.0, 50.0, 40.0];
        let demand = [45.0, 20.0, 30.0, 30.0];
        let cost = [[8.0, 6.0, 10.0, 9.0], [9.0, 12.0, 13.0, 7.0], [14.0, 9.0, 16.0, 5.0]];
        let mut p = Problem::minimize(12);
        for j in 0..12 {
            p.set_bounds(j, 0.0, f64::INFINITY);
        }
        let idx = |i: usize, j: usize| i * 4 + j;
        p.set_objective(
            (0..3).flat_map(|i| (0..4).map(move |j| (idx(i, j), cost[i][j]))).collect(),
        );
        for i in 0..3 {
            p.add_constraint((0..4).map(|j| (idx(i, j), 1.0)).collect(), Rel::Le, supply[i]);
        }
        for j in 0..4 {
            p.add_constraint((0..3).map(|i| (idx(i, j), 1.0)).collect(), Rel::Ge, demand[j]);
        }
        let s = solve_lp(&p);
        assert!(s.is_optimal());
        assert_close(s.objective, 1020.0); // verified by independent min-cost-flow
        assert!(p.is_feasible(&s.x, 1e-6));
    }
}
