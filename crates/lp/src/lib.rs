//! # lp — linear and mixed-integer programming
//!
//! From-scratch solvers standing in for the CBC/GLPK solvers the paper's
//! `solverlp` wraps: a bounded-variable revised simplex ([`simplex`]) and
//! a branch-and-bound MIP solver ([`mip`]) on top of it.
//!
//! Problems are expressed in the natural SolveDB+ shape: variables with
//! (possibly infinite) bounds and optional integrality, linear
//! constraints `a'x ⋈ b`, and a linear objective.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod matrix;
pub mod mip;
pub mod simplex;

use std::fmt;

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    Le,
    Eq,
    Ge,
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rel::Le => "<=",
            Rel::Eq => "=",
            Rel::Ge => ">=",
        })
    }
}

/// A linear constraint `sum(coeffs) rel rhs`. Coefficients are sparse
/// `(variable, coefficient)` pairs; duplicate variables are allowed and
/// summed.
#[derive(Debug, Clone)]
pub struct Constraint {
    pub coeffs: Vec<(usize, f64)>,
    pub rel: Rel,
    pub rhs: f64,
}

impl Constraint {
    pub fn new(coeffs: Vec<(usize, f64)>, rel: Rel, rhs: f64) -> Constraint {
        Constraint { coeffs, rel, rhs }
    }
}

/// A linear (or mixed-integer) program.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    /// Number of structural variables.
    pub num_vars: usize,
    /// Sparse objective coefficients (duplicates summed).
    pub objective: Vec<(usize, f64)>,
    /// Constant term of the objective (reported, not optimized).
    pub objective_constant: f64,
    /// Minimize (true) or maximize (false).
    pub minimize: bool,
    pub constraints: Vec<Constraint>,
    /// Per-variable bounds; use `f64::NEG_INFINITY`/`f64::INFINITY` for free.
    pub lower: Vec<f64>,
    pub upper: Vec<f64>,
    /// Per-variable integrality flags.
    pub integer: Vec<bool>,
    /// Row classes recorded by [`matrix::analyze`] (parallel to
    /// `constraints` once populated, empty until a classification pass
    /// runs). This is the registration point future cut separators
    /// (knapsack covers, clique cuts over packing rows) read from.
    pub row_classes: Vec<matrix::RowClass>,
}

impl Problem {
    /// A minimization problem with `n` variables, free by default.
    pub fn minimize(n: usize) -> Problem {
        Problem {
            num_vars: n,
            objective: vec![],
            objective_constant: 0.0,
            minimize: true,
            constraints: vec![],
            lower: vec![f64::NEG_INFINITY; n],
            upper: vec![f64::INFINITY; n],
            integer: vec![false; n],
            row_classes: vec![],
        }
    }

    pub fn maximize(n: usize) -> Problem {
        let mut p = Problem::minimize(n);
        p.minimize = false;
        p
    }

    /// Add a variable, returning its index.
    pub fn add_var(&mut self, lower: f64, upper: f64, integer: bool) -> usize {
        self.num_vars += 1;
        self.lower.push(lower);
        self.upper.push(upper);
        self.integer.push(integer);
        self.num_vars - 1
    }

    pub fn set_objective(&mut self, coeffs: Vec<(usize, f64)>) {
        self.objective = coeffs;
    }

    pub fn add_constraint(&mut self, coeffs: Vec<(usize, f64)>, rel: Rel, rhs: f64) {
        self.constraints.push(Constraint::new(coeffs, rel, rhs));
    }

    pub fn set_bounds(&mut self, var: usize, lower: f64, upper: f64) {
        self.lower[var] = lower;
        self.upper[var] = upper;
    }

    /// Tighten bounds (intersect with existing).
    pub fn tighten(&mut self, var: usize, lower: f64, upper: f64) {
        self.lower[var] = self.lower[var].max(lower);
        self.upper[var] = self.upper[var].min(upper);
    }

    pub fn has_integers(&self) -> bool {
        self.integer.iter().any(|&b| b)
    }

    /// Objective value of a candidate point (including the constant term).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective_constant + self.objective.iter().map(|&(j, c)| c * x[j]).sum::<f64>()
    }

    /// Check feasibility of a point within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        for j in 0..self.num_vars {
            if x[j] < self.lower[j] - tol || x[j] > self.upper[j] + tol {
                return false;
            }
            if self.integer[j] && (x[j] - x[j].round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.coeffs.iter().map(|&(j, a)| a * x[j]).sum();
            let ok = match c.rel {
                Rel::Le => lhs <= c.rhs + tol,
                Rel::Ge => lhs >= c.rhs - tol,
                Rel::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// Outcome status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    Optimal,
    Infeasible,
    Unbounded,
    /// Branch-and-bound hit its node limit before proving optimality.
    NodeLimit,
    /// The caller's progress callback asked the search to stop (solver
    /// watchdog: timeout or kill). The best incumbent found so far — if
    /// any — is in the solution.
    Interrupted,
}

/// A solve result.
#[derive(Debug, Clone)]
pub struct Solution {
    pub status: Status,
    /// Variable values (meaningful when status is Optimal/NodeLimit).
    pub x: Vec<f64>,
    /// Objective value including the constant term.
    pub objective: f64,
    /// Simplex iterations (pivots). For a MIP this is the sum over all
    /// LP relaxations solved during branch-and-bound.
    pub iterations: usize,
    /// Branch-and-bound nodes explored. Zero for a pure LP solve.
    pub nodes: usize,
}

impl Solution {
    pub fn infeasible() -> Solution {
        Solution {
            status: Status::Infeasible,
            x: vec![],
            objective: f64::NAN,
            iterations: 0,
            nodes: 0,
        }
    }

    pub fn unbounded() -> Solution {
        Solution {
            status: Status::Unbounded,
            x: vec![],
            objective: f64::NAN,
            iterations: 0,
            nodes: 0,
        }
    }

    pub fn is_optimal(&self) -> bool {
        self.status == Status::Optimal
    }
}

/// Solve a problem: LP via simplex, MIP via branch-and-bound.
pub fn solve(p: &Problem) -> Solution {
    if p.has_integers() {
        mip::branch_and_bound(p, mip::MipOptions::default())
    } else {
        simplex::solve_lp(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problem_builders() {
        let mut p = Problem::maximize(0);
        let x = p.add_var(0.0, 10.0, false);
        let y = p.add_var(0.0, f64::INFINITY, true);
        assert_eq!((x, y), (0, 1));
        p.set_objective(vec![(x, 1.0), (y, 2.0)]);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Rel::Le, 5.0);
        assert!(p.has_integers());
        assert_eq!(p.objective_value(&[1.0, 2.0]), 5.0);
        assert!(p.is_feasible(&[1.0, 2.0], 1e-9));
        assert!(!p.is_feasible(&[4.0, 2.0], 1e-9));
        assert!(!p.is_feasible(&[1.0, 1.5], 1e-9)); // y integral
    }

    #[test]
    fn tighten_intersects() {
        let mut p = Problem::minimize(1);
        p.set_bounds(0, 0.0, 10.0);
        p.tighten(0, 2.0, 20.0);
        assert_eq!((p.lower[0], p.upper[0]), (2.0, 10.0));
    }
}
