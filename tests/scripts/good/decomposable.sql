-- A block-diagonal production model: each line's capacity constraint
-- couples only that line's quantities, so the model splits into two
-- independent blocks and the structure analyzer reports SD019.
CREATE TABLE jobs (line int, job text, hours float8, profit float8, qty float8);
INSERT INTO jobs VALUES
  (1, 'a', 2, 25, NULL), (1, 'b', 4, 40, NULL),
  (2, 'c', 3, 30, NULL), (2, 'd', 5, 55, NULL);
SOLVESELECT j(qty) AS (SELECT * FROM jobs)
  MAXIMIZE (SELECT sum(profit * qty) FROM j)
  SUBJECTTO (SELECT sum(hours * qty) <= 100 FROM j GROUP BY line),
            (SELECT 0 <= qty <= 20 FROM j)
  USING solverlp();
