-- expect: SD015
-- The second INSERT carries three values for a two-column table: the
-- arity check runs against the schema derived from statement 1.
CREATE TABLE t (a int, b int);
INSERT INTO t VALUES (1, 2);
INSERT INTO t VALUES (1, 2, 3);
SELECT * FROM t;
