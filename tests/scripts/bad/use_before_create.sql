-- expect: SD013
-- The INSERT runs before the CREATE it depends on: the analyzer proves
-- the use-before-create from the statement order alone.
INSERT INTO orders VALUES (1, 'widget');
CREATE TABLE orders (id int, item text);
SELECT * FROM orders;
