-- expect: SD014
-- The final SELECT reads a table a previous statement dropped.
CREATE TABLE prices (item text, usd float8);
INSERT INTO prices VALUES ('widget', 9.5);
DROP TABLE prices;
SELECT * FROM prices;
