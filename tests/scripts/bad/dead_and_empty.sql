-- expect: SD014 SD017 SD018
-- `plan` is created but never read (SD017, note); the SOLVESELECT's
-- input table is provably empty — created and never inserted into —
-- (SD018, warning); and the last SELECT reads a dropped table
-- (SD014, error).
CREATE TABLE plan (step int, cost float8);
CREATE TABLE empty_input (x float8);
SOLVESELECT s(x) AS (SELECT * FROM empty_input)
  MINIMIZE (SELECT sum(x) FROM s)
  SUBJECTTO (SELECT 0 <= x <= 1 FROM s)
  USING solverlp();
CREATE TABLE scratch (a int);
DROP TABLE scratch;
SELECT * FROM scratch;
