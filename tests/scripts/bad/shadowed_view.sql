-- expect: SD015 SD016
-- Statement 2 replaces a view nothing ever read (SD016, warning);
-- statement 3 re-creates it without OR REPLACE (SD015, error).
CREATE VIEW v AS SELECT 1 AS a;
CREATE OR REPLACE VIEW v AS SELECT 2 AS a;
CREATE VIEW v AS SELECT 3 AS a;
SELECT * FROM v;
