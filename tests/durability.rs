//! Crash-durability integration tests for the storage engine: a
//! kill-point torture test that truncates the WAL at every byte
//! boundary and asserts the recovered catalog equals the state after
//! some prefix of committed statements, plus a loopback server restart
//! on the same data directory.

use solvedbplus::server::{Server, ServerConfig, ShutdownHandle};
use solvedbplus::sqlengine::Value;
use solvedbplus::storage::{FsyncPolicy, StorageEngine};
use solvedbplus::Session;
use std::fs;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sdb-durability-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// One mutation (and therefore one WAL record) per statement, covering
/// every record kind reachable from SQL: create/drop table, row
/// appends, full-table rewrites (UPDATE), and create view.
const TORTURE_STMTS: &[&str] = &[
    "CREATE TABLE a (x int8)",
    "INSERT INTO a VALUES (1), (2)",
    "CREATE TABLE b (y float8)",
    "INSERT INTO b VALUES (0.5)",
    "CREATE VIEW vw AS SELECT sum(x) AS s FROM a",
    "UPDATE a SET x = 10 WHERE x = 1",
    "DROP TABLE b",
    "INSERT INTO a VALUES (4)",
];

/// Canonical fingerprint of the user-visible catalog state: probe
/// results with missing relations rendered as `-`.
fn probe(s: &mut Session) -> String {
    let mut out = String::new();
    for q in ["SELECT x FROM a ORDER BY x", "SELECT y FROM b", "SELECT s FROM vw"] {
        match s.query(q) {
            Ok(r) => out.push_str(&format!("{:?};", r.rows)),
            Err(_) => out.push_str("-;"),
        }
    }
    out
}

/// Torture test: commit a statement sequence through a durable
/// session, then simulate a crash at *every* byte boundary of the WAL
/// by truncating a copy and recovering from it. Recovery must always
/// succeed, must truncate exactly the torn suffix, and must land on
/// the catalog state after the longest fully-logged statement prefix.
#[test]
fn wal_truncated_at_every_byte_recovers_a_statement_prefix() {
    let dir = tmp_dir("torture");
    let wal = dir.join("wal.log");

    // `fingerprints[k]` / `offsets[k]` = catalog state and WAL length
    // after the first k statements committed.
    let mut fingerprints = Vec::new();
    let mut offsets: Vec<u64> = Vec::new();
    {
        let mut s = Session::new();
        let engine = StorageEngine::open(&dir, FsyncPolicy::Never).unwrap();
        s.attach_storage(Arc::new(engine)).unwrap();
        fingerprints.push(probe(&mut s));
        offsets.push(0);
        for stmt in TORTURE_STMTS {
            s.execute(stmt).unwrap();
            fingerprints.push(probe(&mut s));
            offsets.push(fs::metadata(&wal).unwrap().len());
        }
    }
    let full = fs::read(&wal).unwrap();
    assert_eq!(full.len() as u64, *offsets.last().unwrap());
    assert!(full.len() > 100, "torture WAL suspiciously small: {} bytes", full.len());

    let scratch = tmp_dir("torture-scratch");
    for cut in 0..=full.len() {
        let _ = fs::remove_dir_all(&scratch);
        fs::create_dir_all(&scratch).unwrap();
        fs::write(scratch.join("wal.log"), &full[..cut]).unwrap();

        let engine = StorageEngine::open(&scratch, FsyncPolicy::Never)
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        // Longest statement prefix whose final WAL offset fits in the cut.
        let k = offsets.iter().rposition(|&o| o <= cut as u64).unwrap();
        let stats = engine.recovery_stats();
        assert_eq!(stats.replayed_records, k as u64, "replayed records at cut {cut}");
        assert_eq!(stats.truncated_bytes, cut as u64 - offsets[k], "torn bytes at cut {cut}");
        assert_eq!(stats.snapshot_lsn, 0, "no snapshot in this scenario");

        let mut s = Session::new();
        s.attach_storage(Arc::new(engine)).unwrap();
        assert_eq!(probe(&mut s), fingerprints[k], "catalog state at cut {cut}");
    }
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&scratch);
}

/// A nondeterministic-in-principle materialization (a SOLVESELECT
/// solution) must replay to exactly the committed rows: replay is
/// logical catalog mutations, never statement re-execution.
#[test]
fn solve_materialization_replays_to_committed_rows() {
    let dir = tmp_dir("solve-replay");
    let committed = {
        let mut s = Session::new();
        let engine = StorageEngine::open(&dir, FsyncPolicy::Always).unwrap();
        s.attach_storage(Arc::new(engine)).unwrap();
        s.execute("CREATE TABLE v (x float8)").unwrap();
        s.execute("INSERT INTO v VALUES (NULL), (NULL)").unwrap();
        s.execute(
            "CREATE TABLE plan AS SOLVESELECT t(x) AS (SELECT * FROM v) \
             MINIMIZE (SELECT sum(x) FROM t) \
             SUBJECTTO (SELECT x >= 3 FROM t) USING solverlp()",
        )
        .unwrap();
        s.query("SELECT x FROM plan").unwrap().rows
    };
    assert_eq!(committed, vec![vec![Value::Float(3.0)], vec![Value::Float(3.0)]]);

    let mut s = Session::new();
    let engine = StorageEngine::open(&dir, FsyncPolicy::Always).unwrap();
    assert_eq!(engine.recovery_stats().replayed_records, 3);
    s.attach_storage(Arc::new(engine)).unwrap();
    assert_eq!(s.query("SELECT x FROM plan").unwrap().rows, committed);
    let _ = fs::remove_dir_all(&dir);
}

/// CHECKPOINT mid-stream, then more DML: recovery must seed from the
/// snapshot and replay only the WAL tail past it.
#[test]
fn checkpoint_then_tail_replay_recovers_everything() {
    let dir = tmp_dir("checkpoint");
    {
        let mut s = Session::new();
        s.attach_storage(Arc::new(StorageEngine::open(&dir, FsyncPolicy::Never).unwrap())).unwrap();
        s.execute("CREATE TABLE t (x int8)").unwrap();
        s.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        s.execute("CHECKPOINT").unwrap();
        s.execute("INSERT INTO t VALUES (3)").unwrap();
    }
    let mut s = Session::new();
    let engine = StorageEngine::open(&dir, FsyncPolicy::Never).unwrap();
    let stats = engine.recovery_stats();
    assert_eq!(stats.snapshot_lsn, 2);
    assert_eq!(stats.snapshot_tables, 1);
    assert_eq!(stats.replayed_records, 1);
    s.attach_storage(Arc::new(engine)).unwrap();
    assert_eq!(s.query("SELECT count(*) FROM t").unwrap().rows, vec![vec![Value::Int(3)]]);
    let _ = fs::remove_dir_all(&dir);
}

/// Two connections share one durable truth even though each keeps a
/// private catalog: a CREATE TABLE whose name another connection
/// already committed is rejected (not silently merged into the shadow
/// catalog), and recovery sees exactly the first writer's schema.
#[test]
fn cross_connection_create_table_conflict_is_rejected() {
    let dir = tmp_dir("conflict");
    {
        let engine = Arc::new(StorageEngine::open(&dir, FsyncPolicy::Never).unwrap());
        // Both sessions hydrate before either writes.
        let mut s1 = Session::new();
        s1.attach_storage(engine.clone()).unwrap();
        let mut s2 = Session::new();
        s2.attach_storage(engine.clone()).unwrap();

        s1.execute("CREATE TABLE t (a int8)").unwrap();
        s1.execute("INSERT INTO t VALUES (1)").unwrap();

        let err = s2.execute("CREATE TABLE t (b float8, c float8)").unwrap_err();
        assert!(err.to_string().contains("durable catalog"), "got: {err}");
        // IF NOT EXISTS downgrades the cross-connection conflict to a
        // no-op, like it does for a private-catalog conflict.
        s2.execute("CREATE TABLE IF NOT EXISTS t (b float8, c float8)").unwrap();
    }
    let mut s = Session::new();
    let engine = StorageEngine::open(&dir, FsyncPolicy::Never).unwrap();
    s.attach_storage(Arc::new(engine)).unwrap();
    assert_eq!(s.query("SELECT a FROM t").unwrap().rows, vec![vec![Value::Int(1)]]);
    let _ = fs::remove_dir_all(&dir);
}

struct DurableServer {
    addr: SocketAddr,
    shutdown: ShutdownHandle,
    join: Option<thread::JoinHandle<std::io::Result<()>>>,
}

impl DurableServer {
    fn start(dir: &Path) -> DurableServer {
        let srv = Server::bind_with(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                data_dir: Some(dir.to_path_buf()),
                fsync: FsyncPolicy::Always,
                ..ServerConfig::default()
            },
        )
        .expect("bind durable server");
        let addr = srv.local_addr();
        let shutdown = srv.shutdown_handle();
        let join = thread::spawn(move || srv.run());
        DurableServer { addr, shutdown, join: Some(join) }
    }

    fn stop(mut self) {
        self.shutdown.shutdown();
        let join = self.join.take().unwrap();
        join.join().expect("server thread").expect("server run");
    }
}

impl Drop for DurableServer {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            self.shutdown.shutdown();
            let _ = join.join();
        }
    }
}

/// Loopback restart: run a workload (DDL, DML, a solve, a view, a
/// mid-stream CHECKPOINT) against a durable server, restart the server
/// on the same data directory, and assert the recovered answers are
/// identical — including for a connection opened after the restart.
#[test]
fn server_restart_on_same_data_dir_recovers_catalog() {
    use solvedbplus::server::Client;

    let dir = tmp_dir("loopback");
    let check = |client: &mut Client| -> Vec<Vec<Value>> {
        let mut rows = client.query("SELECT s FROM total").unwrap().rows;
        rows.extend(client.query("SELECT count(*) FROM v").unwrap().rows);
        rows.extend(client.query("SELECT x FROM plan ORDER BY x").unwrap().rows);
        rows
    };

    let srv = DurableServer::start(&dir);
    let mut client = Client::connect(srv.addr).expect("connect");
    client
        .execute(
            "CREATE TABLE v (x float8); \
             INSERT INTO v VALUES (NULL), (NULL); \
             CREATE TABLE plan AS SOLVESELECT t(x) AS (SELECT * FROM v) \
               MINIMIZE (SELECT sum(x) FROM t) \
               SUBJECTTO (SELECT x >= 3 FROM t) USING solverlp(); \
             CREATE VIEW total AS SELECT sum(x) AS s FROM plan; \
             CHECKPOINT; \
             INSERT INTO v VALUES (NULL); \
             UPDATE v SET x = 9 WHERE x IS NULL",
        )
        .expect("workload");
    let before = check(&mut client);
    assert_eq!(before[0], vec![Value::Float(6.0)]);
    assert_eq!(before[1], vec![Value::Int(3)]);
    client.close().unwrap();
    srv.stop();

    let srv = DurableServer::start(&dir);
    let mut client = Client::connect(srv.addr).expect("reconnect");
    assert_eq!(check(&mut client), before);
    // The recovery counters are visible over the wire: the snapshot
    // from CHECKPOINT plus the two post-checkpoint statements.
    let row = client
        .query("SELECT recovered_snapshot_lsn, recovered_replayed FROM sdb_storage")
        .unwrap()
        .rows;
    assert_eq!(row, vec![vec![Value::Int(4), Value::Int(2)]]);
    client.close().unwrap();
    srv.stop();
    let _ = fs::remove_dir_all(&dir);
}
