//! End-to-end contract of the whole-script analyzer over the checked-in
//! corpora: every `tests/scripts/bad/*.sql` file declares the SD codes
//! it must trigger in a leading `-- expect:` line and must carry at
//! least one error-level finding; `tests/scripts/good/*.sql` must lint
//! clean; and the decomposable model fires SD019 with provably disjoint
//! blocks.

use solvedbplus::core::{build_problem, check};
use solvedbplus::sqlengine::ast::Statement;
use solvedbplus::sqlengine::catalog::Ctes;
use solvedbplus::sqlengine::parser;
use solvedbplus::Session;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn corpus_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/scripts").join(kind)
}

fn sql_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .filter_map(|e| Some(e.ok()?.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "sql"))
        .collect();
    out.sort();
    assert!(!out.is_empty(), "no .sql files in {}", dir.display());
    out
}

/// The `-- expect: SDxxx SDyyy` header of a bad-corpus script.
fn expected_codes(sql: &str) -> BTreeSet<String> {
    let header = sql
        .lines()
        .find_map(|l| l.trim().strip_prefix("-- expect:"))
        .expect("bad-corpus scripts must declare `-- expect: SDxxx ...`");
    let codes: BTreeSet<String> = header.split_whitespace().map(str::to_string).collect();
    assert!(!codes.is_empty());
    codes
}

#[test]
fn bad_corpus_flags_every_expected_code() {
    for path in sql_files(&corpus_dir("bad")) {
        let sql = std::fs::read_to_string(&path).unwrap();
        let expected = expected_codes(&sql);
        let session = Session::new();
        let analysis = session
            .check_script(&sql)
            .unwrap_or_else(|e| panic!("{} must parse: {e}", path.display()));
        let found: BTreeSet<String> =
            analysis.diagnostics.iter().map(|d| d.diag.code.clone()).collect();
        for code in &expected {
            assert!(found.contains(code), "{}: expected {code}, found {found:?}", path.display());
        }
        assert!(
            analysis.has_errors(),
            "{}: bad-corpus scripts must carry an error-level finding, got {found:?}",
            path.display()
        );
    }
}

#[test]
fn good_corpus_lints_clean() {
    for path in sql_files(&corpus_dir("good")) {
        let sql = std::fs::read_to_string(&path).unwrap();
        let session = Session::new();
        let analysis = session
            .check_script(&sql)
            .unwrap_or_else(|e| panic!("{} must parse: {e}", path.display()));
        assert_eq!(analysis.error_count(), 0, "{}: {:?}", path.display(), analysis.diagnostics);
        assert_eq!(analysis.warning_count(), 0, "{}: {:?}", path.display(), analysis.diagnostics);
    }
}

#[test]
fn sd019_fires_when_executing_the_decomposable_model() {
    let path = corpus_dir("good").join("decomposable.sql");
    let sql = std::fs::read_to_string(&path).unwrap();
    let mut session = Session::new();
    let mut sd019 = None;
    for piece in parser::split_statements(&sql) {
        let r = session.execute(&piece).unwrap_or_else(|e| panic!("{piece}: {e}"));
        if let Some(d) = r.warnings.iter().find(|d| d.code == "SD019") {
            sd019 = Some(d.clone());
        }
    }
    let d = sd019.expect("the solve must report SD019");
    assert!(d.message.contains("2 independent blocks"), "message: {}", d.message);
}

#[test]
fn decomposable_blocks_are_variable_disjoint() {
    let path = corpus_dir("good").join("decomposable.sql");
    let sql = std::fs::read_to_string(&path).unwrap();
    let stmts = parser::parse_statements(&sql).unwrap();
    let mut session = Session::new();
    let mut solve = None;
    for stmt in &stmts {
        if let Statement::Solve(s) = stmt {
            solve = Some(s.clone());
        } else {
            session.execute_statement(stmt).unwrap();
        }
    }
    let solve = solve.expect("decomposable.sql contains a SOLVESELECT");
    let prob = build_problem(session.db(), &Ctes::new(), &solve).unwrap();
    let blocks = check::structure::problem_blocks(session.db(), &Ctes::new(), &prob);
    assert!(blocks.len() >= 2, "expected >= 2 blocks, got {blocks:?}");
    for (i, a) in blocks.iter().enumerate() {
        assert!(!a.vars.is_empty(), "block {i} has no variables");
        assert!(a.rows > 0, "block {i} has no constraint rows");
        for b in blocks.iter().skip(i + 1) {
            assert!(
                a.vars.iter().all(|v| !b.vars.contains(v)),
                "blocks share variables: {blocks:?}"
            );
        }
    }
}

#[test]
fn explain_script_runs_end_to_end() {
    let path = corpus_dir("bad").join("use_before_create.sql");
    let mut session = Session::new();
    let r = session
        .execute(&format!("EXPLAIN SCRIPT '{}'", path.display()))
        .expect("EXPLAIN SCRIPT succeeds even on defective scripts");
    let t = r.into_table().expect("EXPLAIN SCRIPT yields a table");
    // Row 0 is the summary; the SD013 finding appears with its severity.
    assert!(t.num_rows() >= 2, "{t}");
    let has_sd013 =
        t.rows.iter().any(|row| row[1].as_str() == Ok("SD013") && row[2].as_str() == Ok("error"));
    assert!(has_sd013, "expected an SD013 error row in {t}");
}
