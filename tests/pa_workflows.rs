//! Cross-crate integration tests: the complete PA workflows of the
//! paper's evaluation, run through the public facade.

use solvedbplus::{baselines, datagen, Session};

/// UC1 end-to-end through SQL, validated against the ground-truth
/// generator and the directly-constructed LP baseline.
#[test]
fn uc1_full_pipeline_agrees_with_direct_lp() {
    const HISTORY: usize = 120;
    const HORIZON: usize = 16;
    let mut s = Session::new();
    let rows = datagen::energy_series(HISTORY + HORIZON, 99);
    s.db_mut().put_table("input", datagen::energy_planning_table(HISTORY, HORIZON, 99));
    s.execute("CREATE TABLE hist AS SELECT * FROM input WHERE pvsupply IS NOT NULL").unwrap();
    s.execute("CREATE TABLE horizon AS SELECT * FROM input WHERE pvsupply IS NULL").unwrap();

    // P2 via the specialized solver; P4 via the symbolic LP with the
    // generator's true thermal parameters (so the LP is checkable).
    s.execute(
        "CREATE TABLE pred AS SOLVESELECT t(pvsupply) AS (SELECT * FROM input) \
         USING lr_solver(features := outtemp)",
    )
    .unwrap();
    s.execute(
        "CREATE TABLE pv_forecast AS SELECT time, greatest(0.0, pvsupply) AS pvsupply \
         FROM pred WHERE time > (SELECT max(time) FROM hist)",
    )
    .unwrap();
    s.execute(&format!(
        "CREATE TABLE hvac_pars AS SELECT {} AS a1, {} AS b1, {} AS b2",
        datagen::TRUE_A1,
        datagen::TRUE_B1,
        datagen::TRUE_B2
    ))
    .unwrap();
    s.execute(
        "CREATE TABLE plan AS \
         SOLVESELECT t(hload, intemp) AS \
           (SELECT h.time, h.outtemp, h.intemp, h.hload, f.pvsupply \
            FROM horizon h JOIN pv_forecast f ON f.time = h.time) \
         WITH sim AS ( \
           WITH RECURSIVE s(time, x) AS ( \
             SELECT (SELECT min(time) FROM t) AS time, \
                    (SELECT intemp FROM hist ORDER BY time DESC LIMIT 1) AS x \
             UNION ALL \
             SELECT s.time + interval '1 hour', \
                    (SELECT a1 FROM hvac_pars) * s.x \
                    + (SELECT b1 FROM hvac_pars) * n.outtemp \
                    + (SELECT b2 FROM hvac_pars) * n.hload \
             FROM s JOIN t n ON n.time = s.time \
             WHERE s.time <= (SELECT max(time) FROM t)) \
           SELECT time, x FROM s) \
         MINIMIZE (SELECT sum((hload - pvsupply) * 0.12) FROM t) \
         SUBJECTTO (SELECT t.intemp = sim.x FROM sim, t WHERE t.time = sim.time), \
                   (SELECT 20 <= intemp <= 25, 0 <= hload <= 17000 FROM t) \
         USING solverlp.cbc()",
    )
    .unwrap();

    let plan = s.query("SELECT hload, pvsupply, outtemp FROM plan ORDER BY time").unwrap();
    let sql_loads: Vec<f64> = plan.rows.iter().map(|r| r[0].as_f64().unwrap()).collect();
    let pv: Vec<f64> = plan.rows.iter().map(|r| r[1].as_f64().unwrap()).collect();

    // The same LP built directly in Rust must agree.
    let mut task = baselines::uc1::Uc1Task::new(
        rows[..HISTORY].to_vec(),
        rows[HISTORY..].iter().map(|r| r.out_temp).collect(),
    );
    task.comfort = (20.0, 25.0);
    let x0 = rows[HISTORY - 1].in_temp;
    let (direct, _) = baselines::uc1::p4_direct(
        &task,
        (datagen::TRUE_A1, datagen::TRUE_B1, datagen::TRUE_B2),
        &pv,
        x0,
    );
    assert_eq!(sql_loads.len(), direct.len());
    let sql_cost: f64 = sql_loads.iter().zip(&pv).map(|(h, p)| (h - p) * 0.12).sum();
    let direct_cost: f64 = direct.iter().zip(&pv).map(|(h, p)| (h - p) * 0.12).sum();
    assert!((sql_cost - direct_cost).abs() < 1e-3, "SQL {sql_cost} vs direct {direct_cost}");
}

/// UC2 end-to-end: SolveDB+ picks a feasible, profitable production set
/// and the baselines agree on the problem's scale.
#[test]
fn uc2_full_pipeline() {
    let items = datagen::supply_chain(8, 36, 21);
    let mut s = Session::new();
    datagen::install_supply_chain(s.db_mut(), &items);

    s.execute("CREATE TABLE demand_forecast (item_id int, qty float8)").unwrap();
    for it in &items {
        let id = it.item_id;
        s.execute(&format!(
            "INSERT INTO demand_forecast \
             SELECT item_id, qty FROM ( \
               SOLVESELECT t(qty) AS ( \
                 SELECT item_id, month, quantity AS qty FROM orders WHERE item_id = {id} \
                 UNION ALL \
                 SELECT {id}, (SELECT max(month) FROM orders WHERE item_id = {id}) \
                              + interval '31 days', NULL::float8 \
                 ORDER BY month) \
               USING arima_solver(seed := 3) \
             ) f WHERE NOT EXISTS (SELECT 1 FROM orders o \
                                   WHERE o.item_id = f.item_id AND o.month = f.month)"
        ))
        .unwrap();
    }
    s.execute(
        "CREATE TABLE profit AS \
         SELECT i.item_id, (i.price - i.cost) * greatest(0.0, f.qty) AS v, \
                i.size * greatest(0.0, f.qty) AS volume \
         FROM items i JOIN demand_forecast f ON f.item_id = i.item_id",
    )
    .unwrap();
    s.execute(
        "CREATE TABLE production_plan AS \
         SOLVESELECT p(pick) AS (SELECT item_id, v, volume, NULL::int AS pick FROM profit) \
         MAXIMIZE (SELECT sum(v * pick) FROM p) \
         SUBJECTTO (SELECT sum(volume * pick) <= 0.4 * (SELECT sum(volume) FROM profit) FROM p), \
                   (SELECT 0 <= pick <= 1 FROM p) \
         USING solverlp.cbc()",
    )
    .unwrap();

    let picked = s
        .query_scalar("SELECT count(*) FROM production_plan WHERE pick = 1")
        .unwrap()
        .as_i64()
        .unwrap();
    assert!(picked >= 1, "nothing picked");
    let used =
        s.query_scalar("SELECT sum(volume * pick) FROM production_plan").unwrap().as_f64().unwrap();
    let cap = s.query_scalar("SELECT 0.4 * sum(volume) FROM profit").unwrap().as_f64().unwrap();
    assert!(used <= cap + 1e-6);

    // The R-style baseline solves the same shape of problem.
    let r = baselines::uc2::r_cplex(&items);
    assert_eq!(r.picks.len(), items.len());
}

/// The paper's headline claim: an entire PA workflow — prediction and
/// optimization — inside ONE extended SQL query, by composing
/// SOLVESELECTs as subqueries.
#[test]
fn single_query_pa_workflow() {
    let mut s = Session::new();
    datagen::install_table1(s.db_mut());
    // Predict pvSupply, then choose hload to track the forecasted supply
    // under a power cap — one statement, two nested solver invocations.
    let t = s
        .query(
            "SOLVESELECT sched(hload) AS ( \
               SELECT time, pvsupply, NULL::float8 AS hload \
               FROM (SOLVESELECT t(pvsupply) AS (SELECT * FROM input) \
                     USING predictive_solver()) predicted \
               WHERE intemp IS NULL) \
             MINIMIZE (SELECT sum(pvsupply - hload) FROM sched) \
             SUBJECTTO (SELECT 0 <= hload <= pvsupply FROM sched) \
             USING solverlp()",
        )
        .unwrap();
    assert_eq!(t.num_rows(), 5);
    // Optimal tracking uses all available PV.
    for row in &t.rows {
        let pv = row[1].as_f64().unwrap();
        let h = row[2].as_f64().unwrap();
        assert!((h - pv.max(0.0)).abs() < 1e-6, "h {h} pv {pv}");
    }
}

/// The explainability path: MODELEVAL inspects a stored model's data
/// and simulation without solving anything.
#[test]
fn modeleval_inspection() {
    let mut s = Session::new();
    s.execute("CREATE TABLE model (m model)").unwrap();
    s.execute(
        "INSERT INTO model SELECT (SOLVEMODEL pars AS (SELECT 0.5 AS k) \
         WITH curve AS (SELECT (SELECT k FROM pars) * 10.0 AS v))",
    )
    .unwrap();
    let v = s.query_scalar("MODELEVAL (SELECT v FROM curve) IN (SELECT m FROM model)").unwrap();
    assert_eq!(v.as_f64().unwrap(), 5.0);
    // Instantiated evaluation sees the new parameters.
    let v = s
        .query_scalar(
            "MODELEVAL (SELECT v FROM curve) IN \
             (SELECT m << (SOLVEMODEL pars AS (SELECT 2.0 AS k)) FROM model)",
        )
        .unwrap();
    assert_eq!(v.as_f64().unwrap(), 20.0);
}
