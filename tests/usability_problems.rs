//! The usability-study problem set (paper §5.1): Knapsack, production
//! planning, Sudoku, curve fitting, hypothetical deletes/inserts, and
//! demand-and-supply balancing — each solved through SQL, with the
//! solution checked against an independent oracle.

use solvedbplus::Session;

#[test]
fn knapsack() {
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE items (v float8, w float8, pick int);
         INSERT INTO items VALUES (10, 5, NULL), (40, 4, NULL), (30, 6, NULL), (50, 3, NULL)",
    )
    .unwrap();
    let obj = s
        .query_scalar(
            "SELECT sum(v * pick) FROM (SOLVESELECT i(pick) AS (SELECT * FROM items) \
             MAXIMIZE (SELECT sum(v * pick) FROM i) \
             SUBJECTTO (SELECT sum(w * pick) <= 10 FROM i), (SELECT 0 <= pick <= 1 FROM i) \
             USING solverlp.cbc()) z",
        )
        .unwrap();
    // Classic instance: optimum 90 (items 2 and 4).
    assert_eq!(obj.as_f64().unwrap(), 90.0);
}

#[test]
fn production_planning_with_inventory() {
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE months (m int, demand float8, capacity float8, produce float8, stock float8);
         INSERT INTO months VALUES
           (1, 100, 120, NULL, NULL), (2, 140, 120, NULL, NULL), (3, 90, 120, NULL, NULL)",
    )
    .unwrap();
    let t = s
        .query(
            "SOLVESELECT t(produce, stock) AS (SELECT * FROM months) \
             MINIMIZE (SELECT sum(stock) FROM t) \
             SUBJECTTO \
               (SELECT cur.stock = prv.stock + cur.produce - cur.demand \
                FROM t cur JOIN t prv ON cur.m = prv.m + 1), \
               (SELECT stock = produce - demand FROM t WHERE m = 1), \
               (SELECT 0 <= produce <= capacity, stock >= 0 FROM t) \
             USING solverlp()",
        )
        .unwrap();
    // Month 2 demand (140) exceeds capacity (120): month 1 must
    // pre-produce 20, so months 1-2 both run at full capacity.
    let produce: Vec<f64> =
        t.column_values("produce").unwrap().iter().map(|v| v.as_f64().unwrap()).collect();
    assert!((produce[0] - 120.0).abs() < 1e-6, "{produce:?}");
    assert!((produce[1] - 120.0).abs() < 1e-6);
    let stocks: Vec<f64> =
        t.column_values("stock").unwrap().iter().map(|v| v.as_f64().unwrap()).collect();
    assert!((stocks[0] - 20.0).abs() < 1e-6, "{stocks:?}");
}

#[test]
fn curve_fitting_l1() {
    let mut s = Session::new();
    s.execute("CREATE TABLE pts (x float8, y float8)").unwrap();
    for i in 0..10 {
        let x = i as f64;
        s.execute(&format!("INSERT INTO pts VALUES ({x}, {})", 3.0 * x + 1.0)).unwrap();
    }
    let t = s
        .query(
            "SOLVESELECT p(a, b) AS (SELECT NULL::float8 AS a, NULL::float8 AS b) \
             WITH e(err) AS (SELECT x, y, NULL::float8 AS err FROM pts) \
             MINIMIZE (SELECT sum(err) FROM e) \
             SUBJECTTO (SELECT -1*err <= (a + b*x - y) <= err FROM e, p) \
             USING solverlp()",
        )
        .unwrap();
    assert!((t.value_by_name(0, "a").unwrap().as_f64().unwrap() - 1.0).abs() < 1e-6);
    assert!((t.value_by_name(0, "b").unwrap().as_f64().unwrap() - 3.0).abs() < 1e-6);
}

#[test]
fn hypothetical_deletes() {
    // "Hypothetical DB deletes/inserts": choose the fewest rows to drop so
    // the remaining total fits a budget — a MIP whose decisions are
    // keep/drop flags; the hypothetical state is then materialized with
    // ordinary SQL, leaving the base table untouched.
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE expenses (id int, amount float8, keep int);
         INSERT INTO expenses VALUES
           (1, 500, NULL), (2, 300, NULL), (3, 200, NULL), (4, 900, NULL)",
    )
    .unwrap();
    s.execute(
        "CREATE TABLE hypothetical AS \
         SELECT id, amount FROM ( \
           SOLVESELECT e(keep) AS (SELECT * FROM expenses) \
           MAXIMIZE (SELECT sum(keep) FROM e) \
           SUBJECTTO (SELECT sum(amount * keep) <= 1000 FROM e), \
                     (SELECT 0 <= keep <= 1 FROM e) \
           USING solverlp.cbc()) z WHERE keep = 1",
    )
    .unwrap();
    // Keep the most rows under budget: {2, 3, 1} sums 1000 → 3 rows.
    assert_eq!(s.query_scalar("SELECT count(*) FROM hypothetical").unwrap().as_i64().unwrap(), 3);
    let total = s.query_scalar("SELECT sum(amount) FROM hypothetical").unwrap();
    assert!(total.as_f64().unwrap() <= 1000.0);
    // Base table unchanged.
    assert_eq!(s.query_scalar("SELECT count(*) FROM expenses").unwrap().as_i64().unwrap(), 4);
}

#[test]
fn demand_and_supply_balancing() {
    // Producers with capacity and marginal cost; consumers with demand.
    // Minimize production cost while meeting total demand — and verify
    // against the greedy merit-order oracle.
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE producers (name text, capacity float8, cost float8, output float8);
         INSERT INTO producers VALUES
           ('solar', 120, 1.0, NULL), ('wind', 80, 2.0, NULL),
           ('gas', 300, 5.0, NULL), ('coal', 400, 7.0, NULL);
         CREATE TABLE consumers (name text, demand float8);
         INSERT INTO consumers VALUES ('north', 150), ('south', 180);",
    )
    .unwrap();
    let t = s
        .query(
            "SOLVESELECT p(output) AS (SELECT * FROM producers) \
             MINIMIZE (SELECT sum(cost * output) FROM p) \
             SUBJECTTO \
               (SELECT sum(output) = (SELECT sum(demand) FROM consumers) FROM p), \
               (SELECT 0 <= output <= capacity FROM p) \
             USING solverlp()",
        )
        .unwrap();
    // Merit order: 120 solar + 80 wind + 130 gas = 330 at cost 930.
    let cost: f64 = t.rows.iter().map(|r| r[2].as_f64().unwrap() * r[3].as_f64().unwrap()).sum();
    assert!((cost - 930.0).abs() < 1e-6, "cost {cost}");
}

#[test]
fn sudoku_4x4() {
    let mut s = Session::new();
    s.execute("CREATE TABLE cells (r int, c int, v int, box int, pick int)").unwrap();
    for r in 1..=4i64 {
        for c in 1..=4i64 {
            let b = ((r - 1) / 2) * 2 + (c - 1) / 2 + 1;
            for v in 1..=4i64 {
                s.execute(&format!("INSERT INTO cells VALUES ({r}, {c}, {v}, {b}, NULL)")).unwrap();
            }
        }
    }
    s.execute_script(
        "CREATE TABLE clues (r int, c int, v int);
         INSERT INTO clues VALUES (1,1,1), (1,2,2), (2,1,3), (2,3,1), (3,2,1), (4,4,1)",
    )
    .unwrap();
    let solved = s
        .query(
            "SOLVESELECT g(pick) AS (SELECT * FROM cells) \
             MAXIMIZE (SELECT sum(pick) FROM g) \
             SUBJECTTO \
               (SELECT sum(pick) = 1 FROM g GROUP BY r, c), \
               (SELECT sum(pick) = 1 FROM g GROUP BY r, v), \
               (SELECT sum(pick) = 1 FROM g GROUP BY c, v), \
               (SELECT sum(pick) = 1 FROM g GROUP BY box, v), \
               (SELECT pick = 1 FROM g JOIN clues ON g.r = clues.r \
                  AND g.c = clues.c AND g.v = clues.v), \
               (SELECT 0 <= pick <= 1 FROM g) \
             USING solverlp.cbc()",
        )
        .unwrap();
    let mut grid = [[0i64; 4]; 4];
    for row in &solved.rows {
        if row[4].as_i64().unwrap() == 1 {
            grid[(row[0].as_i64().unwrap() - 1) as usize]
                [(row[1].as_i64().unwrap() - 1) as usize] = row[2].as_i64().unwrap();
        }
    }
    // The clue set leaves the puzzle under-determined (several valid
    // completions exist), so accept any grid that is a proper 4x4
    // sudoku consistent with the clues rather than one fixed optimum.
    let perm = |vals: [i64; 4]| {
        let mut v = vals;
        v.sort_unstable();
        v == [1, 2, 3, 4]
    };
    for i in 0..4 {
        assert!(perm(grid[i]), "row {i} invalid: {grid:?}");
        assert!(
            perm([grid[0][i], grid[1][i], grid[2][i], grid[3][i]]),
            "col {i} invalid: {grid:?}"
        );
    }
    for (r0, c0) in [(0, 0), (0, 2), (2, 0), (2, 2)] {
        let b = [grid[r0][c0], grid[r0][c0 + 1], grid[r0 + 1][c0], grid[r0 + 1][c0 + 1]];
        assert!(perm(b), "box at ({r0},{c0}) invalid: {grid:?}");
    }
    for (r, c, v) in [(1, 1, 1), (1, 2, 2), (2, 1, 3), (2, 3, 1), (3, 2, 1), (4, 4, 1)] {
        assert_eq!(grid[r - 1][c - 1], v, "clue ({r},{c})={v} violated: {grid:?}");
    }
}
