//! Multi-period production planning — a usability-study problem (§5.1):
//! decide per-month production under capacity and inventory balance,
//! maximizing profit. Inventory coupling across months makes this a
//! *time-linked* LP, expressed with a self-join constraint.
//!
//! Run with: `cargo run --example production_planning`

use solvedbplus::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new();

    // Demand and unit economics per month.
    s.execute(
        "CREATE TABLE months (m int, demand float8, capacity float8,
                              unit_profit float8, hold_cost float8,
                              produce float8, stock float8)",
    )?;
    for (m, (d, cap)) in
        [(120.0, 150.0), (160.0, 180.0), (220.0, 200.0), (140.0, 150.0)].iter().enumerate()
    {
        s.execute(&format!(
            "INSERT INTO months VALUES ({}, {d}, {cap}, 9.0, 1.5, NULL, NULL)",
            m + 1
        ))?;
    }

    let plan = s.query(
        "SOLVESELECT t(produce, stock) AS (SELECT * FROM months) \
         MAXIMIZE (SELECT sum(demand * unit_profit - hold_cost * stock) FROM t) \
         SUBJECTTO \
           -- inventory balance: stock_m = stock_{m-1} + produce_m - demand_m
           (SELECT cur.stock = prv.stock + cur.produce - cur.demand \
            FROM t cur JOIN t prv ON cur.m = prv.m + 1), \
           (SELECT stock = produce - demand FROM t WHERE m = 1), \
           (SELECT 0 <= produce <= capacity, stock >= 0 FROM t) \
         USING solverlp()",
    )?;
    println!("Production plan:\n{plan}");

    // All demand must have been met from production + stock.
    let total_prod = s.query_scalar("SELECT sum(demand) FROM months")?;
    println!("Total demand covered: {total_prod}");
    Ok(())
}
