//! Installing a user-defined solver (the paper's RC3 extensibility):
//! a greedy interval scheduler exposed as `USING greedy_scheduler()`.
//!
//! Run with: `cargo run --example custom_solver`

use solvedbplus::{ProblemInstance, Session, SolveContext, Solver, Table, Value};
use std::sync::Arc;

/// Picks a maximum set of non-overlapping intervals (classic greedy by
/// earliest finish time) and marks them in the `pick` decision column.
struct GreedyScheduler;

impl Solver for GreedyScheduler {
    fn name(&self) -> &str {
        "greedy_scheduler"
    }

    fn solve(&self, _ctx: &SolveContext<'_>, prob: &ProblemInstance) -> sqlengine::Result<Table> {
        let rel = &prob.relations[0];
        let t = &rel.table;
        let start = t.schema.index_of("start_at").expect("start_at column");
        let finish = t.schema.index_of("finish_at").expect("finish_at column");
        let pick = t.schema.index_of("pick").expect("pick column");
        let mut order: Vec<usize> = (0..t.num_rows()).collect();
        order.sort_by(|&a, &b| t.rows[a][finish].cmp_total(&t.rows[b][finish]));
        let mut out = t.clone();
        let mut cursor = f64::NEG_INFINITY;
        for r in order {
            let s = t.rows[r][start].as_f64().unwrap_or(0.0);
            let f = t.rows[r][finish].as_f64().unwrap_or(0.0);
            let take = s >= cursor;
            if take {
                cursor = f;
            }
            out.rows[r][pick] = Value::Int(take as i64);
        }
        out.schema.columns[pick].ty = sqlengine::DataType::Int;
        Ok(out)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new();
    s.install_solver(Arc::new(GreedyScheduler));

    s.execute("CREATE TABLE meetings (title text, start_at float8, finish_at float8, pick int)")?;
    for (title, a, b) in [
        ("standup", 9.0, 9.5),
        ("design review", 9.25, 11.0),
        ("1:1", 10.0, 10.5),
        ("lunch", 12.0, 13.0),
        ("retro", 10.25, 12.25),
        ("planning", 13.0, 14.0),
    ] {
        s.execute(&format!("INSERT INTO meetings VALUES ('{title}', {a}, {b}, NULL)"))?;
    }

    let schedule =
        s.query("SOLVESELECT m(pick) AS (SELECT * FROM meetings) USING greedy_scheduler()")?;
    println!("Schedule (pick = attend):\n{schedule}");
    let attended = s.query_scalar(
        "SELECT count(*) FROM (SOLVESELECT m(pick) AS (SELECT * FROM meetings) \
         USING greedy_scheduler()) x WHERE pick = 1",
    )?;
    println!("Meetings attended: {attended}");
    Ok(())
}
