//! Quickstart: create tables, solve a production-planning LP, a
//! knapsack MIP and a prediction task — all through SQL.
//!
//! Run with: `cargo run --example quickstart`

use solvedbplus::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new();

    // ── 1. Plain SQL works as usual ────────────────────────────────────
    s.execute_script(
        "CREATE TABLE products (name text, profit float8, hours float8, qty float8);
         INSERT INTO products VALUES
           ('chair', 45, 2.0, NULL),
           ('table', 80, 4.0, NULL),
           ('shelf', 25, 1.0, NULL);",
    )?;

    // ── 2. An optimization problem is just a query ─────────────────────
    // Decide production quantities under a 120-hour capacity.
    let plan = s.query(
        "SOLVESELECT p(qty) AS (SELECT * FROM products) \
         MAXIMIZE (SELECT sum(profit * qty) FROM p) \
         SUBJECTTO (SELECT sum(hours * qty) <= 120 FROM p), \
                   (SELECT 0 <= qty <= 40 FROM p) \
         USING solverlp()",
    )?;
    println!("Production plan (LP):\n{plan}");

    // ── 3. Integer decisions: a knapsack ───────────────────────────────
    s.execute_script(
        "CREATE TABLE cargo (item text, value float8, weight float8, take int);
         INSERT INTO cargo VALUES
           ('laptop', 60, 10, NULL), ('camera', 100, 20, NULL),
           ('drone', 120, 30, NULL), ('books', 40, 25, NULL);",
    )?;
    let picked = s.query(
        "SOLVESELECT c(take) AS (SELECT * FROM cargo) \
         MAXIMIZE (SELECT sum(value * take) FROM c) \
         SUBJECTTO (SELECT sum(weight * take) <= 50 FROM c), \
                   (SELECT 0 <= take <= 1 FROM c) \
         USING solverlp.cbc()",
    )?;
    println!("Knapsack (MIP):\n{picked}");

    // ── 4. Prediction fills unknown cells ──────────────────────────────
    s.execute("CREATE TABLE sales (day timestamp, units float8)")?;
    for i in 0..30 {
        let v: String = if i < 25 {
            format!("{}", 100.0 + 3.0 * i as f64)
        } else {
            "NULL".into() // the 5 days to forecast
        };
        s.execute(&format!(
            "INSERT INTO sales VALUES ('2026-06-01'::timestamp + interval '{i} days', {v})"
        ))?;
    }
    let forecast =
        s.query("SOLVESELECT f(units) AS (SELECT * FROM sales) USING predictive_solver()")?;
    println!("Sales forecast (last rows filled by the Predictive Advisor):");
    for row in forecast.rows.iter().rev().take(6).rev() {
        println!("  {}  {:>8.1}", row[0], row[1].as_f64()?);
    }

    // ── 5. Solving composes with SQL ───────────────────────────────────
    let revenue = s.query_scalar(
        "SELECT sum(value * take) FROM (SOLVESELECT c(take) AS (SELECT * FROM cargo) \
           MAXIMIZE (SELECT sum(value * take) FROM c) \
           SUBJECTTO (SELECT sum(weight * take) <= 50 FROM c), \
                     (SELECT 0 <= take <= 1 FROM c) \
           USING solverlp.cbc()) AS solved",
    )?;
    println!("\nBest cargo value (via subquery composition): {revenue}");
    Ok(())
}
