//! Sudoku as a SOLVESELECT — one of the usability-study problems the
//! paper's participants solved (§5.1). A 4×4 sudoku (2×2 boxes) keeps
//! the MIP small; the encoding is the standard one-hot `pick[r,c,v]`
//! with grouped constraints expressed as SQL aggregates.
//!
//! Run with: `cargo run --release --example sudoku`

use solvedbplus::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new();

    // All (row, column, value) combinations; `pick` is the decision.
    s.execute("CREATE TABLE cells (r int, c int, v int, box int, pick int)")?;
    for r in 1..=4 {
        for c in 1..=4 {
            let b = ((r - 1) / 2) * 2 + (c - 1) / 2 + 1;
            for v in 1..=4 {
                s.execute(&format!("INSERT INTO cells VALUES ({r}, {c}, {v}, {b}, NULL)"))?;
            }
        }
    }
    // Clues (from the solution 1234 / 3412 / 2143 / 4321):
    //   1 2 . .
    //   3 . 1 .
    //   . 1 . .
    //   . . . 1
    s.execute_script(
        "CREATE TABLE clues (r int, c int, v int);
         INSERT INTO clues VALUES (1,1,1), (1,2,2), (2,1,3), (2,3,1), (3,2,1), (4,4,1)",
    )?;

    let solved = s.query(
        "SOLVESELECT g(pick) AS (SELECT * FROM cells) \
         MAXIMIZE (SELECT sum(pick) FROM g) \
         SUBJECTTO \
           (SELECT sum(pick) = 1 FROM g GROUP BY r, c), \
           (SELECT sum(pick) = 1 FROM g GROUP BY r, v), \
           (SELECT sum(pick) = 1 FROM g GROUP BY c, v), \
           (SELECT sum(pick) = 1 FROM g GROUP BY box, v), \
           (SELECT pick = 1 FROM g JOIN clues ON g.r = clues.r \
              AND g.c = clues.c AND g.v = clues.v), \
           (SELECT 0 <= pick <= 1 FROM g) \
         USING solverlp.cbc()",
    )?;

    // Render the grid.
    let mut grid = [[0i64; 4]; 4];
    for row in &solved.rows {
        if row[4].as_i64()? == 1 {
            let (r, c, v) = (row[0].as_i64()?, row[1].as_i64()?, row[2].as_i64()?);
            grid[(r - 1) as usize][(c - 1) as usize] = v;
        }
    }
    println!("Solved sudoku:");
    for r in grid {
        println!("  {} {} {} {}", r[0], r[1], r[2], r[3]);
    }

    Ok(())
}
