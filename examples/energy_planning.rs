//! UC1 — the paper's running example (renewable energy planning),
//! end-to-end: forecast PV supply (P2), fit the building's thermal model
//! with a *shared optimization model* (P3), and schedule HVAC load to
//! minimize electricity cost (P4) — every step a SQL statement.
//!
//! Run with: `cargo run --release --example energy_planning`

use solvedbplus::{datagen, Session};

const HISTORY: usize = 168; // one week of hourly measurements
const HORIZON: usize = 24; // plan one day ahead

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new();

    // P1: load the NIST-like dataset. The planning horizon's rows carry
    // forecasted outdoor temperature and NULL decision cells (Table 1).
    let table = datagen::energy_planning_table(HISTORY, HORIZON, 42);
    s.db_mut().put_table("input", table);
    s.execute("CREATE TABLE hist AS SELECT * FROM input WHERE pvsupply IS NOT NULL")?;
    s.execute("CREATE TABLE horizon AS SELECT * FROM input WHERE pvsupply IS NULL")?;
    println!("Loaded {HISTORY} history rows + {HORIZON} planning rows.");

    // P2: forecast PV supply over the horizon with the specialized LR
    // solver (outdoor temperature as the feature).
    s.execute(
        "CREATE TABLE predicted AS \
         SOLVESELECT t(pvsupply) AS (SELECT * FROM input) \
         USING lr_solver(features := outtemp)",
    )?;
    s.execute(
        "CREATE TABLE pv_forecast AS \
         SELECT time, greatest(0.0, pvsupply) AS pvsupply FROM predicted \
         WHERE time > (SELECT max(time) FROM hist)",
    )?;
    println!("P2: PV forecast ready ({HORIZON} hours).");

    // P3: store the generic LTI thermal model once, then fit its
    // parameters to this building by simulated annealing.
    s.execute("CREATE TABLE model (m model)")?;
    s.execute(
        "INSERT INTO model SELECT (SOLVEMODEL \
           pars AS (SELECT 0.0::float8 AS a1, 0.0::float8 AS b1, 0.0::float8 AS b2) \
           WITH data0 AS (SELECT 21.0::float8 AS intemp), \
                data AS (SELECT time, outtemp, intemp, hload FROM hist), \
                simul AS ( \
                  WITH RECURSIVE sim(time, x) AS ( \
                    SELECT (SELECT min(time) FROM data), (SELECT intemp FROM data0) \
                    UNION ALL \
                    SELECT sim.time + interval '1 hour', \
                           (SELECT a1 FROM pars) * sim.x \
                           + (SELECT b1 FROM pars) * n.outtemp \
                           + (SELECT b2 FROM pars) * n.hload \
                    FROM sim JOIN data n ON n.time = sim.time) \
                  SELECT time, x FROM sim))",
    )?;
    let fitted = s.query(
        "SOLVESELECT t(a1, b1, b2) AS \
           (SELECT 0.5::float8 AS a1, 0.05::float8 AS b1, 0.0005::float8 AS b2) \
         INLINE m AS (SELECT m << (SOLVEMODEL \
             pars AS (SELECT a1, b1, b2 FROM t) \
             WITH data0 AS (SELECT intemp FROM hist ORDER BY time LIMIT 1)) \
           FROM model) \
         MINIMIZE (SELECT sum((m_simul.x - h.intemp)^2) FROM m_simul, hist h \
                   WHERE m_simul.time = h.time) \
         SUBJECTTO (SELECT 0 <= a1 <= 1, 0 <= b1 <= 1, 0 <= b2 <= 0.001 FROM t) \
         USING swarmops.sa(iterations := 2500, seed := 11)",
    )?;
    let a1 = fitted.value_by_name(0, "a1")?.as_f64()?;
    let b1 = fitted.value_by_name(0, "b1")?.as_f64()?;
    let b2 = fitted.value_by_name(0, "b2")?.as_f64()?;
    println!(
        "P3: fitted thermal model a1={a1:.3} b1={b1:.3} b2={b2:.5} \
         (generator truth: {:.2} {:.2} {:.5})",
        datagen::TRUE_A1,
        datagen::TRUE_B1,
        datagen::TRUE_B2
    );
    s.execute(&format!("CREATE TABLE hvac_pars AS SELECT {a1} AS a1, {b1} AS b1, {b2} AS b2"))?;

    // P4: schedule HVAC loads — minimize electricity cost subject to the
    // thermal dynamics (the same shared model) and comfort limits.
    s.execute(
        "CREATE TABLE plan AS \
         SOLVESELECT t(hload, intemp) AS \
           (SELECT h.time, h.outtemp, h.intemp, h.hload, f.pvsupply \
            FROM horizon h JOIN pv_forecast f ON f.time = h.time) \
         INLINE m AS (SELECT m << (SOLVEMODEL \
             pars AS (SELECT a1, b1, b2 FROM hvac_pars) \
             WITH data0 AS (SELECT intemp FROM hist ORDER BY time DESC LIMIT 1), \
                  data AS (SELECT time, outtemp, 0.0 AS intemp, hload FROM t)) \
           FROM model) \
         MINIMIZE (SELECT sum((hload - pvsupply) * 0.12) FROM t) \
         SUBJECTTO \
           (SELECT t.intemp = m_simul.x FROM m_simul, t WHERE t.time = m_simul.time), \
           (SELECT 20 <= intemp <= 25, 0 <= hload <= 17000 FROM t) \
         USING solverlp.cbc()",
    )?;

    // P5: analyze the result.
    let out = s.query(
        "SELECT time, round(hload) AS hload, round(intemp * 10) / 10 AS intemp, \
                round(pvsupply) AS pv FROM plan ORDER BY time",
    )?;
    println!("\nP4/P5: optimized HVAC schedule:");
    println!("{out}");
    let cost = s.query_scalar("SELECT sum((hload - pvsupply) * 0.12) FROM plan")?;
    println!("Net electricity cost over the horizon: {cost}");
    Ok(())
}
