//! Crew rostering as a SOLVESELECT — the classic set-partitioning
//! model: choose flight pairings so that every leg is flown by exactly
//! one chosen pairing, at minimum total cost. Every coverage constraint
//! is a pure set-partitioning row (`sum(pick) = 1` over binaries), so
//! `EXPLAIN CHECK` reports the SD020 matrix census on this model and
//! the classified rows are registered with the solver as cut-separation
//! candidates.
//!
//! Run with: `cargo run --release --example crew_rostering`

use solvedbplus::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new();

    // Candidate pairings (a pairing is a multi-leg duty one crew flies)
    // with their costs; `pick` is the binary decision.
    s.execute_script(
        "CREATE TABLE pairings (pid int, pcost float8, pick int);
         INSERT INTO pairings VALUES
           (1, 9, NULL), (2, 14, NULL), (3, 8, NULL), (4, 5, NULL),
           (5, 10, NULL), (6, 11, NULL), (7, 9, NULL), (8, 10, NULL),
           (9, 13, NULL), (10, 12, NULL), (11, 7, NULL), (12, 15, NULL)",
    )?;
    // Which flight legs each pairing covers (pairings 2, 9, 10 and 12
    // span three legs each).
    s.execute_script(
        "CREATE TABLE legs (pid int, flight int);
         INSERT INTO legs VALUES
           (1, 1), (1, 2),
           (2, 3), (2, 4), (2, 5),
           (3, 6), (3, 7),
           (4, 8),
           (5, 1), (5, 3),
           (6, 2), (6, 4),
           (7, 5), (7, 6),
           (8, 7), (8, 8),
           (9, 1), (9, 2), (9, 3),
           (10, 4), (10, 5), (10, 6),
           (11, 7), (11, 8),
           (12, 2), (12, 5), (12, 8)",
    )?;

    let roster = s.query(
        "SOLVESELECT p(pick) AS (SELECT * FROM pairings) \
         MINIMIZE (SELECT sum(pcost * pick) FROM p) \
         SUBJECTTO (SELECT sum(pick) = 1 FROM p JOIN legs ON p.pid = legs.pid \
                      GROUP BY legs.flight), \
                   (SELECT 0 <= pick <= 1 FROM p) \
         USING solverlp.cbc()",
    )?;

    let mut cost = 0.0;
    println!("Chosen pairings:");
    for row in &roster.rows {
        if row[2].as_i64()? == 1 {
            let (pid, pcost) = (row[0].as_i64()?, row[1].as_f64()?);
            println!("  pairing {pid} (cost {pcost})");
            cost += pcost;
        }
    }
    println!("Total roster cost: {cost}");

    Ok(())
}
