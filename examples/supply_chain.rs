//! UC2 — supply chain management (paper §5.4): forecast next-month
//! demand per item with ARIMA, model expected profit, and choose what to
//! produce ahead under a warehouse volume cap (knapsack MIP).
//!
//! Run with: `cargo run --release --example supply_chain`

use solvedbplus::{datagen, Session};

const ITEMS: usize = 12;
const MONTHS: usize = 48;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new();

    // P1: install the TPC-H-like items and their monthly order history.
    let items = datagen::supply_chain(ITEMS, MONTHS, 7);
    datagen::install_supply_chain(s.db_mut(), &items);
    println!("Loaded {ITEMS} items x {MONTHS} months of orders.");

    // P2: per-item demand forecast — one ARIMA model per item, the order
    // hyper-parameters searched by PSO inside the solver.
    s.execute("CREATE TABLE demand_forecast (item_id int, qty float8)")?;
    for it in &items {
        let id = it.item_id;
        s.execute(&format!(
            "INSERT INTO demand_forecast \
             SELECT item_id, qty FROM ( \
               SOLVESELECT t(qty) AS ( \
                 SELECT item_id, month, quantity AS qty FROM orders WHERE item_id = {id} \
                 UNION ALL \
                 SELECT {id}, (SELECT max(month) FROM orders WHERE item_id = {id}) \
                              + interval '31 days', NULL::float8 \
                 ORDER BY month) \
               USING arima_solver(seed := 7) \
             ) f WHERE NOT EXISTS (SELECT 1 FROM orders o \
                                   WHERE o.item_id = f.item_id AND o.month = f.month)"
        ))?;
    }
    println!("P2: {ITEMS} ARIMA forecasts done.");

    // P3: expected profit per item, weighted by forecast demand.
    s.execute(
        "CREATE TABLE profit AS \
         SELECT i.item_id, (i.price - i.cost) * greatest(0.0, f.qty) AS v, \
                i.size * greatest(0.0, f.qty) AS volume \
         FROM items i JOIN demand_forecast f ON f.item_id = i.item_id",
    )?;

    // P4: the warehouse knapsack.
    s.execute(
        "CREATE TABLE production_plan AS \
         SOLVESELECT p(pick) AS (SELECT item_id, v, volume, NULL::int AS pick FROM profit) \
         MAXIMIZE (SELECT sum(v * pick) FROM p) \
         SUBJECTTO (SELECT sum(volume * pick) <= 0.4 * (SELECT sum(volume) FROM profit) FROM p), \
                   (SELECT 0 <= pick <= 1 FROM p) \
         USING solverlp.cbc()",
    )?;

    // P5: report.
    let out = s.query(
        "SELECT p.item_id, round(f.qty) AS forecast_qty, round(p.v) AS exp_profit, \
                round(p.volume) AS volume, p.pick \
         FROM production_plan p JOIN demand_forecast f ON f.item_id = p.item_id \
         ORDER BY p.v DESC",
    )?;
    println!("\nProduction plan (pick = produce ahead):\n{out}");
    let total = s.query_scalar("SELECT sum(v * pick) FROM production_plan")?;
    let used = s.query_scalar("SELECT sum(volume * pick) FROM production_plan")?;
    let cap = s.query_scalar("SELECT 0.4 * sum(volume) FROM profit")?;
    println!("Expected profit: {total}   warehouse used: {used} / {cap}");
    Ok(())
}
