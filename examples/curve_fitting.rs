//! Curve fitting as a SOLVESELECT — another usability-study problem
//! (§5.1): fit a polynomial y = a + b·x + c·x² to noisy points by
//! minimizing the L1 error, as a linear program over CDTEs.
//!
//! Run with: `cargo run --example curve_fitting`

use solvedbplus::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new();

    // Points sampled from y = 2 + 0.5x - 0.1x² with small deterministic
    // perturbations.
    s.execute("CREATE TABLE points (x float8, y float8)")?;
    for i in 0..25 {
        let x = i as f64 * 0.4;
        let noise = ((i * 7919) % 13) as f64 / 130.0 - 0.05;
        let y = 2.0 + 0.5 * x - 0.1 * x * x + noise;
        s.execute(&format!("INSERT INTO points VALUES ({x}, {y})"))?;
    }

    let fit = s.query(
        "SOLVESELECT p(a, b, c) AS \
           (SELECT NULL::float8 AS a, NULL::float8 AS b, NULL::float8 AS c) \
         WITH e(err) AS (SELECT x, y, NULL::float8 AS err FROM points) \
         MINIMIZE (SELECT sum(err) FROM e) \
         SUBJECTTO (SELECT -1*err <= (a + b*x + c*x*x - y) <= err FROM e, p) \
         USING solverlp()",
    )?;
    let a = fit.value_by_name(0, "a")?.as_f64()?;
    let b = fit.value_by_name(0, "b")?.as_f64()?;
    let c = fit.value_by_name(0, "c")?.as_f64()?;
    println!("Fitted y = {a:.3} + {b:.3}x + {c:.3}x²  (truth: 2 + 0.5x - 0.1x²)");

    // Evaluate the fit in SQL.
    s.execute(&format!(
        "CREATE TABLE fitted AS SELECT x, y, {a} + {b}*x + {c}*x*x AS yhat FROM points"
    ))?;
    let mae = s.query_scalar("SELECT avg(abs(y - yhat)) FROM fitted")?;
    println!("Mean absolute error: {mae}");
    Ok(())
}
