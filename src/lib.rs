//! # SolveDB+ — SQL-based prescriptive analytics
//!
//! A from-scratch Rust reproduction of *"SolveDB+: SQL-Based
//! Prescriptive Analytics"* (EDBT 2021): an in-memory RDBMS whose SQL
//! dialect embeds optimization problem solving (`SOLVESELECT`), shared
//! optimization models (`SOLVEMODEL`, `<<`, `INLINE`, `MODELEVAL`) and
//! an in-DBMS predictive framework.
//!
//! ```
//! use solvedbplus::Session;
//!
//! let mut s = Session::new();
//! s.execute_script(
//!     "CREATE TABLE v (x float8); INSERT INTO v VALUES (NULL)",
//! ).unwrap();
//! let t = s.query(
//!     "SOLVESELECT q(x) AS (SELECT * FROM v) \
//!      MINIMIZE (SELECT x FROM q) SUBJECTTO (SELECT x >= 3 FROM q) \
//!      USING solverlp()",
//! ).unwrap();
//! assert_eq!(t.value(0, 0).as_f64().unwrap(), 3.0);
//! ```

#![forbid(unsafe_code)]

pub use solvedbplus_core::{
    build_problem, ModelValue, ProblemInstance, Session, SharedSolvers, SolveContext, Solver,
    SolverRegistry,
};
pub use sqlengine::{
    Column, Ctes, DataType, Database, Diagnostic, ExecResult, Outcome, Row, Schema, Severity,
    Table, Value,
};

/// Structural simulations of the paper's baseline stacks.
pub use baselines;
/// Synthetic datasets (NIST-like energy, TPC-H-like supply chain).
pub use datagen;
/// Time-series forecasting methods.
pub use forecast;
/// Black-box global optimization (PSO / SA / DE).
pub use globalopt;
/// LP / MIP solvers.
pub use lp;
/// Observability: tracing, histograms, metrics registries, progress.
pub use obs;
/// The solvedbd network server, wire protocol and client library.
pub use server;
/// The SolveDB+ semantics layer.
pub use solvedbplus_core as core;
/// The relational engine substrate.
pub use sqlengine;
/// LTI state-space system models.
pub use ssmodel;
/// The durable storage engine: WAL, snapshots, crash recovery.
pub use storage;
