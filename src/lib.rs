//! # SolveDB+ — SQL-based prescriptive analytics
//!
//! A from-scratch Rust reproduction of *"SolveDB+: SQL-Based
//! Prescriptive Analytics"* (EDBT 2021): an in-memory RDBMS whose SQL
//! dialect embeds optimization problem solving (`SOLVESELECT`), shared
//! optimization models (`SOLVEMODEL`, `<<`, `INLINE`, `MODELEVAL`) and
//! an in-DBMS predictive framework.
//!
//! ```
//! use solvedbplus::Session;
//!
//! let mut s = Session::new();
//! s.execute_script(
//!     "CREATE TABLE v (x float8); INSERT INTO v VALUES (NULL)",
//! ).unwrap();
//! let t = s.query(
//!     "SOLVESELECT q(x) AS (SELECT * FROM v) \
//!      MINIMIZE (SELECT x FROM q) SUBJECTTO (SELECT x >= 3 FROM q) \
//!      USING solverlp()",
//! ).unwrap();
//! assert_eq!(t.value(0, 0).as_f64().unwrap(), 3.0);
//! ```

pub use solvedbplus_core::{
    build_problem, ModelValue, ProblemInstance, Session, SolveContext, Solver, SolverRegistry,
};
pub use sqlengine::{Column, Ctes, Database, DataType, ExecResult, Row, Schema, Table, Value};

/// The relational engine substrate.
pub use sqlengine;
/// The SolveDB+ semantics layer.
pub use solvedbplus_core as core;
/// LP / MIP solvers.
pub use lp;
/// Black-box global optimization (PSO / SA / DE).
pub use globalopt;
/// Time-series forecasting methods.
pub use forecast;
/// LTI state-space system models.
pub use ssmodel;
/// Synthetic datasets (NIST-like energy, TPC-H-like supply chain).
pub use datagen;
/// Structural simulations of the paper's baseline stacks.
pub use baselines;
