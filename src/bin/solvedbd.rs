//! `solvedbd` — the SolveDB+ network server daemon.
//!
//! ```text
//! solvedbd                         # listen on 127.0.0.1:5433, 8 workers
//! solvedbd --listen 0.0.0.0:7000   # explicit bind address
//! solvedbd --port 7000             # shorthand for 127.0.0.1:7000
//! solvedbd --workers 16            # worker pool size
//! solvedbd --slow-query-ms 500     # log statements slower than 500 ms
//! solvedbd --data-dir ./data       # durable mode: recover + WAL-commit
//! solvedbd --data-dir ./data --fsync interval:100
//! solvedbd --metrics-addr 127.0.0.1:9187   # Prometheus GET /metrics
//! solvedbd --solver-timeout-ms 60000       # default solver budget
//! ```
//!
//! Each connection gets its own session (private table namespace) over
//! a shared solver registry. With `--data-dir`, the server recovers the
//! catalog from the newest snapshot plus the WAL tail at startup, and
//! every session group-commits its statements to the log (see
//! `STORAGE.md`). Stop with Ctrl-C, or type `\q` on stdin; both shut
//! down gracefully, draining workers and releasing the port. Protocol
//! documentation: `crates/server/PROTOCOL.md`.

use solvedbplus::server::{Server, ServerConfig};
use solvedbplus::storage::FsyncPolicy;
use std::io::BufRead;
use std::sync::atomic::{AtomicBool, Ordering};

const DEFAULT_ADDR: &str = "127.0.0.1:5433";

const USAGE: &str = "\
usage: solvedbd [OPTIONS]

options:
  -l, --listen ADDR    bind address (default 127.0.0.1:5433)
  -p, --port PORT      shorthand for --listen 127.0.0.1:PORT
  -w, --workers N      worker threads / max concurrent connections (default 8)
      --slow-query-ms N log statements slower than N ms to stderr, with
                       their stage breakdown (default: disabled)
  -D, --data-dir DIR   run durably: recover the catalog from DIR at start,
                       write-ahead-log every mutation into it (default:
                       in-memory, state dies with the process)
      --fsync POLICY   when WAL appends reach disk: always | interval[:ms]
                       | never (default always; needs --data-dir)
      --metrics-addr A serve Prometheus text metrics at http://A/metrics
                       (default: disabled)
      --solver-timeout-ms N
                       default wall-clock budget for every solve, in ms;
                       sessions can override with SET solver_timeout_ms
                       (default: unlimited)
      --version        print version and exit
  -h, --help           show this message";

/// Set from the SIGINT handler; a watcher thread turns it into a
/// graceful shutdown (the handler itself must stay async-signal-safe).
static SIGINT: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigint_handler() {
    // No libc crate in this build environment; bind the one symbol we
    // need directly.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_sigint(_signum: i32) {
        SIGINT.store(true, Ordering::SeqCst);
    }
    const SIGINT_NO: i32 = 2;
    unsafe {
        signal(SIGINT_NO, on_sigint as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = DEFAULT_ADDR.to_string();
    let mut workers = ServerConfig::default().workers;
    let mut slow_query_ms = None;
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut fsync = FsyncPolicy::Always;
    let mut fsync_given = false;
    let mut metrics_addr: Option<String> = None;
    let mut solver_timeout_ms: Option<u64> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take_value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("solvedbd: {name} requires a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "-l" | "--listen" => addr = take_value(arg),
            "-p" | "--port" => {
                let port = take_value(arg);
                match port.parse::<u16>() {
                    Ok(p) => addr = format!("127.0.0.1:{p}"),
                    Err(_) => {
                        eprintln!("solvedbd: invalid port: {port}\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "-w" | "--workers" => {
                let n = take_value(arg);
                match n.parse::<usize>() {
                    Ok(w) if w >= 1 => workers = w,
                    _ => {
                        eprintln!("solvedbd: invalid worker count: {n}\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--slow-query-ms" => {
                let n = take_value(arg);
                match n.parse::<u64>() {
                    Ok(ms) => slow_query_ms = Some(ms),
                    Err(_) => {
                        eprintln!("solvedbd: invalid slow-query threshold: {n}\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--metrics-addr" => metrics_addr = Some(take_value(arg)),
            "--solver-timeout-ms" => {
                let n = take_value(arg);
                match n.parse::<u64>() {
                    Ok(ms) if ms >= 1 => solver_timeout_ms = Some(ms),
                    _ => {
                        eprintln!("solvedbd: invalid solver timeout: {n}\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "-D" | "--data-dir" => data_dir = Some(take_value(arg).into()),
            "--fsync" => {
                let p = take_value(arg);
                match FsyncPolicy::parse(&p) {
                    Ok(policy) => {
                        fsync = policy;
                        fsync_given = true;
                    }
                    Err(e) => {
                        eprintln!("solvedbd: {e}\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--version" => {
                println!("solvedbd {}", env!("CARGO_PKG_VERSION"));
                return;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("solvedbd: unknown option: {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    if fsync_given && data_dir.is_none() {
        eprintln!("solvedbd: --fsync requires --data-dir\n{USAGE}");
        std::process::exit(2);
    }
    let config = ServerConfig {
        workers,
        slow_query_ms,
        data_dir,
        fsync,
        metrics_addr,
        solver_timeout_ms,
        ..Default::default()
    };
    let server = match Server::bind_with(&addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("solvedbd: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(engine) = server.storage() {
        let r = engine.recovery_stats();
        println!(
            "solvedbd: recovered {} (snapshot lsn {}, {} record(s) replayed, \
             {} torn byte(s) truncated, {:.1} ms); fsync policy: {}",
            engine.data_dir().display(),
            r.snapshot_lsn,
            r.replayed_records,
            r.truncated_bytes,
            r.recover_nanos as f64 / 1e6,
            engine.policy().label(),
        );
    }
    let local = server.local_addr();
    let shutdown = server.shutdown_handle();
    println!("solvedbd listening on {local} ({workers} worker(s)); Ctrl-C or \\q to stop");
    if let Some(maddr) = server.metrics_addr() {
        println!("solvedbd: metrics at http://{maddr}/metrics");
    }
    if let Some(ms) = solver_timeout_ms {
        println!("solvedbd: default solver budget {ms} ms (SET solver_timeout_ms overrides)");
    }

    install_sigint_handler();
    {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || loop {
            if SIGINT.load(Ordering::SeqCst) {
                eprintln!("solvedbd: caught SIGINT, shutting down");
                shutdown.shutdown();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        });
    }
    {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(l) if matches!(l.trim(), "\\q" | "\\quit" | "quit" | "exit") => {
                        shutdown.shutdown();
                        return;
                    }
                    Ok(_) => continue,
                    Err(_) => break,
                }
            }
            // stdin EOF (e.g. daemonised with a closed stdin): keep
            // serving; SIGINT remains the way to stop.
        });
    }

    match server.run() {
        Ok(()) => println!("solvedbd: shut down cleanly"),
        Err(e) => {
            eprintln!("solvedbd: server error: {e}");
            std::process::exit(1);
        }
    }
}
