//! `solvedb` — an interactive SQL shell for the SolveDB+ engine.
//!
//! ```text
//! cargo run --bin solvedb              # interactive REPL
//! cargo run --bin solvedb -- file.sql  # run a script
//! ```
//!
//! Statements end with `;` and may span lines. Meta commands:
//! `\d` (list tables), `\solvers`, `\explain SOLVESELECT ...;`,
//! `\demo` (load the paper's Table 1), `\q`.

use solvedbplus::{datagen, ExecResult, Session};
use std::io::{BufRead, Write};

fn main() {
    let mut session = Session::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = args.first() {
        let sql = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match session.execute_script(&sql) {
            Ok(ExecResult::Table(t)) => print!("{t}"),
            Ok(ExecResult::Count(n)) => println!("{n} row(s) affected"),
            Ok(ExecResult::Done) => println!("ok"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("SolveDB+ shell — SQL with SOLVESELECT / SOLVEMODEL. \\q quits, \\demo loads Table 1.");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        print!("{}", if buffer.is_empty() { "solvedb> " } else { "     ... " });
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            match run_meta(&mut session, trimmed) {
                MetaOutcome::Quit => break,
                MetaOutcome::Handled => continue,
            }
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        let start = std::time::Instant::now();
        match session.execute_script(&sql) {
            Ok(ExecResult::Table(t)) => {
                print!("{t}");
                println!("({} row(s), {:.1} ms)", t.num_rows(), start.elapsed().as_secs_f64() * 1e3);
            }
            Ok(ExecResult::Count(n)) => println!("{n} row(s) affected"),
            Ok(ExecResult::Done) => println!("ok"),
            Err(e) => println!("error: {e}"),
        }
    }
}

enum MetaOutcome {
    Quit,
    Handled,
}

fn run_meta(session: &mut Session, cmd: &str) -> MetaOutcome {
    match cmd {
        "\\q" | "\\quit" => return MetaOutcome::Quit,
        "\\d" => {
            for name in session.db().table_names() {
                let t = session.db().table(name).expect("listed table");
                println!(
                    "  {name} ({} rows): {}",
                    t.num_rows(),
                    t.schema
                        .columns
                        .iter()
                        .map(|c| format!("{} {}", c.name, c.ty.sql_name()))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
        }
        "\\solvers" => {
            for s in session.solver_names() {
                println!("  {s}");
            }
        }
        "\\demo" => {
            datagen::install_table1(session.db_mut());
            println!("loaded the paper's Table 1 as table `input`; try:");
            println!("  SOLVESELECT t(pvsupply) AS (SELECT * FROM input) USING predictive_solver();");
        }
        other if other.starts_with("\\explain ") => {
            let sql = other.trim_start_matches("\\explain ").trim_end_matches(';');
            match solvedbplus::core::explain_sql(session.db(), sql) {
                Ok(e) => print!("{}", e.render()),
                Err(e) => println!("error: {e}"),
            }
        }
        other => println!("unknown meta command: {other} (try \\d, \\solvers, \\demo, \\explain, \\q)"),
    }
    MetaOutcome::Handled
}
