//! `solvedb` — an interactive SQL shell for the SolveDB+ engine.
//!
//! ```text
//! solvedb                          # interactive REPL (local, in-process)
//! solvedb file.sql                 # run a script, printing every result
//! solvedb -e "SELECT 1; SELECT 2"  # run statements from the command line
//! solvedb --connect HOST:PORT      # talk to a solvedbd server instead
//! solvedb --data-dir ./data        # durable local session (WAL + snapshots)
//! solvedb --version
//! ```
//!
//! Statements end with `;` and may span lines. Meta commands:
//! `\d` (list tables), `\solvers`, `\explain SOLVESELECT ...;`,
//! `\demo` (load the paper's Table 1), `\timing` (toggle stage
//! breakdowns), `\q`. Meta commands other than `\q`, `\ping` and
//! `\timing` inspect in-process state and are local-only.
//!
//! With `--timing` (or after `\timing on`), every statement that
//! carries an execution trace — SOLVESELECT and EXPLAIN ANALYZE — is
//! followed by its rendered stage tree and solver telemetry. This works
//! identically against a local session and over `--connect`, where the
//! trace arrives in a protocol v3 STATS frame.

use solvedbplus::obs;
use solvedbplus::server::{Client, ClientError};
use solvedbplus::sqlengine::parser::{parse_statement, script_complete, split_statements};
use solvedbplus::sqlengine::statement_shape;
use solvedbplus::storage::{FsyncPolicy, StorageEngine};
use solvedbplus::{datagen, ExecResult, Outcome, Session};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const USAGE: &str = "\
usage: solvedb [OPTIONS] [SCRIPT.sql]
       solvedb --check SCRIPT.sql [SCRIPT.sql ...]

options:
  -e, --exec SQL       execute the given statements and exit
  -c, --connect ADDR   connect to a solvedbd server at ADDR (host:port)
  -t, --timing         print each statement's stage breakdown and solver
                       telemetry (toggle interactively with \\timing)
  -D, --data-dir DIR   durable local session: recover from DIR, write-ahead-
                       log every mutation into it (local mode only)
      --fsync POLICY   when WAL appends reach disk: always | interval[:ms]
                       | never (default always; needs --data-dir)
      --slow-query-ms N log statements slower than N ms to stderr, with
                       their shape and stage breakdown (local mode only;
                       over --connect the server logs instead)
      --check          lint the given script(s) with the whole-script
                       analyzer (SD013..SD018) without executing anything;
                       exits non-zero on error-level findings
      --version        print version and exit
  -h, --help           show this message

With no script and no -e, starts an interactive shell.";

struct Options {
    connect: Option<String>,
    exec: Option<String>,
    scripts: Vec<String>,
    check: bool,
    timing: bool,
    data_dir: Option<String>,
    fsync: FsyncPolicy,
    fsync_given: bool,
    slow_query_ms: Option<u64>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        connect: None,
        exec: None,
        scripts: Vec::new(),
        check: false,
        timing: false,
        data_dir: None,
        fsync: FsyncPolicy::Always,
        fsync_given: false,
        slow_query_ms: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take_value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "-e" | "--exec" => opts.exec = Some(take_value(arg)?),
            "-c" | "--connect" => opts.connect = Some(take_value(arg)?),
            "-t" | "--timing" => opts.timing = true,
            "-D" | "--data-dir" => opts.data_dir = Some(take_value(arg)?),
            "--check" => opts.check = true,
            "--fsync" => {
                let p = take_value(arg)?;
                opts.fsync = FsyncPolicy::parse(&p).map_err(|e| e.to_string())?;
                opts.fsync_given = true;
            }
            "--slow-query-ms" => {
                let n = take_value(arg)?;
                opts.slow_query_ms = Some(
                    n.parse::<u64>().map_err(|_| format!("invalid slow-query threshold: {n}"))?,
                );
            }
            "--version" => {
                println!("solvedb {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option: {other}"));
            }
            path => {
                opts.scripts.push(path.to_string());
            }
        }
    }
    if opts.check {
        if opts.scripts.is_empty() {
            return Err("--check requires at least one script file".into());
        }
        if opts.exec.is_some() || opts.connect.is_some() {
            return Err("--check is a local lint pass; it takes script files only".into());
        }
    } else if opts.scripts.len() > 1 {
        return Err("only one script file may be given (multiple are allowed with --check)".into());
    }
    if opts.exec.is_some() && !opts.scripts.is_empty() {
        return Err("-e and a script file are mutually exclusive".into());
    }
    if opts.data_dir.is_some() && opts.connect.is_some() {
        return Err("--data-dir applies to local sessions only (not --connect); \
                    start solvedbd with --data-dir instead"
            .into());
    }
    if opts.fsync_given && opts.data_dir.is_none() {
        return Err("--fsync requires --data-dir".into());
    }
    if opts.slow_query_ms.is_some() && opts.connect.is_some() {
        return Err("--slow-query-ms applies to local sessions only (not --connect); \
                    start solvedbd with --slow-query-ms instead"
            .into());
    }
    Ok(opts)
}

/// Where statements execute: an in-process session or a solvedbd server.
enum Backend {
    Local(Session),
    Remote(Client),
}

/// Tracks whether a live progress status line is currently drawn on
/// stderr (so the next regular output can erase it first). Shared with
/// the local session's progress sink, hence the `Arc`.
type StatusLine = Arc<AtomicBool>;

/// Only solves running longer than this get a status line.
const STATUS_AFTER: std::time::Duration = std::time::Duration::from_secs(1);

/// Draw (or refresh) the single `\r`-updating status line for a solve
/// that has been running for over a second.
fn draw_status(ev: &obs::ProgressEvent, status: &AtomicBool) {
    if ev.elapsed_nanos < STATUS_AFTER.as_nanos() as u64 {
        return;
    }
    eprint!("\r{}", ev.render());
    std::io::stderr().flush().ok();
    status.store(true, Ordering::Relaxed);
}

/// Erase the status line, if one is showing.
fn clear_status(status: &AtomicBool) {
    if status.swap(false, Ordering::Relaxed) {
        eprint!("\r{:79}\r", "");
        std::io::stderr().flush().ok();
    }
}

impl Backend {
    /// Run a batch statement by statement, printing every statement's
    /// result as it completes. `elapsed` prints per-statement wall-clock
    /// lines; `timing` additionally prints each statement's execution
    /// trace (stage tree + solver telemetry) when one is available;
    /// `slow_query_ms` logs statements over the threshold to stderr
    /// (local sessions only — over `--connect` the server logs).
    /// Returns `false` if a statement failed (execution stops there,
    /// matching server batch semantics).
    fn run_batch(
        &mut self,
        sql: &str,
        elapsed: bool,
        timing: bool,
        slow_query_ms: Option<u64>,
        status: &StatusLine,
    ) -> bool {
        match self {
            Backend::Local(session) => {
                for piece in split_statements(sql) {
                    // `Session::execute` parses the piece itself so the
                    // measured parse time lands in the trace.
                    let (outcome, dur) = obs::timed(|| session.execute(&piece));
                    clear_status(status);
                    if let Some(threshold) = slow_query_ms {
                        let shape = parse_statement(&piece).ok().map(|s| statement_shape(&s));
                        let line = obs::slow_query_line(
                            threshold,
                            dur,
                            &obs::SlowQuery {
                                source: "solvedb",
                                session: None,
                                sql: &piece,
                                shape: shape.as_deref(),
                                trace: outcome.as_ref().ok().and_then(|r| r.trace.as_ref()),
                            },
                        );
                        if let Some(line) = line {
                            eprintln!("{line}");
                        }
                    }
                    match outcome {
                        Ok(r) => print_result(&r, elapsed.then_some(dur), timing),
                        Err(e) => {
                            report_error(&e.to_string());
                            return false;
                        }
                    }
                }
                true
            }
            Backend::Remote(client) => {
                let start = std::time::Instant::now();
                let outcome = client.execute_with_progress(sql, &mut |ev| draw_status(ev, status));
                clear_status(status);
                match outcome {
                    Ok(results) => {
                        let mut ok = true;
                        for r in results {
                            match r {
                                Ok(r) => print_result(&r, elapsed.then(|| start.elapsed()), timing),
                                Err(e) => {
                                    report_error(&e.to_string());
                                    ok = false;
                                }
                            }
                        }
                        ok
                    }
                    Err(e) => {
                        report_error(&format!("connection lost: {e}"));
                        false
                    }
                }
            }
        }
    }
}

fn print_result(r: &ExecResult, elapsed: Option<std::time::Duration>, timing: bool) {
    // Pre-solve analyzer findings come first, rustc-style, on stderr —
    // they annotate the statement, not its result set.
    for diag in &r.warnings {
        eprintln!("{diag}");
    }
    match &r.outcome {
        Outcome::Table(t) => {
            print!("{t}");
            match elapsed {
                Some(d) => {
                    println!("({} row(s), {:.1} ms)", t.num_rows(), d.as_secs_f64() * 1e3)
                }
                None => println!("({} row(s))", t.num_rows()),
            }
        }
        Outcome::Count(n) => println!("{n} row(s) affected"),
        Outcome::Done => println!("ok"),
    }
    if timing {
        if let Some(trace) = &r.trace {
            for line in trace.render() {
                println!("{line}");
            }
        }
    }
}

fn report_error(msg: &str) {
    eprintln!("error: {msg}");
}

/// `solvedb --check`: run the whole-script static analyzer (SD013–SD018)
/// over each script without executing anything. Findings print
/// rustc-style on stderr, prefixed with the script and 1-based statement
/// number; a one-line verdict per script goes to stdout. Returns the
/// process exit code: 0 when every script parses and carries no
/// error-level finding, 1 otherwise.
fn run_check(session: &Session, paths: &[String]) -> i32 {
    let mut failed = false;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match session.check_script(&text) {
            Ok(analysis) => {
                for f in &analysis.diagnostics {
                    for line in format!("{}", f.diag).lines() {
                        eprintln!("{path}: statement {}: {line}", f.stmt + 1);
                    }
                }
                let verdict = if analysis.has_errors() {
                    failed = true;
                    "FAILED"
                } else {
                    "ok"
                };
                println!("{path}: {verdict} — {}", analysis.summary());
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                println!("{path}: FAILED — does not parse");
            }
        }
    }
    if failed {
        1
    } else {
        0
    }
}

fn connect(addr: &str) -> Client {
    match Client::connect(addr) {
        Ok(c) => c,
        Err(ClientError::Io(e)) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("handshake with {addr} failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("solvedb: {msg}\n{USAGE}");
            std::process::exit(2);
        }
    };

    // Live solve status line (one `\r`-updating stderr line for solves
    // running >1 s, local and remote alike).
    let status: StatusLine = Arc::new(AtomicBool::new(false));

    let mut backend = match &opts.connect {
        Some(addr) => Backend::Remote(connect(addr)),
        None => {
            let mut session = Session::new();
            {
                let status = status.clone();
                session.set_progress_sink(Arc::new(move |ev: &obs::ProgressEvent| {
                    draw_status(ev, &status);
                }));
            }
            if let Some(dir) = &opts.data_dir {
                let engine = match StorageEngine::open(std::path::Path::new(dir), opts.fsync) {
                    Ok(e) => Arc::new(e),
                    Err(e) => {
                        eprintln!("solvedb: storage recovery failed: {e}");
                        std::process::exit(1);
                    }
                };
                let r = engine.recovery_stats();
                eprintln!(
                    "solvedb: recovered {dir} (snapshot lsn {}, {} record(s) replayed, \
                     {} torn byte(s) truncated)",
                    r.snapshot_lsn, r.replayed_records, r.truncated_bytes,
                );
                if let Err(e) = session.attach_storage(engine) {
                    eprintln!("solvedb: cannot attach storage: {e}");
                    std::process::exit(1);
                }
            }
            Backend::Local(session)
        }
    };

    // Lint mode: analyze each script against the session catalog
    // (empty unless --data-dir recovered state) without executing it.
    if opts.check {
        let code = match &backend {
            Backend::Local(session) => run_check(session, &opts.scripts),
            Backend::Remote(_) => {
                eprintln!("solvedb: --check is local-only");
                2
            }
        };
        std::process::exit(code);
    }

    // Non-interactive modes: -e SQL or a script file. Every statement's
    // result is printed; the first failure stops execution with exit 1.
    let batch = match (&opts.exec, opts.scripts.first()) {
        (Some(sql), _) => Some(sql.clone()),
        (None, Some(path)) => match std::fs::read_to_string(path) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        },
        (None, None) => None,
    };
    if let Some(sql) = batch {
        let ok = backend.run_batch(&sql, opts.timing, opts.timing, opts.slow_query_ms, &status);
        std::process::exit(if ok { 0 } else { 1 });
    }

    // Interactive shell.
    match &backend {
        Backend::Remote(_) => println!(
            "SolveDB+ shell — connected to {} (protocol v{}). \\q quits.",
            opts.connect.as_deref().unwrap_or("?"),
            solvedbplus::server::PROTOCOL_VERSION
        ),
        Backend::Local(_) => println!(
            "SolveDB+ shell — SQL with SOLVESELECT / SOLVEMODEL. \\q quits, \\demo loads Table 1."
        ),
    }
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut timing = opts.timing;
    loop {
        print!("{}", if buffer.is_empty() { "solvedb> " } else { "     ... " });
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            match run_meta(&mut backend, trimmed, &mut timing) {
                MetaOutcome::Quit => break,
                MetaOutcome::Handled => continue,
            }
        }
        buffer.push_str(&line);
        // A statement is submitted once the buffer ends at a real
        // statement boundary — `;` inside strings or comments, and
        // trailing comments after the `;`, are handled lexically.
        if !script_complete(&buffer) {
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        backend.run_batch(&sql, true, timing, opts.slow_query_ms, &status);
    }
    if let Backend::Remote(client) = backend {
        let _ = client.close();
    }
}

enum MetaOutcome {
    Quit,
    Handled,
}

fn run_meta(backend: &mut Backend, cmd: &str, timing: &mut bool) -> MetaOutcome {
    if matches!(cmd, "\\q" | "\\quit") {
        return MetaOutcome::Quit;
    }
    // `\timing` works against both backends: traces travel over the
    // wire in STATS frames, so rendering is purely client-side.
    if let Some(rest) = cmd.strip_prefix("\\timing") {
        match rest.trim() {
            "" => *timing = !*timing,
            "on" => *timing = true,
            "off" => *timing = false,
            other => {
                println!("usage: \\timing [on|off] (got {other:?})");
                return MetaOutcome::Handled;
            }
        }
        println!("timing is {}", if *timing { "on" } else { "off" });
        return MetaOutcome::Handled;
    }
    let session = match backend {
        Backend::Local(s) => s,
        Backend::Remote(client) => {
            if cmd == "\\ping" {
                match client.ping() {
                    Ok(()) => println!("pong"),
                    Err(e) => println!("error: {e}"),
                }
            } else {
                println!("meta commands are local-only (except \\ping, \\timing and \\q): {cmd}");
            }
            return MetaOutcome::Handled;
        }
    };
    match cmd {
        "\\d" => {
            for name in session.db().table_names() {
                let t = session.db().table(name).expect("listed table");
                println!(
                    "  {name} ({} rows): {}",
                    t.num_rows(),
                    t.schema
                        .columns
                        .iter()
                        .map(|c| format!("{} {}", c.name, c.ty.sql_name()))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
        }
        "\\solvers" => {
            for s in session.solver_names() {
                println!("  {s}");
            }
        }
        "\\demo" => {
            datagen::install_table1(session.db_mut());
            println!("loaded the paper's Table 1 as table `input`; try:");
            println!(
                "  SOLVESELECT t(pvsupply) AS (SELECT * FROM input) USING predictive_solver();"
            );
        }
        other if other.starts_with("\\explain ") => {
            let sql = other.trim_start_matches("\\explain ").trim_end_matches(';');
            match solvedbplus::core::explain_sql(session.db(), sql) {
                Ok(e) => print!("{}", e.render()),
                Err(e) => println!("error: {e}"),
            }
        }
        other => {
            println!(
                "unknown meta command: {other} (try \\d, \\solvers, \\demo, \\explain, \\timing, \\q)"
            )
        }
    }
    MetaOutcome::Handled
}
