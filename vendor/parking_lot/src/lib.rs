//! Offline stand-in for the `parking_lot` API subset this workspace
//! uses: `RwLock` and `Mutex` with non-poisoning guards.
//!
//! Wraps `std::sync` primitives; a poisoned lock (a panic while held)
//! is recovered rather than propagated, matching `parking_lot`'s
//! behaviour of not poisoning at all.

use std::fmt;
use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Mutex with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        let _a = l.read();
        let _b = l.read(); // shared readers coexist
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let l = Arc::new(RwLock::new(7));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*l.read(), 7); // still usable
    }
}
