//! Offline stand-in for the `crossbeam::channel` API subset this
//! workspace uses: bounded/unbounded MPMC channels with cloneable
//! senders *and* receivers (std's `mpsc` receiver is single-consumer,
//! which is why the server's worker pool needs this).
//!
//! Implementation: a `VecDeque` behind a `Mutex` with two `Condvar`s
//! (not-empty / not-full) and endpoint reference counts for
//! disconnection semantics.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// All senders or all receivers disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Block until there is room (bounded) and enqueue `value`.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if q.len() >= cap => {
                        q = self.shared.not_full.wait(q).unwrap();
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            drop(q);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.not_empty.wait(q).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            if let Some(v) = q.pop_front() {
                drop(q);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self.shared.not_empty.wait_timeout(q, deadline - now).unwrap();
                q = guard;
            }
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    /// A channel that blocks senders once `cap` items are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn mpmc_roundtrip() {
            let (tx, rx) = bounded::<u64>(4);
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        for i in 0..100u64 {
                            tx.send(p * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap().len()).sum();
            assert_eq!(total, 400);
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = bounded::<i32>(1);
            drop(rx);
            assert!(tx.send(1).is_err());

            let (tx, rx) = bounded::<i32>(1);
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = bounded::<i32>(1);
            let err = rx.recv_timeout(Duration::from_millis(20)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
        }

        #[test]
        fn bounded_blocks_until_room() {
            let (tx, rx) = bounded::<i32>(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || {
                tx.send(2).unwrap(); // blocks until the consumer drains
                tx.send(3).unwrap();
            });
            thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
            t.join().unwrap();
        }
    }
}
