//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` helpers
//! `gen`, `gen_range`, `gen_bool`.
//!
//! The container this repository builds in has no crates.io access, so
//! the real `rand` cannot be fetched. The generator here is
//! xoshiro256++ seeded through SplitMix64 — deterministic, fast, and
//! statistically strong enough for the randomized tests and stochastic
//! solvers in this repo. The sequences differ from upstream `StdRng`
//! (ChaCha12); nothing in the workspace depends on the exact stream.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A float uniform in `[0, 1)` with 53 random bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Deterministic seeding interface.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of `T` from the "standard" distribution.
pub struct Standard;

/// Distribution trait (minimal form of `rand::distributions::Distribution`).
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let v = rng.next_u64() % span;
                ((self.start as $wide).wrapping_add(v as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = rng.next_u64() % (span + 1);
                ((lo as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )*};
}
impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

// No f32 `SampleRange` impl: it would make `gen_range(0.1..0.2)`
// ambiguous and break `{float}` literal fallback to f64.

/// The user-facing convenience trait, blanket-implemented for all cores.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Expand the seed with SplitMix64 so nearby seeds diverge.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0, 0, 0, 0] {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f = rng.gen_range(-5.0..5.0);
            assert!((-5.0..5.0).contains(&f));
            let i = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&i));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i32..=3);
            seen[(v + 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "missing endpoint: {seen:?}");
    }
}
