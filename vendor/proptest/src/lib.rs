//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses. The build container has no crates.io access, so the real crate
//! cannot be fetched; this crate keeps the property tests compiling and
//! *running* with the same surface syntax:
//!
//! - `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {..} }`
//! - strategies: ranges, `Just`, tuples, `prop_oneof!`, `prop_map`,
//!   `prop_recursive`, `prop::collection::vec`, `any::<T>()`, and simple
//!   `"[chars]{m,n}"` string patterns
//! - assertions: `prop_assert!`, `prop_assert_eq!`, `prop_assume!`
//!
//! Differences from upstream: sampling is plain random generation with a
//! per-test deterministic seed (override with `PROPTEST_SEED`), and
//! there is **no shrinking** — a failing case reports its inputs via the
//! assertion message only.

pub mod test_runner {
    /// Result of one generated test case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — try another input.
        Reject,
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Run configuration (`ProptestConfig` in upstream terms).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
        /// Give up after this many consecutive `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases, ..Config::default() }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// SplitMix64 — deterministic per test, fast, dependency-free.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Seed derived from the test name, overridable via the
        /// `PROPTEST_SEED` environment variable.
        pub fn for_test(name: &str) -> TestRng {
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = s.trim().parse::<u64>() {
                    return TestRng::from_seed(seed);
                }
            }
            // FNV-1a over the test name.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// A float uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generator of values of `Self::Value`.
    ///
    /// Upstream proptest strategies produce shrinkable value *trees*;
    /// here a strategy is simply a sampler.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Recursive strategies: apply `expand` up to `depth` times,
        /// mixing the base case back in at every level so sampled
        /// structures have varying depth.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            expand: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut cur = base.clone();
            for _ in 0..depth.max(1) {
                let composite = expand(cur).boxed();
                cur = Union { arms: vec![base.clone(), composite.clone(), composite] }.boxed();
            }
            cur
        }
    }

    /// Object-safe strategy handle; clones share the underlying sampler.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `strategy.prop_map(f)`.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed arms (`prop_oneof!`).
    pub struct Union<T> {
        pub arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.arms.is_empty(), "prop_oneof! with no arms");
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// Build a union — used by the `prop_oneof!` macro.
    pub fn union<T>(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union { arms }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (S0 0)
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
        (S0 0, S1 1, S2 2, S3 3, S4 4)
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
    }

    // ------------------------------------------------------------------
    // String patterns: a tiny subset of regex syntax sufficient for the
    // workspace's tests — literal chars, `[abc]` / `[a-d]` classes, and
    // `{m,n}` / `{n}` repetition.
    // ------------------------------------------------------------------

    #[derive(Debug, Clone)]
    struct PatternPart {
        choices: Vec<char>,
        min: u32,
        max: u32,
    }

    fn parse_pattern(pat: &str) -> Vec<PatternPart> {
        let chars: Vec<char> = pat.chars().collect();
        let mut parts = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = if chars[i] == '[' {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (mut min, mut max) = (1u32, 1u32);
            if i < chars.len() && chars[i] == '{' {
                let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                if let Some(close) = close {
                    let body: String = chars[i + 1..close].iter().collect();
                    let mut nums = body.splitn(2, ',');
                    let lo: u32 = nums.next().unwrap_or("1").trim().parse().unwrap_or(1);
                    let hi: u32 = match nums.next() {
                        Some(s) => s.trim().parse().unwrap_or(lo),
                        None => lo,
                    };
                    min = lo;
                    max = hi.max(lo);
                    i = close + 1;
                }
            }
            parts.push(PatternPart { choices, min, max });
        }
        parts
    }

    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for part in parse_pattern(self) {
                let n = part.min + rng.below((part.max - part.min + 1) as u64) as u32;
                for _ in 0..n {
                    if part.choices.is_empty() {
                        continue;
                    }
                    let j = rng.below(part.choices.len() as u64) as usize;
                    out.push(part.choices[j]);
                }
            }
            out
        }
    }

    /// `any::<T>()` support.
    pub struct Any<T>(PhantomData<T>);

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, roughly symmetric around zero.
            (rng.unit_f64() - 0.5) * 2e6
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element count for `collection::vec` — `[lo, hi)` like upstream's
    /// `SizeRange` when built from a `Range<usize>`, or exactly `n`
    /// when built from a `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// The test-definition macro. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of test functions whose
/// parameters use `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            #[allow(unused_labels)]
            'cases: while accepted < config.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { { $body } Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({})",
                                stringify!($name), rejected
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed after {} passing case(s): {}",
                            stringify!($name), accepted, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a proptest body; failure aborts the case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+))
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`: {}", lhs, rhs, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?}` != `{:?}`", lhs, rhs);
    }};
}

/// Reject the current case, drawing a fresh input instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = (-10i64..10).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -100i64..100, y in 0.0f64..1.0) {
            prop_assert!((-100..100).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn string_patterns_match_alphabet(s in "[ab]{0,8}") {
            prop_assert!(s.len() <= 8);
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }

        #[test]
        fn vec_sizes_respected(xs in prop::collection::vec(0i32..5, 2..6), ys in prop::collection::vec(0i32..5, 3)) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert_eq!(ys.len(), 3);
        }

        #[test]
        fn recursion_is_bounded(t in arb_tree()) {
            prop_assert!(depth(&t) <= 3, "depth {} tree {:?}", depth(&t), t);
        }

        #[test]
        fn assume_filters(x in 0i64..50) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_tuples(v in prop_oneof![Just(1i64), Just(2i64), 5i64..8], b in any::<bool>()) {
            prop_assert!(v == 1 || v == 2 || (5..8).contains(&v));
            let _ = b;
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failing_case_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unreachable_code)]
            fn always_fails(x in 0i64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
