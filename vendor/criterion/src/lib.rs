//! Offline stand-in for the `criterion` API subset this workspace uses.
//!
//! The build container has no crates.io access. This stub keeps the
//! `benches/` targets compiling and runnable: each benchmark runs a
//! small fixed number of timed iterations and prints a mean per
//! iteration — useful as a smoke benchmark, not a statistics suite.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations per benchmark; override with `CRITERION_STUB_ITERS`.
fn iters() -> u32 {
    std::env::var("CRITERION_STUB_ITERS").ok().and_then(|s| s.trim().parse().ok()).unwrap_or(3)
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup { _c: self, name }
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { elapsed: Duration::ZERO, iterations: 0 };
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { elapsed: Duration::ZERO, iterations: 0 };
        f(&mut b, input);
        b.report(&self.name, &id.to_string());
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let n = iters();
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iterations += n as u64;
    }

    fn report(&self, group: &str, id: &str) {
        if self.iterations == 0 {
            println!("  {group}/{id}: no iterations");
            return;
        }
        let per = self.elapsed / self.iterations as u32;
        println!("  {group}/{id}: {per:?}/iter over {} iter(s)", self.iterations);
    }
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: name.into(), param: param.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(10);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sized", 42), &42u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn group_and_main_macros_compile_and_run() {
        criterion_group!(benches, sample_bench);
        benches();
    }
}
